#!/usr/bin/env python3
"""dfsim_check: invariant-enforcing static analysis for the dfsim codebase.

Mechanizes the hand-enforced disciplines documented in ARCHITECTURE.md
("Invariants") as six checks:

  CHK-RNG     Every RNG draw call site in the simulation sources appears in
              the committed allowlist tools/dfsim_check/rng_sites.txt with a
              matching occurrence count, tagged with the stream its directory
              owns (routing / traffic / fault / trace). Adding, removing or
              moving a draw site therefore requires editing the allowlist —
              i.e. an explicit golden-regeneration decision (invariant 3).
              Engine code must never hand the routing RNG to another
              subsystem's object (stream separation, invariant 2).

  CHK-GATE    Every access to a fault / telemetry / trace / profiler member
              on a path reachable from Simulator::step() must be dominated by
              that subsystem's enable flag (zero-overhead-when-off,
              invariants 9 and 11). Guards propagate interprocedurally: a
              method whose every call site is guarded is guarded throughout.

  CHK-ALLOC   No allocation-shaped construct (new, push_back, resize,
              std::string construction, ...) in the hot-path function list
              (tools/dfsim_check/hotpath.txt) — the static complement of
              tests/test_pool_zero_alloc.cpp (invariant 1). Capacity-bounded
              sites carry an inline `// dfsim-check: allow(CHK-ALLOC): why`
              waiver.

  CHK-CONFIG  Every INI key parsed by src/sim/config_io.cpp is documented in
              docs/CONFIG.md and emitted by the canonical serialization in
              src/report/schema.cpp (and vice versa), and hash-gated key
              groups (fault.* / telemetry.* / trace.*) are emitted only
              inside their `enabled` guard, so healthy config hashes never
              move (invariant 5).

  CHK-SCHEMA  Every field literal written by src/report/schema.cpp is
              documented in docs/SCHEMA.md for the *current* schema version
              (the doc must name the exact kSchemaVersion string), so a
              schema bump forces a documentation pass (invariant 5).

  CHK-DISPATCH  The engine never names the routing-kind enum: mechanism
              selection lives in src/routing/factory.cpp alone and
              src/engine/simulator.{cpp,hpp} dispatch every routing decision
              through the RoutingMechanism interface, so adding a mechanism
              cannot reintroduce per-kind switches into the hot path.

The analysis is a plain-Python "AST-lite" pass: a comment/string-aware
scanner, a brace-structure function extractor, and a guard-dominance
heuristic. It needs no compiler, so CI can never soft-skip it. When a
compile_commands.json is present (CMAKE_EXPORT_COMPILE_COMMANDS=ON) it is
used as the authoritative translation-unit list; otherwise src/ is globbed.

Exit codes: 0 clean, 1 violations, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

ALL_CHECKS = ("CHK-RNG", "CHK-GATE", "CHK-ALLOC", "CHK-CONFIG", "CHK-SCHEMA",
              "CHK-DISPATCH")

# --- CHK-RNG configuration ---------------------------------------------------

# Directory (under src/) -> RNG stream its draw sites must belong to.
# engine/routing/topo/fbfly/router/core draw from the simulator's routing
# stream (mechanisms and triggers receive it by reference); traffic, fault
# and trace own theirs.
STREAM_OF_DIR = {
    "engine": "routing",
    "routing": "routing",
    "topo": "routing",
    "fbfly": "routing",
    "router": "routing",
    "core": "routing",
    "traffic": "traffic",
    "fault": "fault",
    "telemetry": "trace",
}

# Objects the engine must never pass its routing RNG into: each owns its own
# stream, and a leak would entangle the streams (trace replay / observability
# identity would silently break).
FOREIGN_STREAM_RECEIVERS = ("traffic_.", "sink_.", "tracer_.", "fault_.")

RNG_TOKEN = re.compile(r"\brng_?\b")
RNG_METHOD = re.compile(r"\brng_?\s*\.\s*(\w+)\s*\(")
CALL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof", "assert",
                 "static_cast", "const_cast", "reinterpret_cast", "catch"}

# --- CHK-GATE configuration --------------------------------------------------

# Gated member -> tokens that count as its dominating guard. The params_
# forms only appear in construction-time code, but accepting them keeps the
# check honest if setup helpers ever become step-reachable.
GATED_MEMBERS = {
    "sink_": ("telemetry_on_", "params_.telemetry.enabled"),
    "tracer_": ("trace_on_", "params_.trace.enabled"),
    "profiler_": ("profile_on_", "profile_on_"),
    "health_": ("fault_on_", "params_.fault.enabled"),
    "fault_": ("fault_on_", "params_.fault.enabled"),
    "ectn_monitor_": ("ectn_monitor_enabled_", "ectn_monitor_enabled_"),
}
GATE_ENTRY_POINT = "Simulator::step"
GATE_FILES = ("src/engine/simulator.cpp", "src/engine/simulator.hpp")

# --- CHK-ALLOC configuration -------------------------------------------------

ALLOC_PATTERNS = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bdelete\b"), "operator delete"),
    (re.compile(r"[.>]\s*push_back\s*\("), "push_back"),
    (re.compile(r"[.>]\s*emplace_back\s*\("), "emplace_back"),
    (re.compile(r"[.>]\s*emplace\s*\("), "emplace"),
    (re.compile(r"[.>]\s*resize\s*\("), "resize"),
    (re.compile(r"[.>]\s*reserve\s*\("), "reserve"),
    (re.compile(r"[.>]\s*insert\s*\("), "insert"),
    (re.compile(r"[.>]\s*assign\s*\("), "assign"),
    (re.compile(r"\bstd::string\b"), "std::string construction"),
    (re.compile(r"\bstd::to_string\b"), "std::to_string"),
    (re.compile(r"\bstd::(?:o|i)?stringstream\b"), "stringstream"),
    (re.compile(r"\bstd::vector\s*<"), "local std::vector"),
    (re.compile(r"\bstd::make_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("), "malloc-family"),
)

WAIVER = re.compile(r"dfsim-check:\s*allow\((CHK-[A-Z]+)\)\s*:\s*(\S.*)")

# --- CHK-DISPATCH configuration ----------------------------------------------

# Engine files that must stay mechanism-agnostic: naming the routing-kind
# enum (or re-reading the selector key) from the engine is how per-kind
# switches creep back into the hot path. Selection belongs to
# src/routing/factory.cpp; everything after construction is virtual dispatch
# through the RoutingMechanism interface.
DISPATCH_FILES = ("src/engine/simulator.cpp", "src/engine/simulator.hpp")
DISPATCH_TOKEN = re.compile(r"\bRoutingKind\b|\brouting\s*\.\s*kind\b")

# --- CHK-CONFIG configuration ------------------------------------------------

CONFIG_IO = "src/sim/config_io.cpp"
SCHEMA_CPP = "src/report/schema.cpp"
SCHEMA_HPP = "src/report/schema.hpp"
CONFIG_DOC = "docs/CONFIG.md"
SCHEMA_DOC = "docs/SCHEMA.md"

# Key groups that enter the canonical params text (and therefore the config
# hash) only when their subsystem is enabled — the emit-only-when-enabled
# list. Everything else must be emitted unconditionally.
HASH_GATED_PREFIXES = ("fault.", "telemetry.", "trace.", "notify.")
# Keys allowed to be conditionally emitted without being hash-gated groups
# (trace_path is omitted when empty: an absent path is the same run;
# engine.threads is omitted at its default of 1 so every pre-sharding
# config hash — and the committed goldens keyed on them — stays valid,
# while sharded runs fork their hash and carry config_hash_serial for
# cross-shard-count comparisons).
CONDITIONAL_KEY_EXEMPT = {"traffic.trace_path", "engine.threads"}


# ---------------------------------------------------------------------------
# Lexical layer: comment/string-aware scanning with length preservation


@dataclass
class SourceFile:
    relpath: str
    raw: str
    nostrings: str = ""   # comments stripped, string/char contents blanked
    nocomments: str = ""  # comments stripped, strings intact
    waivers: dict = field(default_factory=dict)  # line -> (check, reason)

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1


def scan_file(relpath: str, text: str) -> SourceFile:
    """Single pass producing both scrubbed views (same length as input)."""
    src = SourceFile(relpath, text)
    nostr = list(text)
    nocom = list(text)
    waivers = {}
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line | block | str | chr
    comment_start = 0
    while i < n:
        c = text[i]
        if c == "\n":
            if state == "line":
                m = WAIVER.search(text[comment_start:i])
                if m:
                    waivers[line] = (m.group(1), m.group(2).strip())
                state = "code"
            line += 1
            i += 1
            continue
        if state == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                state = "line"
                comment_start = i
                nostr[i] = nocom[i] = " "
            elif c == "/" and nxt == "*":
                state = "block"
                comment_start = i
                nostr[i] = nocom[i] = " "
            elif c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            i += 1
            continue
        if state == "line":
            nostr[i] = nocom[i] = " "
            i += 1
            continue
        if state == "block":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                m = WAIVER.search(text[comment_start:i])
                if m:
                    waivers[line] = (m.group(1), m.group(2).strip())
                nostr[i] = nostr[i + 1] = nocom[i] = nocom[i + 1] = " "
                state = "code"
                i += 2
                continue
            nostr[i] = nocom[i] = " "
            i += 1
            continue
        # string or char literal: keep quotes, blank contents in nostrings
        quote = '"' if state == "str" else "'"
        if c == "\\" and i + 1 < n:
            nostr[i] = " "
            if text[i + 1] != "\n":
                nostr[i + 1] = " "
            i += 2
            continue
        if c == quote:
            state = "code"
        else:
            nostr[i] = " "
        i += 1
    src.nostrings = "".join(nostr)
    src.nocomments = "".join(nocom)
    src.waivers = waivers
    return src


# ---------------------------------------------------------------------------
# Structural layer: function extraction over the scrubbed text


@dataclass
class Function:
    relpath: str
    qualname: str       # e.g. "Simulator::step" or "canonical_params_text"
    start: int          # offset of the signature chunk
    body_start: int     # offset just after the opening '{'
    body_end: int       # offset of the closing '}'


IDENT_CALL = re.compile(r"([A-Za-z_~][A-Za-z0-9_]*(?:::[A-Za-z_~][A-Za-z0-9_]*)*)\s*\(")
CLASS_DECL = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)[^;(]*$")
NAMESPACE_DECL = re.compile(r"\bnamespace\b")


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def chunk_function_name(chunk: str) -> str | None:
    """If `chunk` (the text preceding a '{') is a function signature, return
    the function's name; otherwise None."""
    for m in IDENT_CALL.finditer(chunk):
        name = m.group(1)
        if name.split("::")[-1] in CALL_KEYWORDS:
            continue
        close = match_paren(chunk, m.end() - 1)
        if close < 0:
            continue
        tail = chunk[close + 1:].strip()
        # Signature tails: nothing, cv/ref qualifiers, noexcept, override,
        # trailing return, or a constructor initializer list.
        if tail == "" or re.fullmatch(
                r"(?:const|noexcept|override|final|&&?|->\s*[\w:<>,&*\s\[\]]+|\s)*",
                tail) or tail.startswith(":"):
            return name
    return None


def extract_functions(src: SourceFile) -> list[Function]:
    text = src.nostrings
    functions: list[Function] = []
    class_stack: list[str | None] = []  # class name or None (namespace/other)
    i, n = 0, len(text)
    chunk_start = 0
    while i < n:
        c = text[i]
        if c in ";":
            chunk_start = i + 1
        elif c == "}":
            if class_stack:
                class_stack.pop()
            chunk_start = i + 1
        elif c == "{":
            chunk = text[chunk_start:i]
            name = chunk_function_name(chunk)
            if name is not None:
                qual = name
                if "::" not in name:
                    encl = next((cn for cn in reversed(class_stack) if cn), None)
                    if encl:
                        qual = f"{encl}::{name}"
                end = match_brace(text, i)
                functions.append(Function(src.relpath, qual, chunk_start, i + 1, end))
                i = end + 1
                chunk_start = i
                continue
            if NAMESPACE_DECL.search(chunk):
                class_stack.append(None)
            else:
                m = CLASS_DECL.search(chunk)
                class_stack.append(m.group(1) if m else None)
            chunk_start = i + 1
        i += 1
    return functions


# ---------------------------------------------------------------------------
# Guard layer: which if-conditions dominate an offset inside a function body


def statement_start(text: str, offset: int) -> int:
    for i in range(offset - 1, -1, -1):
        if text[i] in ";{}":
            return i + 1
    return 0


def enclosing_conditions(body: str, offset: int) -> str:
    """Concatenated text of every `if (...)` condition governing `offset`:
    enclosing brace blocks opened by an if, plus the current statement's
    prefix (covers brace-less ifs, `flag && ...` short circuits and
    `flag ? ... : ...` selections)."""
    conds: list[str] = []
    stack: list[str | None] = []
    i = 0
    while i < offset:
        c = body[i]
        if c == "{":
            chunk = body[statement_start(body, i):i]
            cond = None
            m = None
            for m in re.finditer(r"\bif\s*\(", chunk):
                pass
            if m is not None:
                close = match_paren(chunk, m.end() - 1)
                if close >= 0 and chunk[close + 1:].strip() == "":
                    cond = chunk[m.end():close]
            stack.append(cond)
        elif c == "}":
            if stack:
                stack.pop()
        i += 1
    conds = [c for c in stack if c]
    conds.append(body[statement_start(body, offset):offset])
    return "\n".join(conds)


# ---------------------------------------------------------------------------
# Violations


@dataclass
class Violation:
    check: str
    relpath: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.check} {self.relpath}:{self.line}: {self.message}"


class Analysis:
    def __init__(self, root: str, compile_commands: str | None):
        self.root = root
        self.compile_commands = compile_commands
        self.files: dict[str, SourceFile] = {}
        self.functions: dict[str, list[Function]] = {}
        self.violations: list[Violation] = []

    # --- infrastructure

    def fail(self, check: str, relpath: str, line: int, msg: str,
             waivable: bool = False):
        if waivable:
            src = self.files.get(relpath)
            if src is not None:
                for ln in (line, line - 1):
                    w = src.waivers.get(ln)
                    if w and w[0] == check:
                        return
        self.violations.append(Violation(check, relpath, line, msg))

    def load(self, relpath: str) -> SourceFile | None:
        if relpath in self.files:
            return self.files[relpath]
        path = os.path.join(self.root, relpath)
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="utf-8") as f:
            src = scan_file(relpath, f.read())
        self.files[relpath] = src
        self.functions[relpath] = extract_functions(src)
        return src

    def source_files(self) -> list[str]:
        """Translation units under src/: from compile_commands.json when
        available (the authoritative list CMake builds), globbed otherwise —
        plus headers, which hold the inline hot-path helpers."""
        found: set[str] = set()
        cc = self.compile_commands
        if cc is None:
            for cand in ("build/compile_commands.json", "compile_commands.json"):
                if os.path.isfile(os.path.join(self.root, cand)):
                    cc = os.path.join(self.root, cand)
                    break
        if cc and os.path.isfile(cc):
            with open(cc, "r", encoding="utf-8") as f:
                for entry in json.load(f):
                    path = os.path.normpath(os.path.join(
                        entry.get("directory", ""), entry.get("file", "")))
                    rel = os.path.relpath(path, self.root)
                    if rel.startswith("src" + os.sep):
                        found.add(rel.replace(os.sep, "/"))
        src_root = os.path.join(self.root, "src")
        for dirpath, _dirs, names in os.walk(src_root):
            for name in names:
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                rel = rel.replace(os.sep, "/")
                if name.endswith(".hpp") or (name.endswith(".cpp") and not cc):
                    found.add(rel)
        return sorted(found)

    def function_at(self, relpath: str, offset: int) -> Function | None:
        for fn in self.functions.get(relpath, ()):
            if fn.body_start <= offset < fn.body_end:
                return fn
        return None

    def find_function(self, relpath: str, qualname: str) -> Function | None:
        for fn in self.functions.get(relpath, ()):
            if fn.qualname == qualname:
                return fn
        return None

    # --- CHK-RNG

    def rng_draw_sites(self, src: SourceFile) -> list[tuple[int, str]]:
        """(offset, signature) for every RNG draw expression in the file.
        Two shapes: a direct method call on an rng object (`rng_.next_below(`)
        and passing an rng object into a drawing callee
        (`topo_.sample_nonmin(rng_, ...)`)."""
        text = src.nostrings
        sites: list[tuple[int, str]] = []
        for m in RNG_METHOD.finditer(text):
            sites.append((m.start(), f"rng.{m.group(1)}"))
        for m in RNG_TOKEN.finditer(text):
            before = text[:m.start()].rstrip()
            after = text[m.end():].lstrip()
            if after.startswith((".", "(", "=")):
                continue  # method call (handled above), ctor-init, assignment
            if before.endswith(("&", "Rng", ".")):
                continue  # parameter/local declaration or member path
            # Find the innermost unclosed '(' before the token: that call is
            # consuming the rng by reference -> a draw site at the callee.
            depth = 0
            callee = None
            for i in range(m.start() - 1, max(0, m.start() - 400), -1):
                ch = text[i]
                if ch == ")":
                    depth += 1
                elif ch == "(":
                    if depth == 0:
                        head = re.search(r"([A-Za-z_][\w.\->:]*)\s*$", text[:i])
                        if head:
                            callee = head.group(1)
                        break
                    depth -= 1
                elif ch in ";{}":
                    break
            if callee and callee.split("::")[-1].split(".")[-1] not in CALL_KEYWORDS:
                sites.append((m.start(), f"{callee}(rng)"))
        return sites

    def check_rng(self):
        allow_path = "tools/dfsim_check/rng_sites.txt"
        allow_file = os.path.join(self.root, allow_path)
        allowed: dict[tuple[str, str, str], tuple[str, int, int]] = {}
        if os.path.isfile(allow_file):
            with open(allow_file, "r", encoding="utf-8") as f:
                for ln, line in enumerate(f, 1):
                    line = line.split("#", 1)[0].strip()
                    if not line:
                        continue
                    parts = line.split()
                    if len(parts) != 5:
                        self.fail("CHK-RNG", allow_path, ln,
                                  "malformed allowlist line (want: stream "
                                  "path function signature count)")
                        continue
                    stream, path, func, sig, count = parts
                    allowed[(path, func, sig)] = (stream, int(count), ln)
        else:
            self.fail("CHK-RNG", allow_path, 1, "allowlist file missing")

        seen: dict[tuple[str, str, str], list[int]] = {}
        for relpath in self.source_files():
            parts = relpath.split("/")
            if len(parts) < 3 or parts[0] != "src":
                continue
            subdir = parts[1]
            src = self.load(relpath)
            if src is None:
                continue
            for offset, sig in self.rng_draw_sites(src):
                fn = self.function_at(relpath, offset)
                func = fn.qualname if fn else "<toplevel>"
                line = src.line_of(offset)
                stream = STREAM_OF_DIR.get(subdir)
                if stream is None:
                    self.fail("CHK-RNG", relpath, line,
                              f"RNG draw `{sig}` in src/{subdir}/ which owns "
                              "no RNG stream (extend STREAM_OF_DIR "
                              "deliberately if this subsystem gains one)")
                    continue
                if stream == "routing" and sig.startswith(FOREIGN_STREAM_RECEIVERS):
                    self.fail("CHK-RNG", relpath, line,
                              f"routing RNG passed into `{sig}`: each "
                              "subsystem draws only from its own stream")
                    continue
                seen.setdefault((relpath, func, sig), []).append(line)

        for key, lines in sorted(seen.items()):
            relpath, func, sig = key
            entry = allowed.pop(key, None)
            if entry is None:
                self.fail("CHK-RNG", relpath, lines[0],
                          f"undeclared RNG draw site `{sig}` in {func} "
                          f"(x{len(lines)}): add it to {allow_path} together "
                          "with a deliberate golden-regeneration decision")
                continue
            stream, count, ln = entry
            expected = STREAM_OF_DIR[relpath.split("/")[1]]
            if stream != expected:
                self.fail("CHK-RNG", allow_path, ln,
                          f"draw site `{sig}` in {relpath} declared on "
                          f"stream '{stream}' but src/{relpath.split('/')[1]}/ "
                          f"owns stream '{expected}'")
            if count != len(lines):
                self.fail("CHK-RNG", relpath, lines[0],
                          f"draw site `{sig}` in {func} occurs "
                          f"{len(lines)}x but {allow_path} declares {count}: "
                          "update the allowlist (and regenerate goldens if "
                          "the draw sequence moved)")
        for key, (_stream, _count, ln) in sorted(allowed.items()):
            self.fail("CHK-RNG", allow_path, ln,
                      f"stale allowlist entry: `{key[2]}` in {key[1]} "
                      f"({key[0]}) no longer exists")

    # --- CHK-GATE

    def gate_reachable(self) -> tuple[dict[str, Function], dict[str, set[str]]]:
        """Methods reachable from Simulator::step and, per method, the set of
        guard tokens dominating *every* call chain into it."""
        methods: dict[str, Function] = {}
        for relpath in GATE_FILES:
            if self.load(relpath) is None:
                continue
            for fn in self.functions[relpath]:
                if fn.qualname.startswith("Simulator::"):
                    methods.setdefault(fn.qualname, fn)
        if GATE_ENTRY_POINT not in methods:
            return {}, {}

        all_tokens: set[str] = set()
        for toks in GATED_MEMBERS.values():
            all_tokens.update(toks)

        short = {q.split("::")[-1]: q for q in methods}
        call_re = re.compile(
            r"(?<![\w.>])(" + "|".join(re.escape(s) for s in sorted(short)) +
            r")\s*\(")

        def body_of(fn: Function) -> str:
            return self.files[fn.relpath].nostrings[fn.body_start:fn.body_end]

        # Call sites: callee -> list of (caller, guard tokens at the site).
        calls: dict[str, list[tuple[str, set[str]]]] = {q: [] for q in methods}
        for qual, fn in methods.items():
            body = body_of(fn)
            for m in call_re.finditer(body):
                callee = short[m.group(1)]
                if callee == qual:
                    continue
                cond = enclosing_conditions(body, m.start())
                toks = {t for t in all_tokens if t in cond}
                calls[callee].append((qual, toks))

        # Reachability from step.
        reachable = {GATE_ENTRY_POINT}
        frontier = [GATE_ENTRY_POINT]
        while frontier:
            cur = frontier.pop()
            body = body_of(methods[cur])
            for m in call_re.finditer(body):
                callee = short[m.group(1)]
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)

        # Entry-guard fixpoint: guards a method can rely on unconditionally.
        entry: dict[str, set[str]] = {q: set(all_tokens) for q in reachable}
        entry[GATE_ENTRY_POINT] = set()
        changed = True
        while changed:
            changed = False
            for qual in reachable:
                if qual == GATE_ENTRY_POINT:
                    continue
                sites = [(c, t) for c, t in calls[qual] if c in reachable]
                if not sites:
                    new = set()
                else:
                    new = set(all_tokens)
                    for caller, toks in sites:
                        new &= toks | entry[caller]
                if new != entry[qual]:
                    entry[qual] = new
                    changed = True
        return {q: methods[q] for q in reachable}, entry

    def check_gate(self):
        if self.load(GATE_FILES[0]) is None:
            return
        reachable, entry = self.gate_reachable()
        if not reachable:
            self.fail("CHK-GATE", GATE_FILES[0], 1,
                      f"entry point {GATE_ENTRY_POINT} not found: the "
                      "reachability analysis has nothing to anchor on")
            return
        member_res = {
            member: re.compile(r"\b" + re.escape(member) + r"\s*[.\[]")
            for member in GATED_MEMBERS
        }
        for qual, fn in sorted(reachable.items()):
            src = self.files[fn.relpath]
            body = src.nostrings[fn.body_start:fn.body_end]
            for member, accept in GATED_MEMBERS.items():
                for m in member_res[member].finditer(body):
                    cond = enclosing_conditions(body, m.start())
                    granted = entry.get(qual, set())
                    if any(t in cond for t in accept) or \
                       any(t in granted for t in accept):
                        continue
                    line = src.line_of(fn.body_start + m.start())
                    self.fail("CHK-GATE", fn.relpath, line,
                              f"access to `{member}` in {qual} (reachable "
                              f"from {GATE_ENTRY_POINT}) is not dominated by "
                              f"`{accept[0]}`: zero-overhead-when-off "
                              "requires every observability/fault touch to "
                              "sit behind its enable guard", waivable=True)

    # --- CHK-ALLOC

    def check_alloc(self):
        list_path = "tools/dfsim_check/hotpath.txt"
        path = os.path.join(self.root, list_path)
        if not os.path.isfile(path):
            self.fail("CHK-ALLOC", list_path, 1, "hot-path list missing")
            return
        targets: list[tuple[str, str, int]] = []  # (relpath, qualname, line)
        closures: list[tuple[str, str, int]] = []
        with open(path, "r", encoding="utf-8") as f:
            for ln, line in enumerate(f, 1):
                line = line.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 3 or parts[0] not in ("fn", "reachable"):
                    self.fail("CHK-ALLOC", list_path, ln,
                              "malformed line (want: fn|reachable path "
                              "Qual::name)")
                    continue
                kind, relpath, qual = parts
                (closures if kind == "reachable" else targets).append(
                    (relpath, qual, ln))

        resolved: dict[tuple[str, str], Function] = {}
        for relpath, qual, ln in targets:
            if self.load(relpath) is None:
                self.fail("CHK-ALLOC", list_path, ln,
                          f"hot-path file {relpath} not found")
                continue
            fn = self.find_function(relpath, qual)
            if fn is None:
                self.fail("CHK-ALLOC", list_path, ln,
                          f"hot-path function {qual} not found in {relpath} "
                          "(keep hotpath.txt in sync with the code)")
                continue
            resolved[(relpath, qual)] = fn

        for relpath, qual, ln in closures:
            if self.load(relpath) is None:
                self.fail("CHK-ALLOC", list_path, ln,
                          f"closure root file {relpath} not found")
                continue
            if relpath in GATE_FILES:
                reachable, _entry = self.gate_reachable()
                if qual not in reachable:
                    self.fail("CHK-ALLOC", list_path, ln,
                              f"closure root {qual} not found in {relpath}")
                    continue
                for q, fn in reachable.items():
                    resolved.setdefault((fn.relpath, q), fn)
            else:
                self.fail("CHK-ALLOC", list_path, ln,
                          "reachable roots are only supported in "
                          f"{GATE_FILES[0]} (Simulator call graph)")

        def vector_is_reference(body: str, m: re.Match) -> bool:
            """`const std::vector<T>& x = ...` binds, it does not allocate."""
            depth = 0
            for i in range(m.end() - 1, len(body)):
                if body[i] == "<":
                    depth += 1
                elif body[i] == ">":
                    depth -= 1
                    if depth == 0:
                        rest = body[i + 1:].lstrip()
                        return rest.startswith(("&", "*"))
                elif body[i] in ";{}":
                    break
            return False

        for (relpath, qual), fn in sorted(resolved.items()):
            src = self.files[relpath]
            body = src.nostrings[fn.body_start:fn.body_end]
            for pattern, what in ALLOC_PATTERNS:
                for m in pattern.finditer(body):
                    if what == "local std::vector" and \
                            vector_is_reference(body, m):
                        continue
                    line = src.line_of(fn.body_start + m.start())
                    self.fail("CHK-ALLOC", relpath, line,
                              f"{what} in hot-path function {qual}: "
                              "zero-alloc-after-warmup forbids allocation "
                              "here (waive capacity-bounded sites with "
                              "`// dfsim-check: allow(CHK-ALLOC): why`)",
                              waivable=True)

    # --- CHK-CONFIG

    def parsed_config_keys(self) -> dict[str, int]:
        src = self.load(CONFIG_IO)
        if src is None:
            return {}
        keys: dict[str, int] = {}
        for m in re.finditer(r'key\s*==\s*"([A-Za-z0-9_.]+)"', src.nocomments):
            keys.setdefault(m.group(1), src.line_of(m.start()))
        return keys

    def canonical_keys(self) -> dict[str, tuple[int, int]]:
        """Key -> (line, offset-in-body) for canonical_params_text emissions."""
        src = self.load(SCHEMA_CPP)
        if src is None:
            return {}
        fn = self.find_function(SCHEMA_CPP, "canonical_params_text")
        if fn is None:
            return {}
        body = src.nocomments[fn.body_start:fn.body_end]
        out: dict[str, tuple[int, int]] = {}
        for m in re.finditer(
                r'\b(?:line|i32|f64|boolean)\s*\(\s*"([A-Za-z0-9_.]+)"', body):
            out.setdefault(m.group(1),
                           (src.line_of(fn.body_start + m.start()), m.start()))
        self._canonical_fn = fn
        return out

    def check_config(self):
        parsed = self.parsed_config_keys()
        if not parsed:
            self.fail("CHK-CONFIG", CONFIG_IO, 1,
                      "no parsed INI keys found (apply_param missing?)")
            return
        canonical = self.canonical_keys()
        doc_src = self.load(CONFIG_DOC)
        doc_keys: set[str] = set()
        if doc_src is None:
            self.fail("CHK-CONFIG", CONFIG_DOC, 1, "docs/CONFIG.md missing")
        else:
            doc_keys = set(re.findall(r"`([A-Za-z0-9_]+(?:\.[A-Za-z0-9_]+)?)`",
                                      doc_src.raw))

        for key, line in sorted(parsed.items()):
            if doc_src is not None and key not in doc_keys:
                self.fail("CHK-CONFIG", CONFIG_IO, line,
                          f"INI key `{key}` is parsed but not documented in "
                          f"{CONFIG_DOC}")
            if canonical and key not in canonical:
                self.fail("CHK-CONFIG", CONFIG_IO, line,
                          f"INI key `{key}` is parsed but missing from the "
                          "canonical serialization (config hashes cannot see "
                          "it) — add it to canonical_params_text")
        for key, (line, _off) in sorted(canonical.items()):
            if key not in parsed:
                self.fail("CHK-CONFIG", SCHEMA_CPP, line,
                          f"canonical serialization emits `{key}` which "
                          "config_io.cpp does not parse: canonical text must "
                          "reload as INI")

        # Hash-gating: gated groups only under their `enabled` guard,
        # everything else unconditional.
        if canonical:
            fn = self._canonical_fn
            src = self.files[SCHEMA_CPP]
            body = src.nostrings[fn.body_start:fn.body_end]
            for key, (line, off) in sorted(canonical.items()):
                cond = enclosing_conditions(body, off)
                prefix = next((p for p in HASH_GATED_PREFIXES
                               if key.startswith(p)), None)
                if prefix is not None:
                    want = prefix + "enabled"
                    if want not in cond:
                        self.fail("CHK-CONFIG", SCHEMA_CPP, line,
                                  f"hash-gated key `{key}` must be emitted "
                                  f"only under `if (p.{want})` so disabled "
                                  "configs keep their hash")
                elif "if" in cond.split("(")[0] or re.search(r"\bif\b", cond):
                    if key not in CONDITIONAL_KEY_EXEMPT:
                        self.fail("CHK-CONFIG", SCHEMA_CPP, line,
                                  f"key `{key}` is emitted conditionally but "
                                  "is not on the emit-only-when-enabled list "
                                  "(HASH_GATED_PREFIXES / "
                                  "CONDITIONAL_KEY_EXEMPT): conditional "
                                  "emission silently forks config hashes")

    # --- CHK-SCHEMA

    def check_schema(self):
        src = self.load(SCHEMA_CPP)
        if src is None:
            self.fail("CHK-SCHEMA", SCHEMA_CPP, 1, "schema.cpp missing")
            return
        hpp = self.load(SCHEMA_HPP)
        version = None
        if hpp is not None:
            m = re.search(r'kSchemaVersion\s*=\s*"([^"]+)"', hpp.nocomments)
            if m:
                version = m.group(1)
        doc = self.load(SCHEMA_DOC)
        if doc is None:
            self.fail("CHK-SCHEMA", SCHEMA_DOC, 1,
                      "docs/SCHEMA.md missing: every results field must be "
                      "documented for the current schema version")
            return
        if version and version not in doc.raw:
            self.fail("CHK-SCHEMA", SCHEMA_DOC, 1,
                      f"docs/SCHEMA.md does not mention the current schema "
                      f"version `{version}`: a version bump requires a "
                      "documentation pass")
        doc_fields = set(re.findall(r"`([A-Za-z0-9_.]+)`", doc.raw))
        for m in re.finditer(r'\.set\(\s*"([A-Za-z0-9_.]+)"', src.nocomments):
            fieldname = m.group(1)
            if fieldname not in doc_fields:
                self.fail("CHK-SCHEMA", SCHEMA_CPP, src.line_of(m.start()),
                          f"results field `{fieldname}` is written by "
                          f"schema.cpp but not documented in {SCHEMA_DOC}")

    # --- CHK-DISPATCH

    def check_dispatch(self):
        for relpath in DISPATCH_FILES:
            src = self.load(relpath)
            if src is None:
                self.fail("CHK-DISPATCH", relpath, 1, "engine file missing")
                continue
            for m in DISPATCH_TOKEN.finditer(src.nostrings):
                self.fail("CHK-DISPATCH", relpath, src.line_of(m.start()),
                          f"engine references `{m.group(0).strip()}`: "
                          "mechanism selection belongs in src/routing/ "
                          "(factory.cpp) — the engine must dispatch through "
                          "the RoutingMechanism interface only",
                          waivable=True)

    # --- driver

    def run(self, checks: list[str]) -> int:
        dispatch = {
            "CHK-RNG": self.check_rng,
            "CHK-GATE": self.check_gate,
            "CHK-ALLOC": self.check_alloc,
            "CHK-CONFIG": self.check_config,
            "CHK-SCHEMA": self.check_schema,
            "CHK-DISPATCH": self.check_dispatch,
        }
        for check in checks:
            dispatch[check]()
        return 1 if self.violations else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="dfsim_check",
                                     description=__doc__.split("\n", 1)[0])
    parser.add_argument("--root", default=".",
                        help="repository root to analyze (default: cwd)")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of checks to run")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit compile_commands.json path")
    parser.add_argument("--list", action="store_true",
                        help="list available checks and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list:
        for c in ALL_CHECKS:
            print(c)
        return 0

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in ALL_CHECKS]
    if unknown:
        print(f"dfsim_check: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")) and \
       not os.path.isdir(os.path.join(root, "tools")):
        print(f"dfsim_check: {root} does not look like a dfsim tree",
              file=sys.stderr)
        return 2

    analysis = Analysis(root, args.compile_commands)
    rc = analysis.run(checks)
    for v in analysis.violations:
        print(v.render())
    if not args.quiet:
        print(f"dfsim_check: {len(checks)} check(s) "
              f"[{', '.join(checks)}], {len(analysis.violations)} "
              f"violation(s)")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
