// dfsim_run — the single CLI over the experiment registry.
//
//   dfsim_run list [--markdown]
//   dfsim_run run [--experiments=all|a,b,..] [--scale=..] [--out=DIR] ...
//   dfsim_run check --in=DIR [--goldens=DIR] [--rel-tol --abs-tol]
//   dfsim_run render --in=DIR [--out=RESULTS.md] [--goldens=DIR]
//   dfsim_run gate [--experiments=..] --goldens=DIR [--scale=tiny] ...
//   dfsim_run perf [--scales=tiny,medium] [--loads=0.05,0.3] [--out=F]
//
// `run` executes registered experiments through the parallel sweep engine
// and emits schema-versioned JSON (+ long-format CSV) per experiment;
// `check` evaluates the paper-parity trend gates and the tolerance-banded
// golden comparison over emitted documents; `render` generates RESULTS.md;
// `gate` is run+check in one process (the ctest parity target); `perf`
// times raw engine throughput (cycles/sec) per scale x load — and, with
// --engine-threads=1,2,8, per shard count, turning the file into a scaling
// record — emitting the BENCH_engine.json trajectory document, optionally
// soft-checking it against a committed baseline (--baseline, warns on
// >threshold drops).
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "report/parity.hpp"
#include "report/registry.hpp"
#include "report/render.hpp"
#include "sim/config_io.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/packet_trace.hpp"
#include "traffic/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dfsim;
using namespace dfsim::report;

int usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: dfsim_run <command> [flags]\n"
      "  list    [--markdown]                      list registered experiments\n"
      "  run     [--experiments=all|a,b] [--scale=tiny|small|medium|paper]\n"
      "          [--out=DIR] [--csv] [--quiet] [--strip-rev] [--progress]\n"
      "          [--warmup=N --measure=N --reps=N --seed=N --threads=N]\n"
      "          [--loads=0.1,0.2] [--routings=MIN,Base,..] [--with-ugal]\n"
      "          [--traffic=NAME --injection=bernoulli|bursty --trace=F]\n"
      "          [--adv-offset=N --shift-offset=N --hotspot-count=N\n"
      "           --hotspot-fraction=F --mixed-uniform-fraction=F\n"
      "           --burst-factor=F --burst-len=F]\n"
      "          [--config=file.ini] [--set=key=v;key2=v2]\n"
      "  check   --in=DIR [--goldens=DIR] [--rel-tol=R --abs-tol=A]\n"
      "  render  --in=DIR [--out=RESULTS.md] [--goldens=DIR]\n"
      "  gate    [--experiments=..] --goldens=DIR [run flags]\n"
      "  observe [--scale=tiny|..] [--out=DIR] [--name=congestion]\n"
      "          [--routing=Base] [--load=F] [--warmup=N --measure=N]\n"
      "          [--sample-period=N --max-samples=N] [--trace-rate=F]\n"
      "          [--trace-max-events=N] [--strip-rev] [run traffic flags]\n"
      "  perf    [--scales=tiny,medium] [--loads=0.05,0.3] [--routing=Base]\n"
      "          [--traffic=uniform] [--cycles=N] [--warmup=N] [--seed=N]\n"
      "          [--out=BENCH_engine.json] [--baseline=F] [--threshold=0.2]\n"
      "          [--phases] [--engine-threads=1,2,8]\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<const ExperimentSpec*> select_experiments(const CliOptions& cli) {
  std::string names = cli.get("experiments", "all");
  // Positional names work too: `dfsim_run run fig5a fig5b`.
  if (!cli.has("experiments") && cli.positional().size() > 1) {
    names.clear();
    for (std::size_t i = 1; i < cli.positional().size(); ++i) {
      if (!names.empty()) names += ',';
      names += cli.positional()[i];
    }
  }
  std::vector<const ExperimentSpec*> specs;
  if (names == "all") {
    for (const ExperimentSpec& spec : experiment_registry()) {
      specs.push_back(&spec);
    }
    return specs;
  }
  for (const std::string& name : split_csv(names)) {
    const ExperimentSpec* spec = find_experiment(name);
    if (!spec) {
      throw std::invalid_argument(
          "unknown experiment '" + name + "' (see dfsim_run list)");
    }
    specs.push_back(spec);
  }
  if (specs.empty()) throw std::invalid_argument("no experiments selected");
  return specs;
}

/// Per-scale measurement defaults; tiny's are also the golden settings the
/// committed tests/goldens were produced with.
void default_cycles(const std::string& scale, Cycle& warmup, Cycle& measure) {
  if (scale == "tiny") {
    warmup = 1000;
    measure = 2000;
  } else if (scale == "paper") {
    warmup = 5000;
    measure = 15000;
  } else {
    warmup = 2000;
    measure = 3000;
  }
}

RunContext make_context(const CliOptions& cli) {
  RunContext ctx;
  ctx.scale = cli.get("scale", CliOptions::env("DFSIM_SCALE", "medium"));
  ctx.base = presets::by_name(ctx.scale);
  if (cli.has("config")) ctx.base = load_params(cli.get("config"), ctx.base);
  if (cli.has("set")) {
    // `--set=routing.pb_ugal_threshold=5;topo.a=8` — ';'-separated
    // key=value assignments through the config_io keyspace.
    std::stringstream ss(cli.get("set"));
    std::string assignment;
    while (std::getline(ss, assignment, ';')) {
      const std::size_t eq = assignment.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("--set expects key=value, got '" +
                                    assignment + "'");
      }
      apply_param(ctx.base, assignment.substr(0, eq),
                  assignment.substr(eq + 1));
    }
  }
  default_cycles(ctx.scale, ctx.options.warmup, ctx.options.measure);
  ctx.options.warmup = cli.get_int(
      "warmup", CliOptions::env_int("DFSIM_WARMUP", ctx.options.warmup));
  ctx.options.measure = cli.get_int(
      "measure", CliOptions::env_int("DFSIM_MEASURE", ctx.options.measure));
  if (cli.has("reps")) {
    ctx.options.reps = static_cast<std::int32_t>(cli.get_int("reps", 1));
    ctx.reps = ctx.options.reps;
  }
  ctx.base.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(ctx.base.seed)));
  ctx.threads = static_cast<int>(cli.get_int("threads", 0));

  if (cli.has("loads")) {
    std::vector<double> loads;
    for (const std::string& item : split_csv(cli.get("loads"))) {
      loads.push_back(std::stod(item));
    }
    if (!loads.empty()) ctx.loads = std::move(loads);
  }
  if (cli.has("routings")) {
    std::vector<RoutingKind> lineup;
    for (const std::string& item : split_csv(cli.get("routings"))) {
      lineup.push_back(routing_kind_from_string(item));
    }
    if (!lineup.empty()) ctx.lineup = std::move(lineup);
  }
  // Appends to the default (or --routings) line-up, as the old benches did.
  ctx.with_ugal = cli.has("with-ugal");

  if (cli.has("traffic")) {
    ctx.base.traffic.kind = traffic_kind_from_string(cli.get("traffic"));
    ctx.traffic_forced = true;
  }
  if (cli.has("trace")) {
    ctx.base.traffic.kind = TrafficKind::kTrace;
    ctx.base.traffic.trace_path = cli.get("trace");
    (void)validate_trace(ctx.base.traffic.trace_path);
    ctx.traffic_forced = true;
  }
  if (cli.has("injection")) {
    ctx.base.traffic.injection =
        injection_process_from_string(cli.get("injection"));
    ctx.injection_forced = true;
  }
  if (cli.has("adv-offset")) {
    ctx.base.traffic.adv_offset = static_cast<std::int32_t>(
        cli.get_int("adv-offset", ctx.base.traffic.adv_offset));
    ctx.adv_offset_forced = true;
  }
  if (cli.has("shift-offset")) {
    ctx.base.traffic.shift_offset = static_cast<std::int32_t>(
        cli.get_int("shift-offset", ctx.base.traffic.shift_offset));
    ctx.shift_offset_forced = true;
  }
  if (cli.has("hotspot-count")) {
    ctx.base.traffic.hotspot_count = static_cast<std::int32_t>(
        cli.get_int("hotspot-count", ctx.base.traffic.hotspot_count));
    ctx.hotspot_count_forced = true;
  }
  if (cli.has("hotspot-fraction")) {
    ctx.base.traffic.hotspot_fraction =
        cli.get_double("hotspot-fraction", ctx.base.traffic.hotspot_fraction);
    ctx.hotspot_fraction_forced = true;
  }
  ctx.base.traffic.mixed_uniform_fraction = cli.get_double(
      "mixed-uniform-fraction", ctx.base.traffic.mixed_uniform_fraction);
  ctx.base.traffic.burst_factor =
      cli.get_double("burst-factor", ctx.base.traffic.burst_factor);
  ctx.base.traffic.burst_len =
      cli.get_double("burst-len", ctx.base.traffic.burst_len);
  return ctx;
}

/// Crash-safe emission: a killed or crashing run must never leave a
/// truncated JSON/CSV/RESULTS.md behind for `check`/`render` to trip over.
void write_file(const std::filesystem::path& path, const std::string& text) {
  write_file_atomic(path.string(), text);
}

ResultsDoc load_doc(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return doc_from_json(Json::parse(buffer.str()));
}

/// Every registry experiment with a document in `dir`, in registry order.
std::vector<ResultsDoc> load_docs(const std::filesystem::path& dir) {
  std::vector<ResultsDoc> docs;
  for (const ExperimentSpec& spec : experiment_registry()) {
    const std::filesystem::path path = dir / (std::string(spec.name) + ".json");
    if (std::filesystem::exists(path)) docs.push_back(load_doc(path));
  }
  if (docs.empty()) {
    throw std::runtime_error("no results documents under " + dir.string());
  }
  return docs;
}

std::vector<GateOutcome> evaluate_gates(const std::vector<ResultsDoc>& docs,
                                        const std::string& goldens_dir,
                                        double rel_tol, double abs_tol) {
  std::vector<GateOutcome> gates;
  for (const ResultsDoc& doc : docs) {
    for (GateOutcome& g : check_trend_gates(doc)) {
      gates.push_back(std::move(g));
    }
    if (goldens_dir.empty()) continue;
    const std::filesystem::path golden_path =
        std::filesystem::path(goldens_dir) /
        (doc.header.experiment + ".json");
    if (!std::filesystem::exists(golden_path)) continue;
    for (GateOutcome& g : check_against_golden(doc, load_doc(golden_path),
                                               rel_tol, abs_tol)) {
      gates.push_back(std::move(g));
    }
  }
  return gates;
}

int print_gates(const std::vector<GateOutcome>& gates) {
  ResultTable table({"experiment", "gate", "status", "detail"});
  for (const GateOutcome& g : gates) {
    table.begin_row();
    table.set("experiment", g.experiment);
    table.set("gate", g.gate);
    table.set("status", to_string(g.status));
    table.set("detail", g.detail);
  }
  std::cout << "== paper-parity gates ==\n";
  table.write_pretty(std::cout);
  if (!all_passed(gates)) {
    std::cout << "\nPARITY GATES FAILED\n";
    return 1;
  }
  std::cout << "\nall parity gates passed\n";
  return 0;
}

std::vector<ResultsDoc> run_selected(const CliOptions& cli) {
  const std::vector<const ExperimentSpec*> specs = select_experiments(cli);
  const bool quiet = cli.has("quiet");
  const bool strip_rev = cli.has("strip-rev");
  const std::string git_rev = strip_rev ? std::string{} : current_git_rev();
  const std::string out_dir = cli.get("out", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
  }
  // One context for all experiments: --config/--trace are parsed and
  // validated once; each spec.run copies it by value.
  const RunContext ctx = make_context(cli);
  const bool progress = cli.has("progress");
  std::vector<ResultsDoc> docs;
  for (const ExperimentSpec* spec : specs) {
    if (!quiet) {
      std::cerr << "running " << spec->name << " ...\n";
    }
    RunContext run_ctx = ctx;
    if (progress) {
      // One structured line per watchdog chunk. Sweeps run the points on a
      // thread pool, so the line is assembled first and written under a
      // lock — interleaved heartbeats stay line-atomic.
      static std::mutex progress_mutex;
      const std::string name = spec->name;
      run_ctx.options.heartbeat = [name](Cycle cycle, std::int64_t delivered,
                                         double elapsed) {
        std::ostringstream line;
        line << "progress experiment=" << name << " cycle=" << cycle
             << " delivered=" << delivered << " elapsed="
             << format_fixed(elapsed, 2) << "s\n";
        const std::scoped_lock lock(progress_mutex);
        std::cerr << line.str();
      };
    }
    ResultsDoc doc = run_experiment(*spec, run_ctx);
    doc.header.git_rev = git_rev;
    if (!out_dir.empty()) {
      const std::filesystem::path base =
          std::filesystem::path(out_dir) / spec->name;
      write_file(base.string() + ".json", to_json(doc).dump());
      std::ostringstream csv;
      write_csv(doc, csv);
      write_file(base.string() + ".csv", csv.str());
    }
    if (!quiet) print_doc(doc, cli.has("csv"), std::cout);
    docs.push_back(std::move(doc));
  }
  return docs;
}

int cmd_list(const CliOptions& cli) {
  if (cli.has("markdown")) {
    std::cout << "| experiment | paper ref | topology | what it reproduces "
                 "|\n|---|---|---|---|\n";
    for (const ExperimentSpec& spec : experiment_registry()) {
      std::cout << "| `" << spec.name << "` | " << spec.paper_ref << " | "
                << spec.topology << " | " << spec.title << " |\n";
    }
    return 0;
  }
  ResultTable table({"experiment", "paper_ref", "topology", "title"});
  for (const ExperimentSpec& spec : experiment_registry()) {
    table.begin_row();
    table.set("experiment", spec.name);
    table.set("paper_ref", spec.paper_ref);
    table.set("topology", spec.topology);
    table.set("title", spec.title);
  }
  table.write_pretty(std::cout);
  return 0;
}

int cmd_run(const CliOptions& cli) {
  run_selected(cli);
  return 0;
}

int cmd_check(const CliOptions& cli) {
  if (!cli.has("in")) return usage("check needs --in=DIR");
  const std::vector<ResultsDoc> docs = load_docs(cli.get("in"));
  const std::vector<GateOutcome> gates =
      evaluate_gates(docs, cli.get("goldens", ""),
                     cli.get_double("rel-tol", 0.05),
                     cli.get_double("abs-tol", 0.05));
  return print_gates(gates);
}

int cmd_render(const CliOptions& cli) {
  if (!cli.has("in")) return usage("render needs --in=DIR");
  const std::vector<ResultsDoc> docs = load_docs(cli.get("in"));
  const std::vector<GateOutcome> gates =
      evaluate_gates(docs, cli.get("goldens", ""),
                     cli.get_double("rel-tol", 0.05),
                     cli.get_double("abs-tol", 0.05));
  const std::string out = cli.get("out", "RESULTS.md");
  write_file(out, render_markdown(docs, gates));
  std::cout << "wrote " << out << " (" << docs.size() << " experiments, "
            << gates.size() << " gates)\n";
  return all_passed(gates) ? 0 : 1;
}

int cmd_gate(const CliOptions& cli) {
  if (!cli.has("goldens")) return usage("gate needs --goldens=DIR");
  const std::vector<ResultsDoc> docs = run_selected(cli);
  const std::vector<GateOutcome> gates =
      evaluate_gates(docs, cli.get("goldens"),
                     cli.get_double("rel-tol", 0.05),
                     cli.get_double("abs-tol", 0.05));
  return print_gates(gates);
}

// ---------------------------------------------------------------------------
// observe: one instrumented run with spatial telemetry + packet tracing
// forced on, emitting the heatmap document (JSON + long CSV), the Chrome
// trace-event JSON (load in Perfetto / chrome://tracing), and the compact
// binary trace. Every artifact is round-trip-validated before it is written:
// a file that exists is a file the readers can parse.

int cmd_observe(const CliOptions& cli) {
  RunContext ctx = make_context(cli);
  SimParams p = ctx.base;
  if (cli.has("routing")) {
    p.routing.kind = routing_kind_from_string(cli.get("routing"));
  }
  p.traffic.load = cli.get_double("load", p.traffic.load);
  p.telemetry.enabled = true;
  p.telemetry.sample_period = static_cast<Cycle>(
      cli.get_int("sample-period", p.telemetry.sample_period));
  p.telemetry.max_samples = static_cast<std::int32_t>(
      cli.get_int("max-samples", p.telemetry.max_samples));
  p.trace.enabled = true;
  p.trace.sample_rate = cli.get_double("trace-rate", p.trace.sample_rate);
  p.trace.max_events = static_cast<std::int64_t>(
      cli.get_int("trace-max-events", p.trace.max_events));

  Simulator sim(p);
  sim.run(ctx.options.warmup);
  sim.begin_measurement();
  sim.run(ctx.options.measure);

  const std::string out_dir = cli.get("out", "observe");
  std::filesystem::create_directories(out_dir);
  const std::string name = cli.get("name", "congestion");
  const std::filesystem::path base = std::filesystem::path(out_dir) / name;

  // Heatmap document: validated by parsing the emitted JSON back through
  // the schema reader.
  ResultsDoc doc = telemetry::build_heatmap_doc(sim, name, ctx.scale);
  doc.header.warmup = ctx.options.warmup;
  if (cli.has("strip-rev")) doc.header.git_rev.clear();
  const std::string json_text = to_json(doc).dump();
  (void)doc_from_json(Json::parse(json_text));  // throws on schema breakage
  write_file(base.string() + "_heatmap.json", json_text);
  std::ostringstream csv;
  write_csv(doc, csv);
  write_file(base.string() + "_heatmap.csv", csv.str());

  // Traces: binary round-trip and Chrome-JSON parse checked in-memory
  // before the files land.
  const telemetry::PacketTracer& tracer = sim.packet_tracer();
  std::ostringstream bin;
  telemetry::write_trace_binary(tracer.events(), tracer.dropped_events(), bin);
  {
    std::istringstream check(bin.str());
    std::vector<telemetry::TraceEvent> decoded;
    std::int64_t dropped = 0;
    if (!telemetry::read_trace_binary(check, decoded, dropped) ||
        decoded.size() != tracer.events().size()) {
      throw std::runtime_error("observe: binary trace failed round-trip");
    }
  }
  write_file(base.string() + "_trace.bin", bin.str());
  std::ostringstream chrome;
  telemetry::write_chrome_trace(tracer.events(), chrome);
  (void)Json::parse(chrome.str());  // throws when not well-formed JSON
  write_file(base.string() + "_trace.json", chrome.str());

  const telemetry::TelemetrySink& sink = sim.telemetry_sink();
  std::cerr << "observe: " << sink.frames() << " frames ("
            << sink.dropped_frames() << " dropped), "
            << tracer.events().size() << " trace events from "
            << tracer.sampled_packets() << " sampled packets ("
            << tracer.dropped_events() << " dropped)\n"
            << "wrote " << base.string() << "_heatmap.{json,csv} and "
            << base.string() << "_trace.{json,bin}\n";
  return 0;
}

// ---------------------------------------------------------------------------
// perf: raw engine stepping throughput (the BENCH_engine.json trajectory).

/// Wall-clock cycles for one timed point, sized so every point finishes in
/// well under a second on the scan-free engine while still averaging over
/// enough cycles that per-cycle noise washes out.
Cycle default_perf_cycles(const std::string& scale) {
  if (scale == "tiny") return 60000;
  if (scale == "small") return 20000;
  if (scale == "medium") return 8000;
  if (scale == "exa") return 200;  // ~100k routers: every cycle is costly
  return 600;  // paper
}

int cmd_perf(const CliOptions& cli) {
  const std::vector<std::string> scales =
      split_csv(cli.get("scales", "tiny,medium"));
  std::vector<double> loads;
  for (const std::string& item : split_csv(cli.get("loads", "0.05,0.3"))) {
    try {
      loads.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("perf: bad --loads entry '" + item + "'");
    }
  }
  const RoutingKind routing =
      routing_kind_from_string(cli.get("routing", "Base"));
  const TrafficKind traffic =
      traffic_kind_from_string(cli.get("traffic", "uniform"));
  const Cycle warmup = cli.get_int("warmup", 500);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // --engine-threads=1,2,8 measures the same points at several shard
  // counts (engine.threads), turning the trajectory file into a scaling
  // record. Points are tagged with their shard count; baseline matching is
  // per (scale, load, engine_threads), with untagged history entries read
  // as serial.
  std::vector<std::int32_t> thread_counts;
  for (const std::string& item :
       split_csv(cli.get("engine-threads", "1"))) {
    try {
      thread_counts.push_back(std::stoi(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("perf: bad --engine-threads entry '" +
                                  item + "'");
    }
  }
  // --phases folds the engine's per-phase wall-time accounting into each
  // point. The profiler's clock reads add overhead, so phase-profiled
  // cycles/sec are not comparable with unprofiled baselines — flagged in
  // the document and excluded from the regression check.
  const bool phases = cli.has("phases");
  if (phases) {
    for (const std::int32_t t : thread_counts) {
      if (t != 1) {
        throw std::invalid_argument(
            "perf: --phases requires --engine-threads=1 (the phase "
            "profiler is serial-only)");
      }
    }
  }

  Json points = Json::array();
  for (const std::string& scale : scales) {
    for (const double load : loads) {
      for (const std::int32_t threads : thread_counts) {
      SimParams p = presets::by_name(scale);
      p.routing.kind = routing;
      p.traffic.kind = traffic;
      p.traffic.load = load;
      p.seed = seed;
      p.engine.threads = threads;
      const Cycle cycles = cli.get_int("cycles", default_perf_cycles(scale));

      Simulator sim(p);
      if (phases) sim.enable_phase_profiler();
      sim.run(warmup);
      sim.begin_measurement();
      if (phases) sim.enable_phase_profiler();  // reset: measure window only
      const auto t0 = std::chrono::steady_clock::now();
      sim.run(cycles);
      const auto t1 = std::chrono::steady_clock::now();
      const double seconds =
          std::chrono::duration<double>(t1 - t0).count();
      const double cps =
          seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;

      Json pt = Json::object();
      pt.set("scale", scale);
      pt.set("nodes", p.nodes());
      pt.set("load", load);
      if (threads != 1) {
        pt.set("engine_threads", static_cast<std::int64_t>(threads));
      }
      pt.set("cycles", static_cast<std::int64_t>(cycles));
      pt.set("seconds", seconds);
      pt.set("cycles_per_sec", cps);
      pt.set("delivered", sim.metrics().delivered);
      std::cerr << "perf " << scale << " load=" << load;
      if (threads != 1) std::cerr << " threads=" << threads;
      std::cerr << ": " << static_cast<std::int64_t>(cps)
                << " cycles/sec (" << cycles << " cycles, "
                << sim.metrics().delivered << " delivered)\n";
      if (phases) {
        const telemetry::PhaseProfiler& prof = sim.phase_profiler();
        Json breakdown = Json::object();
        for (std::int32_t ph = 0; ph < telemetry::kPhaseCount; ++ph) {
          const auto phase = static_cast<telemetry::Phase>(ph);
          const double s = prof.seconds(phase);
          breakdown.set(telemetry::to_string(phase), s);
          std::cerr << "  phase " << telemetry::to_string(phase) << ": "
                    << format_fixed(s * 1e3, 2) << " ms ("
                    << format_fixed(prof.total_seconds() > 0.0
                                        ? 100.0 * s / prof.total_seconds()
                                        : 0.0,
                                    1)
                    << "%)\n";
        }
        pt.set("phase_seconds", std::move(breakdown));
      }
      points.push_back(std::move(pt));
      }
    }
  }

  Json doc = Json::object();
  doc.set("schema", "dfsim-bench-engine/v1");
  doc.set("routing", to_string(routing));
  doc.set("traffic", to_string(traffic));
  doc.set("warmup", static_cast<std::int64_t>(warmup));
  doc.set("points", points);
  if (phases) doc.set("phase_profiled", true);

  // Read the committed baseline (when given) once: it is both the soft
  // regression reference and the carrier of the perf-trajectory history.
  Json base;
  bool base_ok = false;
  if (cli.has("baseline")) {
    std::ifstream in(cli.get("baseline"), std::ios::binary);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      try {
        base = Json::parse(buf.str());
        (void)base.get("points");
        base_ok = true;
      } catch (const std::exception& e) {
        std::cerr << "perf: baseline '" << cli.get("baseline")
                  << "' corrupt (" << e.what() << "), skipping comparison\n";
      }
    } else {
      std::cerr << "perf: baseline '" << cli.get("baseline")
                << "' not readable, skipping comparison\n";
    }
  }

  // Per-run trajectory history: the emitted file used to hold only the
  // latest measurement, so re-emitting destroyed the trajectory the file
  // exists to record. Each run now appends {git_rev, date, points} to the
  // history carried over from the baseline file; the regression check reads
  // the latest history entry of the baseline when one exists.
  {
    Json history = Json::array();
    if (base_ok) {
      if (const Json* prior = base.find("history")) {
        if (prior->is_array()) history = *prior;
      }
    }
    Json entry = Json::object();
    entry.set("git_rev", current_git_rev());
    std::time_t now = std::time(nullptr);
    char date[32] = "unknown";
    if (std::tm tm_buf{}; gmtime_r(&now, &tm_buf) != nullptr) {
      std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_buf);
    }
    entry.set("date", std::string(date));
    if (phases) entry.set("phase_profiled", true);
    entry.set("points", points);
    history.push_back(std::move(entry));
    doc.set("history", std::move(history));
  }

  // Soft regression check against the committed trajectory file: timing
  // noise makes a hard gate flaky, so drops past the threshold only warn —
  // and an unreadable or corrupt baseline skips the comparison instead of
  // failing the (otherwise successful) measurement. Phase-profiled runs skip
  // it too: the profiler's clock reads slow the engine down.
  if (base_ok && phases) {
    std::cerr << "perf: --phases run, skipping baseline comparison\n";
  }
  if (base_ok && !phases) {
    const double threshold = cli.get_double("threshold", 0.2);
    // Prefer the baseline's most recent history entry (the actual latest
    // measurement); fall back to its top-level points for pre-history files.
    const Json* base_points = &base.get("points");
    if (const Json* history = base.find("history")) {
      if (history->is_array() && history->size() > 0) {
        const Json& latest = history->items()[history->size() - 1];
        if (const Json* hp = latest.find("points")) {
          if (!latest.find("phase_profiled")) base_points = hp;
        }
      }
    }
    int warnings = 0;
    {
      for (const Json& pt : doc.get("points").items()) {
        for (const Json& bp : base_points->items()) {
          // engine_threads is omitted for serial points, so pre-sharding
          // history entries compare as 1 and keep matching serial points.
          const auto threads_of = [](const Json& point) {
            const Json* t = point.find("engine_threads");
            return t ? static_cast<std::int64_t>(t->as_number())
                     : std::int64_t{1};
          };
          if (bp.get_string("scale") != pt.get_string("scale") ||
              bp.get_number("load") != pt.get_number("load") ||
              threads_of(bp) != threads_of(pt)) {
            continue;
          }
          const double now = pt.get_number("cycles_per_sec");
          const double before = bp.get_number("cycles_per_sec");
          if (before > 0.0 && now < (1.0 - threshold) * before) {
            ++warnings;
            std::cerr << "perf WARNING: " << pt.get_string("scale")
                      << " load=" << pt.get_number("load") << " regressed "
                      << format_fixed(100.0 * (1.0 - now / before), 1)
                      << "% (" << static_cast<std::int64_t>(before) << " -> "
                      << static_cast<std::int64_t>(now) << " cycles/sec)\n";
          }
        }
      }
      if (warnings == 0) {
        std::cerr << "perf: no regression beyond "
                  << format_fixed(100.0 * threshold, 0)
                  << "% vs " << cli.get("baseline") << "\n";
      }
    }
  }

  if (cli.has("out")) {
    write_file(cli.get("out"), doc.dump());
    std::cerr << "wrote " << cli.get("out") << "\n";
  } else {
    std::cout << doc.dump();
  }
  return 0;  // soft gate: warnings never fail the run
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string command = cli.positional().front();
  try {
    if (command == "list") return cmd_list(cli);
    if (command == "run") return cmd_run(cli);
    if (command == "check") return cmd_check(cli);
    if (command == "render") return cmd_render(cli);
    if (command == "gate") return cmd_gate(cli);
    if (command == "observe") return cmd_observe(cli);
    if (command == "perf") return cmd_perf(cli);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage("unknown command '" + command + "'");
}
