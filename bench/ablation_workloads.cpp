// Workload ablation over the traffic/ subsystem: the paper evaluates its
// contention-counter mechanisms only under UN and ADV+h synthetics, but the
// central claim — counters detect *remote* congestion faster than credits —
// is most stressed by skewed and time-varying workloads. This bench runs the
// routing line-up across every new pattern (permutations, hotspot, bursty
// layers) at one load and reports mean latency, p99 tail latency (from the
// log2 histogram), accepted throughput, and misrouted share per pattern.
//
// Expectations: the permutations that cross groups (SHIFT, BITCOMP,
// TRANSPOSE, TORNADO) funnel whole groups onto few global channels, so MIN
// saturates while the adaptive mechanisms recover bandwidth; GROUPLOCAL
// stays minimal for everyone; HOTSPOT and the bursty layers separate the
// mechanisms mostly in the tail (p99), which mean-only reporting hides.
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const double load = cli.get_double("load", 0.30);

  std::vector<RoutingKind> routings = parse_lineup(
      cli, {RoutingKind::kMin, RoutingKind::kUgalL, RoutingKind::kPiggyback,
            RoutingKind::kCbBase, RoutingKind::kCbEctn});

  struct Scenario {
    std::string name;
    TrafficParams traffic;
  };
  std::vector<Scenario> scenarios;
  if (cfg.traffic_forced) {
    scenarios.push_back({traffic_label(cfg.base.traffic), cfg.base.traffic});
  } else {
    const std::int32_t npg = cfg.base.topo.a * cfg.base.topo.p;
    auto add = [&](const std::string& name, TrafficKind kind,
                   InjectionProcess injection = InjectionProcess::kBernoulli) {
      Scenario s{name, cfg.base.traffic};
      s.traffic.kind = kind;
      s.traffic.injection = injection;
      scenarios.push_back(std::move(s));
    };
    // Bench defaults (explicit flags always win): shift by a group's worth
    // of nodes plus one, so every group targets the next group with
    // destinations straddling a router boundary; hot-set sizing keeps
    // per-hot-node demand under the 1 phit/cycle ejection bound
    // (N*load*f/H < 1 at the default load), so the HOTSPOT row separates
    // mechanisms instead of showing ejection-limited "sat" everywhere.
    if (!cli.has("shift-offset")) cfg.base.traffic.shift_offset = npg + 1;
    if (!cli.has("hotspot-count")) {
      cfg.base.traffic.hotspot_count =
          std::max<std::int32_t>(1, cfg.base.topo.nodes() / 8);
    }
    if (!cli.has("hotspot-fraction")) cfg.base.traffic.hotspot_fraction = 0.3;
    add("SHIFT", TrafficKind::kShift);
    add("BITCOMP", TrafficKind::kBitComplement);
    add("TRANSPOSE", TrafficKind::kTranspose);
    add("TORNADO", TrafficKind::kTornado);
    add("GROUPLOCAL", TrafficKind::kGroupLocal);
    add("HOTSPOT", TrafficKind::kHotspot);
    add("UN+bursty", TrafficKind::kUniform, InjectionProcess::kBursty);
    add("ADV+1+bursty", TrafficKind::kAdversarial, InjectionProcess::kBursty);
  }

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};
  std::vector<SweepPoint> points;
  for (const Scenario& scenario : scenarios) {
    for (const RoutingKind r : routings) {
      SimParams params = cfg.base;
      params.routing.kind = r;
      params.traffic = scenario.traffic;
      params.traffic.load = load;
      points.push_back(SweepPoint{params, options});
    }
  }
  const std::vector<SteadyResult> results = run_sweep(points);

  std::vector<std::string> columns{"pattern"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));
  ResultTable latency(columns);
  ResultTable latency_p99(columns);
  ResultTable throughput(columns);
  ResultTable misrouted(columns);

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    latency.begin_row();
    latency_p99.begin_row();
    throughput.begin_row();
    misrouted.begin_row();
    latency.set("pattern", scenarios[si].name);
    latency_p99.set("pattern", scenarios[si].name);
    throughput.set("pattern", scenarios[si].name);
    misrouted.set("pattern", scenarios[si].name);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      const SteadyResult& res = results[si * routings.size() + ri];
      const std::string col = to_string(routings[ri]);
      if (res.backlog_per_node > 4.0) {
        latency.set(col, "sat");
        latency_p99.set(col, "sat");
      } else {
        latency.set(col, res.latency_avg, 1);
        latency_p99.set(col, res.latency_p99, 1);
      }
      throughput.set(col, res.throughput, 3);
      misrouted.set(col, 100.0 * res.misrouted_fraction, 1);
    }
  }

  std::cout << "# Workload ablation — routing mechanisms across traffic "
               "models, load=" << load << "\n# scale=" << cfg.scale << " ("
            << cfg.base.topo.nodes() << " nodes), warmup=" << cfg.warmup
            << " measure=" << cfg.measure << " reps=" << cfg.reps << "\n\n";
  emit(cfg, latency, "average packet latency (cycles) per pattern");
  emit(cfg, latency_p99, "p99 packet latency (cycles) per pattern");
  emit(cfg, throughput, "accepted load (phits/node/cycle) per pattern");
  emit(cfg, misrouted, "globally misrouted packets (%) per pattern");
  return 0;
}
