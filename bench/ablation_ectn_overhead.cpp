// Section VI-B ablation: measured wire cost of the ECtN partial-array
// broadcast under the three encodings the paper discusses (full array,
// nonempty-with-id, incremental) plus the asynchronous-update policy, on
// live traffic. The paper only *estimates* the full-array cost analytically
// (~6 phits per 100-cycle update, ~6% of a local link on Table I); this
// bench reproduces that estimate and then measures what the alternative
// encodings actually save on running traffic.
#include <iostream>

#include "common.hpp"
#include "core/ectn_state.hpp"
#include "engine/simulator.hpp"

namespace {

constexpr std::int32_t kPhitBits = 80;  // 10-byte phits (Section IV-B)

struct Scenario {
  std::string name;
  dfsim::TrafficKind kind;
  double load;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const auto async_mult =
      static_cast<std::int32_t>(cli.get_int("async-mult", 4));
  const auto urgent_delta =
      static_cast<std::int32_t>(cli.get_int("urgent-delta", 4));

  std::cout << "# Section VI-B — ECtN broadcast overhead\n"
            << "# scale=" << cfg.scale << " (" << cfg.base.topo.nodes()
            << " nodes), phit=" << kPhitBits << " bits, update period="
            << cfg.base.routing.ectn_update_period << " cycles\n\n";

  // The paper's analytic estimate, for this scale and for Table I.
  for (const auto& preset : {std::string("paper"), std::string()}) {
    SimParams p = preset.empty() ? cfg.base : presets::by_name(preset);
    p.routing.kind = RoutingKind::kCbEctn;
    const auto est = estimate_ectn_overhead(p);
    std::cout << "analytic full-array estimate ("
              << (preset.empty() ? cfg.scale : preset)
              << "): " << est.counters << " counters x "
              << est.bits_per_counter << " bits = " << est.payload_bits
              << " bits = " << est.phits << " phits -> "
              << 100.0 * est.bandwidth_fraction << "% of a local link\n";
  }
  std::cout << "\n";

  const std::vector<Scenario> scenarios{
      {"UN 0.30", TrafficKind::kUniform, 0.30},
      {"UN 0.60", TrafficKind::kUniform, 0.60},
      {"ADV+1 0.20", TrafficKind::kAdversarial, 0.20},
      {"ADV+1 0.40", TrafficKind::kAdversarial, 0.40},
  };

  ResultTable table({"scenario", "full", "nonempty", "incr", "async",
                     "full_phits", "overhead_pct", "urgent"});
  for (const Scenario& sc : scenarios) {
    SimParams p = cfg.base;
    p.routing.kind = RoutingKind::kCbEctn;
    p.traffic.kind = sc.kind;
    p.traffic.adv_offset = 1;
    p.traffic.load = sc.load;
    Simulator sim(p);
    sim.run(cfg.warmup);
    sim.enable_ectn_monitor(async_mult, urgent_delta);
    sim.run(cfg.measure);
    const EctnOverheadReport rep = sim.ectn_monitor().report();

    table.begin_row();
    table.set("scenario", sc.name);
    table.set("full", rep.avg_bits_full, 1);
    table.set("nonempty", rep.avg_bits_nonempty, 1);
    table.set("incr", rep.avg_bits_incremental, 1);
    table.set("async", rep.avg_bits_async, 1);
    table.set("full_phits", rep.phits_full(kPhitBits), 2);
    table.set("overhead_pct",
              100.0 * rep.overhead_fraction(
                          kPhitBits, p.routing.ectn_update_period,
                          rep.avg_bits_full),
              2);
    table.set("urgent", static_cast<double>(rep.async_urgent_messages), 0);
  }
  emit(cfg, table,
       "avg broadcast payload (bits/update/router) per encoding; full-array "
       "phits + link overhead; async urgent messages");

  std::cout
      << "\nReading: `nonempty` beats `full` while few counters are hot\n"
      << "(uniform traffic); `incr` wins once the pattern is stable in\n"
      << "either regime; `async` amortizes the ordinary broadcast over "
      << async_mult << "x\nthe period and falls back to urgent (id,value) "
      << "messages on abrupt\nchanges (Section VI-B's proposal).\n";
  return 0;
}
