// Figure 8: same transient as Figure 7 but with large input buffers (256
// phits/VC local, 2048 phits/VC global; output buffers unchanged). Paper
// expectations: the credit-based mechanisms (PB ~500 cycles, OLM ~1000)
// adapt far more slowly because the deeper buffers must fill before credits
// signal congestion, while the contention-based mechanisms keep the same
// ~10-cycle response — buffer size is decoupled from the trigger.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const double load = cli.get_double("load", 0.2);
  const Cycle pre = cli.get_int("pre", 50);
  const Cycle post = cli.get_int("post", 1600);
  const Cycle step = cli.get_int("step", 50);
  const Cycle window = cli.get_int("window", 25);
  const std::int32_t reps =
      static_cast<std::int32_t>(cli.get_int("reps", 3));

  // Large buffers (Figure 8 caption).
  cfg.base.router.buf_local_phits = 256;
  cfg.base.router.buf_global_phits = 2048;

  const std::vector<RoutingKind> routings = adaptive_lineup();

  TransientOptions topt;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after.kind = TrafficKind::kAdversarial;
  topt.after.adv_offset = 1;
  topt.after.load = load;
  topt.warmup = cfg.warmup;
  topt.pre = pre;
  topt.post = post;
  topt.reps = reps;

  std::vector<std::string> columns{"cycle"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));
  ResultTable latency(columns);

  std::vector<TransientResult> results;
  for (const RoutingKind r : routings) {
    SimParams params = cfg.base;
    params.routing.kind = r;
    results.push_back(run_transient(params, topt));
  }

  for (Cycle t = -pre; t < post; t += step) {
    latency.begin_row();
    latency.set("cycle", static_cast<double>(t), 0);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      latency.set(to_string(routings[ri]), results[ri].latency_at(t, window),
                  1);
    }
  }

  std::cout << "# Figure 8 — transient UN->ADV+1 with large buffers "
               "(256/2048 phits per VC)\n# scale="
            << cfg.scale << " (" << cfg.base.topo.nodes()
            << " nodes), reps=" << reps << "\n\n";
  emit(cfg, latency, "average latency of delivered packets vs cycle");
  return 0;
}
