// Shared harness for the figure benches: scale/cycle configuration via CLI
// flags and environment variables, standard routing line-ups, and table
// printing in the paper's units.
//
// Every figure bench accepts:
//   --scale=tiny|small|medium|paper   (default: $DFSIM_SCALE or "medium")
//   --warmup=N --measure=N --reps=N   cycle/repetition overrides
//   --loads=0.1,0.2,...               load points (steady-state figures)
//   --csv                             machine-readable output
//   --seed=N
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "engine/sweep.hpp"
#include "sim/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dfsim::bench {

struct BenchConfig {
  SimParams base;
  Cycle warmup = 2000;
  Cycle measure = 3000;
  std::int32_t reps = 1;
  bool csv = false;
  std::string scale = "medium";
};

/// Parses common flags; figure-specific flags stay available via `cli`.
[[nodiscard]] BenchConfig parse_common(const CliOptions& cli);

/// Load points for a steady-state sweep: default per figure, overridable
/// with --loads.
[[nodiscard]] std::vector<double> parse_loads(
    const CliOptions& cli, const std::vector<double>& defaults);

/// The adaptive line-up the paper compares everywhere.
[[nodiscard]] std::vector<RoutingKind> adaptive_lineup();

/// Line-up overrides: --routings=MIN,Base,... replaces `defaults`;
/// --with-ugal appends the UGAL-L/UGAL-G extra baselines.
[[nodiscard]] std::vector<RoutingKind> parse_lineup(
    const CliOptions& cli, std::vector<RoutingKind> defaults);

/// Runs a (routing x load) steady-state grid and prints two tables shaped
/// like the paper's latency (top) and throughput (bottom) panels.
void run_load_sweep_figure(const BenchConfig& cfg,
                           const std::vector<RoutingKind>& routings,
                           const std::vector<double>& loads,
                           const std::string& figure_title);

/// Prints a table (pretty or CSV per cfg).
void emit(const BenchConfig& cfg, const ResultTable& table,
          const std::string& title);

}  // namespace dfsim::bench
