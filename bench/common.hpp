// Shared harness for the figure benches: scale/cycle configuration via CLI
// flags and environment variables, standard routing line-ups, and table
// printing in the paper's units.
//
// Every figure bench accepts:
//   --scale=tiny|small|medium|paper   (default: $DFSIM_SCALE or "medium")
//   --warmup=N --measure=N --reps=N   cycle/repetition overrides
//   --loads=0.1,0.2,...               load points (steady-state figures)
//   --traffic=<name>                  any registered traffic model (see
//                                     traffic/spec.hpp); figures that don't
//                                     mandate a pattern honor it
//   --trace=path                      replay a recorded injection trace
//   --adv-offset --shift-offset --hotspot-count --hotspot-fraction
//   --injection=bernoulli|bursty --burst-factor --burst-len
//   --csv                             machine-readable output
//   --seed=N
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "engine/sweep.hpp"
#include "sim/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dfsim::bench {

struct BenchConfig {
  SimParams base;
  Cycle warmup = 2000;
  Cycle measure = 3000;
  std::int32_t reps = 1;
  bool csv = false;
  std::string scale = "medium";
  // Which workload knobs the user pinned on the command line, so figure
  // defaults (default_traffic) never clobber an explicit choice.
  bool traffic_forced = false;
  bool adv_offset_forced = false;
};

/// Parses common flags; figure-specific flags stay available via `cli`.
[[nodiscard]] BenchConfig parse_common(const CliOptions& cli);

/// Applies the figure's default pattern unless --traffic/--trace (and, for
/// the offset, --adv-offset) already selected one.
void default_traffic(BenchConfig& cfg, TrafficKind kind,
                     std::int32_t adv_offset = 1);

/// One-line description of the active workload for figure headers, e.g.
/// "HOTSPOT(n=8,f=0.50)+bursty".
[[nodiscard]] std::string traffic_label(const TrafficParams& traffic);

/// Load points for a steady-state sweep: default per figure, overridable
/// with --loads.
[[nodiscard]] std::vector<double> parse_loads(
    const CliOptions& cli, const std::vector<double>& defaults);

/// The adaptive line-up the paper compares everywhere.
[[nodiscard]] std::vector<RoutingKind> adaptive_lineup();

/// Line-up overrides: --routings=MIN,Base,... replaces `defaults`;
/// --with-ugal appends the UGAL-L/UGAL-G extra baselines.
[[nodiscard]] std::vector<RoutingKind> parse_lineup(
    const CliOptions& cli, std::vector<RoutingKind> defaults);

/// Runs a (routing x load) steady-state grid and prints two tables shaped
/// like the paper's latency (top) and throughput (bottom) panels.
void run_load_sweep_figure(const BenchConfig& cfg,
                           const std::vector<RoutingKind>& routings,
                           const std::vector<double>& loads,
                           const std::string& figure_title);

/// One named traffic scenario of a topology ablation (ablation_fbfly /
/// ablation_torus): a pattern plus its load sweep points.
struct AblationScenario {
  std::string name;
  TrafficParams traffic;
  std::vector<double> loads;
};

/// Runs every (mechanism x load) point of each scenario as one parallel
/// sweep and prints latency / throughput / misrouted_pct tables per
/// scenario (latency cells past saturation print "sat", matching
/// run_load_sweep_figure).
void run_scenario_tables(const SimParams& base,
                         const std::vector<RoutingKind>& mechanisms,
                         const std::vector<AblationScenario>& scenarios,
                         const SteadyOptions& options, bool csv,
                         int load_precision);

/// Prints a table (pretty or CSV per cfg).
void emit(const BenchConfig& cfg, const ResultTable& table,
          const std::string& title);

}  // namespace dfsim::bench
