// Figure 5b: latency and throughput under ADV+1 adversarial traffic.
// Paper expectations: VAL is the reference (saturates at 0.5); MIN collapses
// (single inter-group link); OLM/Base/Hybrid/ECtN all reach the Valiant
// throughput bound, with ECtN obtaining the best latency thanks to
// injection-time misrouting from combined counters.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // ADV+1 is the figure's default; --traffic swaps in any registered model.
  default_traffic(cfg, TrafficKind::kAdversarial, 1);

  std::vector<RoutingKind> routings{RoutingKind::kValiant};
  for (const RoutingKind r : adaptive_lineup()) routings.push_back(r);
  routings = parse_lineup(cli, std::move(routings));

  const std::vector<double> loads =
      parse_loads(cli, {0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45});
  run_load_sweep_figure(cfg, routings, loads,
                        "Figure 5b — adversarial traffic (ADV+1)");
  return 0;
}
