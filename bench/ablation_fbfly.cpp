// Section VI-D ablation: contention counters on a second topology.
//
// The paper argues the mechanism transfers to any topology where the
// minimal path (and hence the counter to consult) is unique, naming the
// Flattened Butterfly with Dimension-Order Routing. Since the engine went
// topology-generic this bench runs the *same* simulator as the dragonfly
// figures with the FlattenedButterflyTopology plugin, and reproduces the
// paper's headline ordering there:
//   * UN:  CB matches MIN's optimal latency (no false triggers);
//          VAL pays the detour everywhere.
//   * ADJ: MIN caps at the single direct channel; CB recovers the
//          nonminimal bandwidth like VAL/UGAL-L, while adapting from the
//          contention counters rather than from queue backpressure.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  const auto k = static_cast<std::int32_t>(cli.get_int("k", 4));
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 2));
  const auto c = static_cast<std::int32_t>(cli.get_int("c", 4));
  const auto buf = static_cast<std::int32_t>(cli.get_int("buf", 16));
  const auto warmup = static_cast<Cycle>(cli.get_int("warmup", 2000));
  const auto measure = static_cast<Cycle>(cli.get_int("measure", 3000));
  const bool csv = cli.has("csv");

  SimParams base = presets::fbfly(k, n, c, buf);
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (cli.has("threshold")) {
    base.routing.contention_threshold =
        static_cast<std::int32_t>(cli.get_int("threshold", 0));
  }
  const std::vector<RoutingKind> mechanisms{
      RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kUgalL,
      RoutingKind::kCbBase};

  std::cout << "# Section VI-D — contention counters on a " << k << "-ary "
            << n << "-flat flattened butterfly (" << base.fbfly.nodes()
            << " nodes, c=" << c << "), unified engine\n\n";

  // "ADJ" (the row adversary) is ADV+1 under the FB traffic grouping: all
  // nodes of router R target router R+1 in dimension 0.
  TrafficParams uniform;
  uniform.kind = TrafficKind::kUniform;
  TrafficParams adjacent;
  adjacent.kind = TrafficKind::kAdversarial;
  adjacent.adv_offset = 1;
  const std::vector<AblationScenario> scenarios{
      {"UN", uniform, {0.1, 0.3, 0.5, 0.7, 0.9}},
      {"ADJ", adjacent, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}},
  };

  SteadyOptions options;
  options.warmup = warmup;
  options.measure = measure;
  run_scenario_tables(base, mechanisms, scenarios, options, csv, 2);

  std::cout << "Reading: same shape as the Dragonfly figures — CB rides MIN\n"
               "under UN (zero misrouting) and recovers the nonminimal\n"
               "bandwidth under the row adversary, confirming the Section\n"
               "VI-D claim that a unique minimal path is all the mechanism\n"
               "needs.\n";
  return 0;
}
