// Section VI-D ablation: contention counters on a second topology.
//
// The paper argues the mechanism transfers to any topology where the
// minimal path (and hence the counter to consult) is unique, naming the
// Flattened Butterfly with Dimension-Order Routing. This bench runs the FB
// companion simulator and reproduces the paper's headline ordering there:
//   * UN:  CB matches MIN's optimal latency (no false triggers);
//          VAL pays the detour everywhere.
//   * ADJ: MIN caps at the single direct channel; CB recovers the
//          nonminimal bandwidth like VAL/UGAL-q, while adapting from the
//          injection heads rather than from queue backpressure.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "fbfly/fb_simulator.hpp"

namespace {

struct Row {
  double load;
  std::vector<double> latency;
  std::vector<double> throughput;
  std::vector<double> misrouted;
  std::vector<bool> saturated;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  using namespace dfsim::fbfly;
  const CliOptions cli(argc, argv);
  const auto k = static_cast<std::int32_t>(cli.get_int("k", 4));
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 2));
  const auto c = static_cast<std::int32_t>(cli.get_int("c", 4));
  const auto warmup = static_cast<Cycle>(cli.get_int("warmup", 2000));
  const auto measure = static_cast<Cycle>(cli.get_int("measure", 3000));
  const bool csv = cli.has("csv");

  const FbParams topo{k, n, c};
  const std::vector<FbRouting> mechanisms{
      FbRouting::kMin, FbRouting::kValiant, FbRouting::kUgalQueue,
      FbRouting::kContention};

  std::cout << "# Section VI-D — contention counters on a " << k << "-ary "
            << n << "-flat flattened butterfly (" << topo.nodes()
            << " nodes, c=" << c << ")\n\n";

  // "ADJ" (the row adversary) is ADV+1 under the FB traffic grouping: all
  // nodes of router R target router R+1 in dimension 0.
  TrafficParams uniform;
  uniform.kind = TrafficKind::kUniform;
  TrafficParams adjacent;
  adjacent.kind = TrafficKind::kAdversarial;
  adjacent.adv_offset = 1;
  const struct {
    const char* name;
    TrafficParams traffic;
    std::vector<double> loads;
  } scenarios[] = {
      {"UN", uniform, {0.1, 0.3, 0.5, 0.7, 0.9}},
      {"ADJ", adjacent, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}},
  };

  for (const auto& scenario : scenarios) {
    std::vector<Row> rows;
    for (const double load : scenario.loads) {
      Row row;
      row.load = load;
      for (const FbRouting mechanism : mechanisms) {
        FbConfig cfg;
        cfg.topo = topo;
        cfg.routing = mechanism;
        cfg.traffic = scenario.traffic;
        cfg.traffic.load = load;
        cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
        FbSimulator sim(cfg);
        sim.run(warmup);
        sim.start_measurement();
        sim.run(measure);
        row.latency.push_back(sim.metrics().mean_latency());
        row.throughput.push_back(sim.throughput());
        row.misrouted.push_back(100.0 * sim.metrics().misrouted_fraction());
        row.saturated.push_back(sim.backlog_per_node() > 4.0);
      }
      rows.push_back(std::move(row));
    }

    for (const char* metric : {"latency", "throughput", "misrouted_pct"}) {
      std::vector<std::string> columns{"load"};
      for (const FbRouting m : mechanisms) columns.push_back(to_string(m));
      ResultTable table(columns);
      for (const Row& row : rows) {
        table.begin_row();
        table.set("load", row.load, 2);
        for (std::size_t mi = 0; mi < mechanisms.size(); ++mi) {
          const std::string col = to_string(mechanisms[mi]);
          if (metric == std::string("latency")) {
            if (row.saturated[mi]) {
              table.set(col, "sat");
            } else {
              table.set(col, row.latency[mi], 1);
            }
          } else if (metric == std::string("throughput")) {
            table.set(col, row.throughput[mi], 3);
          } else {
            table.set(col, row.misrouted[mi], 1);
          }
        }
      }
      std::cout << "== " << scenario.name << " — " << metric << " ==\n";
      if (csv) {
        table.write_csv(std::cout);
      } else {
        table.write_pretty(std::cout);
      }
      std::cout << "\n";
    }
  }

  std::cout << "Reading: same shape as the Dragonfly figures — CB rides MIN\n"
               "under UN (zero misrouting) and recovers the nonminimal\n"
               "bandwidth under the row adversary, confirming the Section\n"
               "VI-D claim that a unique minimal path is all the mechanism\n"
               "needs.\n";
  return 0;
}
