// Table I: simulation parameters. Prints the presets (the paper's exact
// configuration plus the scaled ones) so every experiment's parameters are
// auditable from the bench output.
#include "common.hpp"
#include "core/ectn_state.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);

  ResultTable table({"parameter", "paper", "medium", "small", "tiny"});
  const SimParams presets_list[4] = {presets::paper(), presets::medium(),
                                     presets::small(), presets::tiny()};
  const std::string names[4] = {"paper", "medium", "small", "tiny"};

  auto row = [&](const std::string& name, auto getter) {
    table.begin_row();
    table.set("parameter", name);
    for (int i = 0; i < 4; ++i) {
      table.set(names[i], getter(presets_list[i]));
    }
  };
  auto str = [](auto v) { return std::to_string(v); };

  row("router ports (fwd)", [&](const SimParams& p) {
    return str(p.topo.forward_ports()) + " (h=" + str(p.topo.h) +
           " p=" + str(p.topo.p) + " local=" + str(p.topo.a - 1) + ")";
  });
  row("router latency (cycles)",
      [&](const SimParams& p) { return str(p.router.pipeline_cycles); });
  row("frequency speedup",
      [&](const SimParams& p) { return str(p.router.speedup) + "x"; });
  row("group size", [&](const SimParams& p) {
    return str(p.topo.a) + " routers, " + str(p.topo.a * p.topo.p) + " nodes";
  });
  row("system size", [&](const SimParams& p) {
    return str(p.topo.groups()) + " groups, " + str(p.topo.nodes()) + " nodes";
  });
  row("link latency local/global", [&](const SimParams& p) {
    return str(p.link.local_latency) + "/" + str(p.link.global_latency);
  });
  row("VCs global/local/injection", [&](const SimParams& p) {
    return str(p.router.vcs_global) + "/" + str(p.router.vcs_local) + "(+1 VAL,PB)/" +
           str(p.router.vcs_injection);
  });
  row("buffers out/local/global (phits)", [&](const SimParams& p) {
    return str(p.router.buf_output_phits) + "/" +
           str(p.router.buf_local_phits) + "/" + str(p.router.buf_global_phits);
  });
  row("packet size (phits)",
      [&](const SimParams& p) { return str(p.packet_size_phits); });
  row("congestion thresholds", [&](const SimParams& p) {
    return "OLM " + std::to_string(p.routing.olm_credit_fraction).substr(0, 4) +
           ", Hybrid " +
           std::to_string(p.routing.hybrid_credit_fraction).substr(0, 4) +
           ", PB T=" + str(p.routing.pb_ugal_threshold);
  });
  row("contention thresholds", [&](const SimParams& p) {
    return "Base/ECtN " + str(p.routing.contention_threshold) + ", Hybrid " +
           str(p.routing.hybrid_contention_threshold) + ", combined " +
           str(p.routing.ectn_combined_threshold);
  });
  row("ECtN partial update (cycles)",
      [&](const SimParams& p) { return str(p.routing.ectn_update_period); });

  std::cout << "# Table I — simulation parameters (presets)\n\n";
  emit(cfg, table, "configuration presets");

  // Paper Section VI-B: analytic ECtN broadcast overhead per preset.
  ResultTable overhead({"preset", "counters", "bits/counter", "phits/update",
                        "bandwidth_pct"});
  for (int i = 0; i < 4; ++i) {
    const EctnOverheadEstimate est = estimate_ectn_overhead(presets_list[i]);
    overhead.begin_row();
    overhead.set("preset", names[i]);
    overhead.set("counters", static_cast<double>(est.counters), 0);
    overhead.set("bits/counter", static_cast<double>(est.bits_per_counter), 0);
    overhead.set("phits/update", est.phits, 1);
    overhead.set("bandwidth_pct", 100.0 * est.bandwidth_fraction, 1);
  }
  emit(cfg, overhead,
       "ECtN partial-broadcast overhead estimate (Section VI-B; paper: "
       "~6 phits, ~6% at full scale)");
  return 0;
}
