// Section VI-A ablation: how the router radix shapes the range of valid
// misrouting thresholds.
//
// The paper's analysis bounds th from below by ~2x the average VCs per
// input port (so uniform traffic does not false-trigger at saturation) and
// from above by the head count a source router can sustain under
// adversarial funnelling (so misrouting still fires at injection); it then
// remarks that larger routers (48-port Aries, 56-port Torrent) *enlarge*
// the valid range. This bench sweeps th across three radixes and reports,
// per radix, which thresholds keep BOTH regimes healthy:
//   UN-side  : accepted load at high UN offered load >= 97% of MIN's
//   ADV-side : latency at moderate ADV+1 load <= 115% of the best th's
#include <algorithm>
#include <iostream>

#include "common.hpp"

namespace {

struct Radix {
  std::string preset;
  std::string label;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // 0.80 offered UN sits past the knee where too-low thresholds start to
  // misroute away throughput, so the UN-side floor of Section VI-A binds.
  const double un_load = cli.get_double("un-load", 0.80);
  const double adv_load = cli.get_double("adv-load", 0.30);
  const double un_tolerance = cli.get_double("un-tol", 0.97);
  const double adv_tolerance = cli.get_double("adv-tol", 1.15);

  // Radixes: 11-port (tiny), 15-port (small-ish) and 22-port routers.
  const std::vector<Radix> radixes{
      {"tiny", "11-port (p2 a4 h2)"},
      {"small", "14-port (p3 a6 h3)"},
      {"medium", "18-port (p4 a8 h4)"},
  };
  const std::vector<std::int32_t> thresholds{2, 3, 4, 5, 6, 7, 8, 9, 10};

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};

  std::cout << "# Section VI-A — valid threshold range vs router radix\n"
            << "# UN side: accepted load at offered " << un_load
            << " must stay >= " << 100 * un_tolerance << "% of MIN's\n"
            << "# ADV side: ADV+1 latency at load " << adv_load
            << " must stay <= " << 100 * adv_tolerance << "% of the best\n\n";

  for (const Radix& radix : radixes) {
    SimParams base = presets::by_name(radix.preset);
    base.seed = cfg.base.seed;

    std::vector<SweepPoint> points;
    // Reference: MIN under UN at the probe load.
    {
      SimParams p = base;
      p.routing.kind = RoutingKind::kMin;
      p.traffic.kind = TrafficKind::kUniform;
      p.traffic.load = un_load;
      points.push_back(SweepPoint{p, options});
    }
    for (const std::int32_t th : thresholds) {
      SimParams p = base;
      p.routing.kind = RoutingKind::kCbBase;
      p.routing.contention_threshold = th;
      p.traffic.kind = TrafficKind::kUniform;
      p.traffic.load = un_load;
      points.push_back(SweepPoint{p, options});

      p.traffic.kind = TrafficKind::kAdversarial;
      p.traffic.adv_offset = 1;
      p.traffic.load = adv_load;
      points.push_back(SweepPoint{p, options});
    }
    const auto results = run_sweep(points);

    const double min_throughput = results[0].throughput;
    double best_adv_latency = 1e18;
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      const SteadyResult& adv = results[2 + 2 * ti];
      if (adv.backlog_per_node <= 4.0) {
        best_adv_latency = std::min(best_adv_latency, adv.latency_avg);
      }
    }

    ResultTable table({"th", "un_thpt", "un_ok", "adv_lat", "adv_ok", "valid"});
    std::int32_t lo = -1;
    std::int32_t hi = -1;
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      const SteadyResult& un = results[1 + 2 * ti];
      const SteadyResult& adv = results[2 + 2 * ti];
      // UN side gates on accepted load only (the Section VI-A criterion is
      // "throughput does not decrease"); at a probe load past the knee every
      // variant carries some backlog, so a backlog gate would reject all.
      const bool un_ok = un.throughput >= un_tolerance * min_throughput;
      const bool adv_ok = adv.backlog_per_node <= 4.0 &&
                          adv.latency_avg <= adv_tolerance * best_adv_latency;
      if (un_ok && adv_ok) {
        if (lo < 0) lo = thresholds[ti];
        hi = thresholds[ti];
      }
      table.begin_row();
      table.set("th", static_cast<double>(thresholds[ti]), 0);
      table.set("un_thpt", un.throughput, 3);
      table.set("un_ok", un_ok ? "yes" : "no");
      if (adv.backlog_per_node > 4.0) {
        table.set("adv_lat", "sat");
      } else {
        table.set("adv_lat", adv.latency_avg, 1);
      }
      table.set("adv_ok", adv_ok ? "yes" : "no");
      table.set("valid", un_ok && adv_ok ? "*" : "");
    }
    emit(cfg, table, radix.label + "  (MIN UN throughput = " +
                         std::to_string(min_throughput).substr(0, 5) + ")");
    if (lo >= 0) {
      std::cout << "valid range: th in [" << lo << ", " << hi << "]  width "
                << (hi - lo + 1) << "\n\n";
    } else {
      std::cout << "valid range: (none at these tolerances)\n\n";
    }
  }

  std::cout << "Reading: the valid-threshold window should widen with the\n"
               "router radix (Section VI-A's closing remark) — more input\n"
               "VC heads per router raise the ADV-side ceiling faster than\n"
               "the UN-side floor.\n";
  return 0;
}
