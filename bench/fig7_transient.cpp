// Figure 7: transient response when traffic switches UN -> ADV+1 at t=0
// (load 20%, Table I small buffers: 32 phits local / 256 global per VC).
// Paper expectations: Base/Hybrid adapt within ~10 cycles; OLM and PB need
// ~100 cycles (credits must fill); ECtN follows Base until the next partial
// broadcast (t=100), then misroutes directly at injection. Misrouted
// percentage converges near 0% before and ~100% after for the counter-based
// mechanisms.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const double load = cli.get_double("load", 0.2);
  const Cycle pre = cli.get_int("pre", 50);
  const Cycle post = cli.get_int("post", 250);
  const Cycle step = cli.get_int("step", 10);
  const Cycle window = cli.get_int("window", 10);
  const std::int32_t reps =
      static_cast<std::int32_t>(cli.get_int("reps", 5));

  const std::vector<RoutingKind> routings = adaptive_lineup();

  TransientOptions topt;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after.kind = TrafficKind::kAdversarial;
  topt.after.adv_offset = 1;
  topt.after.load = load;
  topt.warmup = cfg.warmup;
  topt.pre = pre;
  topt.post = post;
  topt.reps = reps;

  std::vector<std::string> columns{"cycle"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));
  ResultTable latency(columns);
  ResultTable misrouted(columns);

  std::vector<TransientResult> results;
  results.reserve(routings.size());
  for (const RoutingKind r : routings) {
    SimParams params = cfg.base;
    params.routing.kind = r;
    results.push_back(run_transient(params, topt));
  }

  for (Cycle t = -pre; t < post; t += step) {
    latency.begin_row();
    misrouted.begin_row();
    latency.set("cycle", static_cast<double>(t), 0);
    misrouted.set("cycle", static_cast<double>(t), 0);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      const std::string col = to_string(routings[ri]);
      latency.set(col, results[ri].latency_at(t, window), 1);
      misrouted.set(col, results[ri].misrouted_pct_at(t, window), 1);
    }
  }

  std::cout << "# Figure 7 — transient UN->ADV+1 at t=0, load=" << load
            << ", small buffers\n# scale=" << cfg.scale << " ("
            << cfg.base.topo.nodes() << " nodes), reps=" << reps
            << ", smoothing window=" << window << "\n\n";
  emit(cfg, latency, "7a: average latency of delivered packets vs cycle");
  emit(cfg, misrouted, "7b: percent of misrouted packets vs cycle");
  return 0;
}
