// Figure 9: routing oscillations on a long timescale after the UN -> ADV+1
// switch (small buffers, load 20%), PB vs ECtN. Paper expectations: PB's
// delayed ECN control loop oscillates with a ~500-cycle period (decaying but
// persistent); ECtN converges to a flat latency because contention does not
// depend on the routing decision.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const double load = cli.get_double("load", 0.2);
  const Cycle post = cli.get_int("post", 1600);
  const Cycle step = cli.get_int("step", 25);
  const Cycle window = cli.get_int("window", 25);
  const std::int32_t reps =
      static_cast<std::int32_t>(cli.get_int("reps", 5));

  const std::vector<RoutingKind> routings{RoutingKind::kPiggyback,
                                          RoutingKind::kCbEctn};

  TransientOptions topt;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after.kind = TrafficKind::kAdversarial;
  topt.after.adv_offset = 1;
  topt.after.load = load;
  topt.warmup = cfg.warmup;
  topt.pre = 0;
  topt.post = post;
  topt.reps = reps;

  std::vector<std::string> columns{"cycle"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));
  ResultTable latency(columns);

  std::vector<TransientResult> results;
  for (const RoutingKind r : routings) {
    SimParams params = cfg.base;
    params.routing.kind = r;
    results.push_back(run_transient(params, topt));
  }

  for (Cycle t = 0; t < post; t += step) {
    latency.begin_row();
    latency.set("cycle", static_cast<double>(t), 0);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      latency.set(to_string(routings[ri]), results[ri].latency_at(t, window),
                  1);
    }
  }

  std::cout << "# Figure 9 — oscillations after UN->ADV+1, PB vs ECtN\n"
               "# scale="
            << cfg.scale << " (" << cfg.base.topo.nodes()
            << " nodes), reps=" << reps << "\n\n";
  emit(cfg, latency, "average latency of delivered packets vs cycle");
  return 0;
}
