// Micro-benchmark: separable allocator iteration throughput at several
// radix/VC shapes (simulator hot path #1).
#include <benchmark/benchmark.h>

#include "router/allocator.hpp"
#include "util/rng.hpp"

namespace {

void BM_AllocatorIteration(benchmark::State& state) {
  using namespace dfsim;
  const auto ports = static_cast<std::int32_t>(state.range(0));
  const auto vcs = static_cast<std::int32_t>(state.range(1));
  SeparableAllocator alloc(ports, ports, vcs);
  Rng rng(7);

  AllocRequestBatch requests;
  requests.reserve(ports, vcs);
  for (std::int32_t i = 0; i < ports; ++i) {
    for (VcIndex vc = 0; vc < vcs; ++vc) {
      if (rng.next_bool(0.6)) {
        requests.add(static_cast<PortIndex>(i), vc,
                     static_cast<PortIndex>(rng.next_below(
                         static_cast<std::uint64_t>(ports))));
      }
    }
  }
  std::int64_t grants = 0;
  for (auto _ : state) {
    const auto g = alloc.allocate_iteration(requests);
    grants += static_cast<std::int64_t>(g.size());
    benchmark::DoNotOptimize(grants);
  }
  state.counters["grants/iter"] =
      benchmark::Counter(static_cast<double>(grants),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AllocatorIteration)
    ->Args({15, 3})   // medium preset router
    ->Args({31, 3})   // paper preset router
    ->Args({64, 4});  // stress

}  // namespace
