// Micro-benchmark: full simulator cycle cost per preset and routing — the
// end-to-end figure that bounds every experiment's wall-clock time.
#include <benchmark/benchmark.h>

#include "engine/simulator.hpp"

namespace {

void BM_SimulatorCycle(benchmark::State& state) {
  using namespace dfsim;
  SimParams params =
      state.range(0) == 0 ? presets::tiny() : presets::medium();
  params.routing.kind =
      state.range(1) == 0 ? RoutingKind::kMin : RoutingKind::kCbBase;
  params.traffic.kind = TrafficKind::kUniform;
  params.traffic.load = 0.3;
  Simulator sim(params);
  sim.run(500);  // reach steady occupancy
  for (auto _ : state) {
    sim.step();
  }
  state.counters["nodes"] = static_cast<double>(params.topo.nodes());
}
BENCHMARK(BM_SimulatorCycle)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
