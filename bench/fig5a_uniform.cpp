// Figure 5a: latency and throughput under uniform random traffic (UN).
// Paper expectations: MIN sets the latency floor; Base and ECtN match it
// before congestion; Hybrid sits between MIN and OLM; PB/OLM pay a latency
// premium for credit-triggered misrouting. Peak throughput: Hybrid highest,
// Base/ECtN close to OLM, all above MIN.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // UN is the figure's default; --traffic swaps in any registered model.
  default_traffic(cfg, TrafficKind::kUniform);

  std::vector<RoutingKind> routings{RoutingKind::kMin};
  for (const RoutingKind r : adaptive_lineup()) routings.push_back(r);
  routings = parse_lineup(cli, std::move(routings));

  const std::vector<double> loads =
      parse_loads(cli, {0.05, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  run_load_sweep_figure(cfg, routings, loads,
                        "Figure 5a — uniform traffic (UN)");
  return 0;
}
