// Micro-benchmark: Dragonfly topology queries (minimal_output is called for
// every head packet every cycle — hot path #2).
#include <benchmark/benchmark.h>

#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace {

void BM_MinimalOutput(benchmark::State& state) {
  using namespace dfsim;
  const SimParams params =
      state.range(0) == 0 ? presets::medium() : presets::paper();
  const DragonflyTopology topo(params.topo);
  Rng rng(3);
  for (auto _ : state) {
    const auto r = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(topo.routers())));
    const auto n = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(topo.nodes())));
    benchmark::DoNotOptimize(topo.minimal_output(r, n));
  }
}
BENCHMARK(BM_MinimalOutput)->Arg(0)->Arg(1);

void BM_PeerLookup(benchmark::State& state) {
  using namespace dfsim;
  const DragonflyTopology topo(presets::paper().topo);
  Rng rng(5);
  for (auto _ : state) {
    const auto r = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(topo.routers())));
    const auto port = static_cast<PortIndex>(
        rng.next_below(static_cast<std::uint64_t>(topo.forward_ports())));
    benchmark::DoNotOptimize(topo.peer(r, port));
  }
}
BENCHMARK(BM_PeerLookup);

void BM_MinimalGlobalSource(benchmark::State& state) {
  using namespace dfsim;
  const DragonflyTopology topo(presets::paper().topo);
  Rng rng(9);
  const auto groups = static_cast<std::uint64_t>(topo.groups());
  for (auto _ : state) {
    const auto g = static_cast<GroupId>(rng.next_below(groups));
    auto gd = static_cast<GroupId>(rng.next_below(groups - 1));
    if (gd >= g) ++gd;
    benchmark::DoNotOptimize(topo.minimal_global_source(g, gd));
  }
}
BENCHMARK(BM_MinimalGlobalSource);

}  // namespace
