// Figure 5c: latency and throughput under ADV+h traffic — the pathological
// pattern that additionally saturates local links in the intermediate group,
// exercising local misrouting. Paper expectations: same ordering as ADV+1
// but VAL/PB closer to the adaptive mechanisms, and ECtN slightly behind OLM
// at low-mid loads.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  // ADV+h is the figure's default; --traffic swaps in any registered model.
  default_traffic(cfg, TrafficKind::kAdversarial, cfg.base.topo.h);

  std::vector<RoutingKind> routings{RoutingKind::kValiant};
  for (const RoutingKind r : adaptive_lineup()) routings.push_back(r);
  routings = parse_lineup(cli, std::move(routings));

  const std::vector<double> loads =
      parse_loads(cli, {0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45});
  run_load_sweep_figure(cfg, routings, loads,
                        "Figure 5c — adversarial traffic (ADV+h)");
  return 0;
}
