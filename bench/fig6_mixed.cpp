// Figure 6: average latency under mixed ADV+1/UN traffic at 35% load, as the
// UN share sweeps 0%..100%. Paper expectations: contention counters stay
// competitive with OLM at every blend; ECtN clearly the best.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const double load = cli.get_double("load", 0.35);

  const std::vector<RoutingKind> routings = parse_lineup(cli, adaptive_lineup());
  std::vector<double> fractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<std::string> columns{"pct_UN"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));
  ResultTable latency(columns);

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};
  std::vector<SweepPoint> points;
  for (const RoutingKind r : routings) {
    for (const double f : fractions) {
      SimParams params = cfg.base;
      params.routing.kind = r;
      params.traffic.kind = TrafficKind::kMixed;
      params.traffic.adv_offset = 1;
      params.traffic.mixed_uniform_fraction = f;
      params.traffic.load = load;
      points.push_back(SweepPoint{params, options});
    }
  }
  const auto results = run_sweep(points);

  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    latency.begin_row();
    latency.set("pct_UN", 100.0 * fractions[fi], 0);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      const SteadyResult& res = results[ri * fractions.size() + fi];
      const std::string col = to_string(routings[ri]);
      if (res.backlog_per_node > 4.0) {
        latency.set(col, "sat");
      } else {
        latency.set(col, res.latency_avg, 1);
      }
    }
  }

  std::cout << "# Figure 6 — mixed ADV+1/UN traffic, load=" << load
            << "\n# scale=" << cfg.scale << " (" << cfg.base.topo.nodes()
            << " nodes)\n\n";
  emit(cfg, latency, "average packet latency (cycles) vs %UN");
  return 0;
}
