// Torus ablation: the contention-trigger line-up on a k-ary n-cube.
//
// Adaptive nonminimal routing on tori is where minimal/nonminimal schemes
// classically differentiate (cf. OutFlank-style torus adaptive routing and
// the Valiant literature): under *tornado* traffic — every router sends
// halfway around its dimension-0 ring — minimal DOR loads only the
// plus-direction links of that ring and caps at 1/(c * k/2) of injection
// bandwidth, while nonminimal routing spreads over both directions and both
// dimensions. This bench runs the unified engine's TorusTopology plugin
// over MIN / VAL / UGAL-L / PB / Base / Hybrid (ECtN needs the dragonfly's
// group-broadcast structure and does not apply here) under uniform and
// tornado traffic.
//
// Expected shape: under UN every mechanism tracks MIN at low load (no false
// triggers for CB); under tornado MIN collapses at the ring cap while
// UGAL-L and the contention triggers recover nonminimal bandwidth, with VAL
// paying its doubled hop count everywhere.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  const auto k = static_cast<std::int32_t>(cli.get_int("k", 8));
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 2));
  const auto c = static_cast<std::int32_t>(cli.get_int("c", 2));
  const auto buf = static_cast<std::int32_t>(cli.get_int("buf", 16));
  const auto warmup = static_cast<Cycle>(cli.get_int("warmup", 2000));
  const auto measure = static_cast<Cycle>(cli.get_int("measure", 3000));
  const bool csv = cli.has("csv");

  SimParams base = presets::torus(k, n, c, buf);
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  if (cli.has("threshold")) {
    base.routing.contention_threshold =
        static_cast<std::int32_t>(cli.get_int("threshold", 0));
  }
  const std::vector<RoutingKind> mechanisms = parse_lineup(
      cli, {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kUgalL,
            RoutingKind::kPiggyback, RoutingKind::kCbBase,
            RoutingKind::kCbHybrid});

  std::cout << "# Torus ablation — " << k << "-ary " << n << "-cube, c=" << c
            << " (" << base.torus.nodes()
            << " nodes), unified engine, full routing line-up\n\n";

  // Tornado: ADV at offset k/2 under the torus traffic grouping advances
  // the dimension-0 ring coordinate halfway around.
  TrafficParams uniform;
  uniform.kind = TrafficKind::kUniform;
  TrafficParams tornado;
  tornado.kind = TrafficKind::kAdversarial;
  tornado.adv_offset = k / 2;
  const double ring_cap =
      1.0 / (static_cast<double>(c) * static_cast<double>(k / 2));
  const std::vector<AblationScenario> scenarios{
      {"UN", uniform, parse_loads(cli, {0.1, 0.2, 0.3, 0.4, 0.5})},
      {"TORNADO", tornado,
       parse_loads(cli, {0.5 * ring_cap, ring_cap, 1.2 * ring_cap,
                         1.6 * ring_cap, 2.0 * ring_cap})},
  };

  SteadyOptions options;
  options.warmup = warmup;
  options.measure = measure;
  run_scenario_tables(base, mechanisms, scenarios, options, csv, 3);

  std::cout << "Reading: under TORNADO, MIN flatlines at the one-direction\n"
               "ring cap (" << ring_cap << " phits/node/cycle here) while\n"
               "UGAL-L and the contention triggers climb past it by taking\n"
               "nonminimal paths; under UN the adaptive mechanisms ride\n"
               "MIN's latency with (near-)zero misrouting.\n";
  return 0;
}
