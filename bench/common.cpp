#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/config_io.hpp"
#include "traffic/trace.hpp"

namespace dfsim::bench {

BenchConfig parse_common(const CliOptions& cli) {
  BenchConfig cfg;
  cfg.scale = cli.get("scale", CliOptions::env("DFSIM_SCALE", "medium"));
  try {
    cfg.base = presets::by_name(cfg.scale);
    // --config=file.ini overlays a config file on the preset (partial files
    // override only the keys they mention; see sim/config_io.hpp).
    if (cli.has("config")) {
      cfg.base = load_params(cli.get("config"), cfg.base);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
  // Paper scale uses the paper's measurement methodology by default.
  if (cfg.scale == "paper") {
    cfg.warmup = 5000;
    cfg.measure = 15000;
  }
  // env_int tolerates unset or garbage DFSIM_WARMUP/DFSIM_MEASURE instead of
  // throwing out of std::stol.
  cfg.warmup = cli.get_int("warmup",
                           CliOptions::env_int("DFSIM_WARMUP", cfg.warmup));
  cfg.measure = cli.get_int(
      "measure", CliOptions::env_int("DFSIM_MEASURE", cfg.measure));
  cfg.reps = static_cast<std::int32_t>(cli.get_int("reps", cfg.reps));
  cfg.csv = cli.has("csv");
  // Workload selection: any registered traffic model is one flag away, for
  // every bench uniformly; figure defaults are applied via default_traffic
  // and never override these.
  try {
    if (cli.has("traffic")) {
      cfg.base.traffic.kind = traffic_kind_from_string(cli.get("traffic"));
      cfg.traffic_forced = true;
    }
    if (cli.has("trace")) {
      cfg.base.traffic.kind = TrafficKind::kTrace;
      cfg.base.traffic.trace_path = cli.get("trace");
      // Fail fast on a missing/garbled file here, not from a sweep thread.
      (void)validate_trace(cfg.base.traffic.trace_path);
      cfg.traffic_forced = true;
    }
    if (cli.has("injection")) {
      cfg.base.traffic.injection =
          injection_process_from_string(cli.get("injection"));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(2);
  }
  if (cli.has("adv-offset")) {
    cfg.base.traffic.adv_offset = static_cast<std::int32_t>(
        cli.get_int("adv-offset", cfg.base.traffic.adv_offset));
    cfg.adv_offset_forced = true;
  }
  cfg.base.traffic.shift_offset = static_cast<std::int32_t>(
      cli.get_int("shift-offset", cfg.base.traffic.shift_offset));
  cfg.base.traffic.hotspot_count = static_cast<std::int32_t>(
      cli.get_int("hotspot-count", cfg.base.traffic.hotspot_count));
  cfg.base.traffic.hotspot_fraction = cli.get_double(
      "hotspot-fraction", cfg.base.traffic.hotspot_fraction);
  cfg.base.traffic.mixed_uniform_fraction = cli.get_double(
      "mixed-uniform-fraction", cfg.base.traffic.mixed_uniform_fraction);
  cfg.base.traffic.burst_factor =
      cli.get_double("burst-factor", cfg.base.traffic.burst_factor);
  cfg.base.traffic.burst_len =
      cli.get_double("burst-len", cfg.base.traffic.burst_len);
  // Fall back to the seed already in the params (a --config file may have
  // set one) rather than clobbering it with a literal.
  cfg.base.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(cfg.base.seed)));
  return cfg;
}

void default_traffic(BenchConfig& cfg, TrafficKind kind,
                     std::int32_t adv_offset) {
  if (!cfg.traffic_forced) cfg.base.traffic.kind = kind;
  if (!cfg.adv_offset_forced) cfg.base.traffic.adv_offset = adv_offset;
}

std::string traffic_label(const TrafficParams& traffic) {
  auto fixed2 = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return std::string(buf);
  };
  std::string label = to_string(traffic.kind);
  switch (traffic.kind) {
    case TrafficKind::kAdversarial:
      label += "+";
      label += std::to_string(traffic.adv_offset);
      break;
    case TrafficKind::kMixed:
      label += "(un=";
      label += fixed2(traffic.mixed_uniform_fraction);
      label += ")";
      break;
    case TrafficKind::kShift:
      label += "(";
      label += std::to_string(traffic.shift_offset);
      label += ")";
      break;
    case TrafficKind::kHotspot:
      label += "(n=";
      label += std::to_string(traffic.hotspot_count);
      label += ",f=";
      label += fixed2(traffic.hotspot_fraction);
      label += ")";
      break;
    case TrafficKind::kTrace:
      label += "(";
      label += traffic.trace_path;
      label += ")";
      break;
    default:
      break;
  }
  if (traffic.injection == InjectionProcess::kBursty) label += "+bursty";
  return label;
}

std::vector<double> parse_loads(const CliOptions& cli,
                                const std::vector<double>& defaults) {
  if (!cli.has("loads")) return defaults;
  std::vector<double> loads;
  std::stringstream ss(cli.get("loads"));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) loads.push_back(std::stod(item));
  }
  return loads.empty() ? defaults : loads;
}

std::vector<RoutingKind> adaptive_lineup() {
  return {RoutingKind::kPiggyback, RoutingKind::kOlm, RoutingKind::kCbBase,
          RoutingKind::kCbHybrid, RoutingKind::kCbEctn};
}

std::vector<RoutingKind> parse_lineup(const CliOptions& cli,
                                      std::vector<RoutingKind> defaults) {
  if (cli.has("with-ugal")) {
    defaults.push_back(RoutingKind::kUgalL);
    defaults.push_back(RoutingKind::kUgalG);
  }
  if (!cli.has("routings")) return defaults;
  std::vector<RoutingKind> kinds;
  std::stringstream ss(cli.get("routings"));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      kinds.push_back(routing_kind_from_string(item));
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what()
                << " (expected MIN,VAL,PB,OLM,Base,Hybrid,ECtN,UGAL-L,UGAL-G)\n";
      std::exit(2);
    }
  }
  return kinds.empty() ? defaults : kinds;
}

void emit(const BenchConfig& cfg, const ResultTable& table,
          const std::string& title) {
  std::cout << "== " << title << " ==\n";
  if (cfg.csv) {
    table.write_csv(std::cout);
  } else {
    table.write_pretty(std::cout);
  }
  std::cout << "\n";
}

void run_scenario_tables(const SimParams& base,
                         const std::vector<RoutingKind>& mechanisms,
                         const std::vector<AblationScenario>& scenarios,
                         const SteadyOptions& options, bool csv,
                         int load_precision) {
  for (const AblationScenario& scenario : scenarios) {
    // All (mechanism, load) points are independent: one parallel sweep.
    std::vector<SweepPoint> points;
    for (const RoutingKind mechanism : mechanisms) {
      for (const double load : scenario.loads) {
        SweepPoint pt{base, options};
        pt.params.routing.kind = mechanism;
        pt.params.traffic = scenario.traffic;
        pt.params.traffic.load = load;
        points.push_back(std::move(pt));
      }
    }
    const std::vector<SteadyResult> results = run_sweep(points);

    for (const char* metric : {"latency", "throughput", "misrouted_pct"}) {
      std::vector<std::string> columns{"load"};
      for (const RoutingKind m : mechanisms) columns.push_back(to_string(m));
      ResultTable table(columns);
      for (std::size_t li = 0; li < scenario.loads.size(); ++li) {
        table.begin_row();
        table.set("load", scenario.loads[li], load_precision);
        for (std::size_t mi = 0; mi < mechanisms.size(); ++mi) {
          const SteadyResult& res = results[mi * scenario.loads.size() + li];
          const std::string col = to_string(mechanisms[mi]);
          if (metric == std::string("latency")) {
            // Past saturation the delivered-packet latency is not
            // meaningful (the paper cuts the curves there).
            if (res.backlog_per_node > 4.0) {
              table.set(col, "sat");
            } else {
              table.set(col, res.latency_avg, 1);
            }
          } else if (metric == std::string("throughput")) {
            table.set(col, res.throughput, 3);
          } else {
            table.set(col, 100.0 * res.misrouted_fraction, 1);
          }
        }
      }
      std::cout << "== " << scenario.name << " — " << metric << " ==\n";
      if (csv) {
        table.write_csv(std::cout);
      } else {
        table.write_pretty(std::cout);
      }
      std::cout << "\n";
    }
  }
}

void run_load_sweep_figure(const BenchConfig& cfg,
                           const std::vector<RoutingKind>& routings,
                           const std::vector<double>& loads,
                           const std::string& figure_title) {
  std::vector<std::string> columns{"load"};
  for (const RoutingKind r : routings) columns.push_back(to_string(r));

  ResultTable latency(columns);
  ResultTable latency_p99(columns);
  ResultTable throughput(columns);
  ResultTable misrouted(columns);

  SteadyOptions options;
  options.warmup = cfg.warmup;
  options.measure = cfg.measure;
  options.reps = cfg.reps;

  // All (routing, load) points are independent: run them as one sweep.
  std::vector<SweepPoint> points;
  for (const RoutingKind r : routings) {
    SimParams params = cfg.base;
    params.routing.kind = r;
    for (const double load : loads) {
      SweepPoint pt{params, options};
      pt.params.traffic.load = load;
      points.push_back(std::move(pt));
    }
  }
  const std::vector<SteadyResult> results = run_sweep(points);

  for (std::size_t li = 0; li < loads.size(); ++li) {
    latency.begin_row();
    latency_p99.begin_row();
    throughput.begin_row();
    misrouted.begin_row();
    latency.set("load", loads[li], 2);
    latency_p99.set("load", loads[li], 2);
    throughput.set("load", loads[li], 2);
    misrouted.set("load", loads[li], 2);
    for (std::size_t ri = 0; ri < routings.size(); ++ri) {
      const SteadyResult& res = results[ri * loads.size() + li];
      const std::string col = to_string(routings[ri]);
      // Past saturation the delivered-packet latency is not meaningful (the
      // paper cuts the curves there); mark those points.
      if (res.backlog_per_node > 4.0) {
        latency.set(col, "sat");
        latency_p99.set(col, "sat");
      } else {
        latency.set(col, res.latency_avg, 1);
        latency_p99.set(col, res.latency_p99, 1);
      }
      throughput.set(col, res.throughput, 3);
      misrouted.set(col, 100.0 * res.misrouted_fraction, 1);
    }
  }

  std::cout << "# " << figure_title << "\n# scale=" << cfg.scale << " ("
            << cfg.base.nodes()
            << " nodes), traffic=" << traffic_label(cfg.base.traffic)
            << ", warmup=" << cfg.warmup << " measure=" << cfg.measure
            << " reps=" << cfg.reps << "\n\n";
  emit(cfg, latency, "average packet latency (cycles) vs offered load");
  emit(cfg, latency_p99, "p99 packet latency (cycles) vs offered load");
  emit(cfg, throughput, "accepted load (phits/node/cycle) vs offered load");
  emit(cfg, misrouted, "globally misrouted packets (%) vs offered load");
}

}  // namespace dfsim::bench
