// Figure 10: sensitivity of the Base mechanism to the misrouting threshold.
// Paper expectations: low thresholds penalize UN (spurious misrouting —
// latency above MIN, throughput loss); high thresholds penalize ADV+1 (late
// misrouting — latency above VAL at low load). A valid middle band exists
// around 2x the average number of VCs per input port.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);

  // Threshold ranges centered on the preset's nominal threshold, mirroring
  // the paper's th=3..7 (UN) and th=6..12 (ADV) around its th=6.
  const std::int32_t nominal = cfg.base.routing.contention_threshold;
  std::vector<std::int32_t> un_ths, adv_ths;
  for (std::int32_t t = nominal - 3; t <= nominal + 1; ++t) {
    if (t >= 1) un_ths.push_back(t);
  }
  for (std::int32_t t = nominal; t <= nominal + 6; t += 1) adv_ths.push_back(t);

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};

  auto run_panel = [&](TrafficKind traffic, std::int32_t offset,
                       const std::vector<std::int32_t>& ths,
                       const std::vector<double>& loads, RoutingKind reference,
                       const std::string& title) {
    std::vector<std::string> columns{"load"};
    for (const std::int32_t th : ths) {
      columns.push_back("th=" + std::to_string(th));
    }
    columns.push_back(to_string(reference));
    ResultTable latency(columns);
    ResultTable throughput(columns);

    std::vector<SweepPoint> points;
    for (const std::int32_t th : ths) {
      for (const double load : loads) {
        SimParams params = cfg.base;
        params.routing.kind = RoutingKind::kCbBase;
        params.routing.contention_threshold = th;
        params.traffic.kind = traffic;
        params.traffic.adv_offset = offset;
        params.traffic.load = load;
        points.push_back(SweepPoint{params, options});
      }
    }
    for (const double load : loads) {  // reference line (MIN or VAL)
      SimParams params = cfg.base;
      params.routing.kind = reference;
      params.traffic.kind = traffic;
      params.traffic.adv_offset = offset;
      params.traffic.load = load;
      points.push_back(SweepPoint{params, options});
    }
    const auto results = run_sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
      latency.begin_row();
      throughput.begin_row();
      latency.set("load", loads[li], 2);
      throughput.set("load", loads[li], 2);
      for (std::size_t ti = 0; ti <= ths.size(); ++ti) {
        const std::string col = ti < ths.size()
                                    ? "th=" + std::to_string(ths[ti])
                                    : to_string(reference);
        const SteadyResult& res = results[ti * loads.size() + li];
        if (res.backlog_per_node > 4.0) {
          latency.set(col, "sat");
        } else {
          latency.set(col, res.latency_avg, 1);
        }
        throughput.set(col, res.throughput, 3);
      }
    }
    std::cout << "# " << title << "\n\n";
    emit(cfg, latency, "average packet latency (cycles)");
    emit(cfg, throughput, "accepted load (phits/node/cycle)");
  };

  std::cout << "# Figure 10 — Base threshold sensitivity (nominal th="
            << nominal << ")\n# scale=" << cfg.scale << " ("
            << cfg.base.topo.nodes() << " nodes)\n\n";
  run_panel(TrafficKind::kUniform, 1, un_ths,
            parse_loads(cli, {0.1, 0.3, 0.5, 0.7, 0.8}), RoutingKind::kMin,
            "Figure 10a — UN");
  run_panel(TrafficKind::kAdversarial, 1, adv_ths,
            parse_loads(cli, {0.1, 0.2, 0.3, 0.4, 0.45}), RoutingKind::kValiant,
            "Figure 10b — ADV+1");
  return 0;
}
