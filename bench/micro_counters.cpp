// Micro-benchmark: contention-counter update cost — the paper argues the
// mechanism is cheap (Section VI-B); this quantifies head-event and
// tail-departure updates plus threshold evaluation.
#include <benchmark/benchmark.h>

#include "core/contention_counters.hpp"
#include "core/triggers.hpp"
#include "util/rng.hpp"

namespace {

void BM_CounterUpdateCycle(benchmark::State& state) {
  using namespace dfsim;
  const auto ports = static_cast<std::int32_t>(state.range(0));
  ContentionCounters counters(ports);
  Rng rng(11);
  for (auto _ : state) {
    const auto p = static_cast<PortIndex>(
        rng.next_below(static_cast<std::uint64_t>(ports)));
    counters.on_head(p);
    benchmark::DoNotOptimize(counters.value(p));
    counters.on_tail_departure(p);
  }
}
BENCHMARK(BM_CounterUpdateCycle)->Arg(15)->Arg(31)->Arg(64);

void BM_TriggerEvaluation(benchmark::State& state) {
  using namespace dfsim;
  ContentionThresholdTrigger trigger{6, false, 4};
  Rng rng(13);
  std::int64_t fired = 0;
  for (auto _ : state) {
    const auto counter =
        static_cast<std::int32_t>(rng.next_below(12));
    if (trigger.fires(counter, rng)) ++fired;
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_TriggerEvaluation);

void BM_StatisticalTriggerEvaluation(benchmark::State& state) {
  using namespace dfsim;
  ContentionThresholdTrigger trigger{6, true, 4};
  Rng rng(13);
  std::int64_t fired = 0;
  for (auto _ : state) {
    const auto counter =
        static_cast<std::int32_t>(rng.next_below(12));
    if (trigger.fires(counter, rng)) ++fired;
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_StatisticalTriggerEvaluation);

}  // namespace
