// Section VI-C ablation: use of the minimal paths under adversarial traffic.
//
// With a fixed misrouting threshold and heavy ADV load, contention counters
// stay high and (nearly) all adaptive traffic diverts nonminimally, leaving
// the minimal path almost empty. The paper names two remedies it does not
// evaluate: (a) traffic that must preserve in-order delivery is pinned to
// the minimal path (as in Cray Cascade), and (b) a statistical trigger whose
// misrouting probability ramps with the counter value instead of a hard
// cutoff. Both are implemented here; this bench quantifies how each re-fills
// the minimal path and what it costs in latency/throughput.
#include <iostream>

#include "common.hpp"

namespace {

struct Variant {
  std::string name;
  bool statistical = false;
  std::int32_t window = 0;
  double inorder = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);
  const std::vector<double> loads = parse_loads(cli, {0.20, 0.30, 0.40});

  const std::vector<Variant> variants{
      {"fixed", false, 0, 0.0},
      {"stat_w2", true, 2, 0.0},
      {"stat_w4", true, 4, 0.0},
      {"stat_w8", true, 8, 0.0},
      {"inord10", false, 0, 0.10},
      {"inord30", false, 0, 0.30},
  };

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};
  std::vector<SweepPoint> points;
  for (const Variant& v : variants) {
    for (const double load : loads) {
      SimParams p = cfg.base;
      p.routing.kind = RoutingKind::kCbBase;
      p.routing.statistical_trigger = v.statistical;
      if (v.statistical) p.routing.statistical_window = v.window;
      p.traffic.kind = TrafficKind::kAdversarial;
      p.traffic.adv_offset = 1;
      p.traffic.load = load;
      p.traffic.inorder_fraction = v.inorder;
      points.push_back(SweepPoint{p, options});
    }
  }
  const auto results = run_sweep(points);

  std::cout << "# Section VI-C — minimal-path usage under ADV+1 (Base)\n"
            << "# scale=" << cfg.scale << " (" << cfg.base.topo.nodes()
            << " nodes)\n\n";

  for (const char* metric : {"minpath_pct", "latency", "throughput"}) {
    std::vector<std::string> columns{"load"};
    for (const Variant& v : variants) columns.push_back(v.name);
    ResultTable table(columns);
    for (std::size_t li = 0; li < loads.size(); ++li) {
      table.begin_row();
      table.set("load", loads[li], 2);
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const SteadyResult& res = results[vi * loads.size() + li];
        if (res.backlog_per_node > 4.0) {
          table.set(variants[vi].name, "sat");
          continue;
        }
        if (std::string(metric) == "minpath_pct") {
          table.set(variants[vi].name, 100.0 * res.minimal_path_fraction, 1);
        } else if (std::string(metric) == "latency") {
          table.set(variants[vi].name, res.latency_avg, 1);
        } else {
          table.set(variants[vi].name, res.throughput, 3);
        }
      }
    }
    emit(cfg, table, metric == std::string("minpath_pct")
                         ? "percent delivered on the pure minimal path"
                         : metric == std::string("latency")
                               ? "average packet latency (cycles)"
                               : "accepted load (phits/node/cycle)");
    std::cout << "\n";
  }

  std::cout << "Reading: `fixed` leaves the minimal path nearly empty at\n"
               "high load (the Section VI-C observation). The statistical\n"
               "ramp keeps a fraction of traffic minimal (wider window =\n"
               "more minimal use, at some latency cost); pinning an\n"
               "in-order share re-fills it deterministically.\n";
  return 0;
}
