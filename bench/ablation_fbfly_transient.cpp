// Section VI-D x Figure 7: trigger adaptation speed on the Flattened
// Butterfly, now on the unified engine.
//
// The paper's transient experiment (Figure 7) shows contention counters
// adapting to a UN -> adversarial switch almost immediately while
// credit/queue-based triggers need the queues of the minimal path to fill
// first — and Figure 8 shows the queue-based delay growing with the buffer
// size while the counter-based response stays put. This bench repeats both
// on the flattened-butterfly topology plugin: after warming up with uniform
// traffic the pattern flips to the row adversary at t=0; deliveries are
// bucketed by *birth* window (the paper's methodology) and the misrouted
// share and mean latency per window are printed for the queue trigger
// (UGAL-L) at two buffer depths and the counter trigger (Base).
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

struct Series {
  std::string name;
  std::vector<double> misrouted_pct;
  std::vector<double> latency;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  const auto k = static_cast<std::int32_t>(cli.get_int("k", 4));
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 2));
  const auto c = static_cast<std::int32_t>(cli.get_int("c", 8));
  // 0.3 sits under the UN saturation point of the default 4-ary 2-flat
  // (UN channel load = c*load*avg_hops/channels) while the row adversary
  // oversubscribes each direct channel 2.4x — the Figure 7 regime.
  const double load = cli.get_double("load", 0.3);
  const auto warmup = static_cast<Cycle>(cli.get_int("warmup", 2000));
  const auto window = static_cast<Cycle>(cli.get_int("window", 25));
  const auto windows = static_cast<std::int32_t>(cli.get_int("windows", 14));
  const bool csv = cli.has("csv");

  std::cout << "# Figure 7/8 story on the " << k << "-ary " << n << "-flat ("
            << FbflyParams{k, n, c}.nodes()
            << " nodes, Section VI-D): UN -> ADJ at t=0, load " << load
            << "\n\n";

  struct Variant {
    std::string name;
    RoutingKind routing;
    std::int32_t buf;
  };
  const std::vector<Variant> variants{
      {"UGAL_b8", RoutingKind::kUgalL, 8},
      {"UGAL_b32", RoutingKind::kUgalL, 32},
      {"CB_b8", RoutingKind::kCbBase, 8},
      {"CB_b32", RoutingKind::kCbBase, 32},
  };

  std::vector<Series> series;
  for (const Variant& variant : variants) {
    SimParams p = presets::fbfly(k, n, c, variant.buf);
    p.routing.kind = variant.routing;
    p.traffic.kind = TrafficKind::kUniform;
    p.traffic.load = load;
    p.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    Simulator sim(p);
    sim.run(warmup);
    const Cycle switch_cycle = sim.now();
    TrafficParams adjacent = p.traffic;  // row adversary = ADV+1 (dim 0)
    adjacent.kind = TrafficKind::kAdversarial;
    adjacent.adv_offset = 1;
    sim.set_traffic(adjacent);  // t = 0
    sim.enable_delivery_log();
    // Run the observation span plus a drain margin so late-born packets
    // still land in their birth buckets.
    sim.run(windows * window + 1500);

    Series s;
    s.name = variant.name;
    std::vector<std::int64_t> count(static_cast<std::size_t>(windows), 0);
    std::vector<std::int64_t> mis(static_cast<std::size_t>(windows), 0);
    std::vector<double> lat(static_cast<std::size_t>(windows), 0.0);
    for (const Simulator::Delivery& d : sim.delivery_log()) {
      const Cycle t = d.birth - switch_cycle;
      if (t < 0 || t >= windows * window) continue;
      const auto w = static_cast<std::size_t>(t / window);
      ++count[w];
      if (d.misrouted) ++mis[w];
      lat[w] += static_cast<double>(d.latency);
    }
    for (std::int32_t w = 0; w < windows; ++w) {
      const auto i = static_cast<std::size_t>(w);
      s.misrouted_pct.push_back(
          count[i] > 0 ? 100.0 * static_cast<double>(mis[i]) /
                             static_cast<double>(count[i])
                       : 0.0);
      s.latency.push_back(
          count[i] > 0 ? lat[i] / static_cast<double>(count[i]) : 0.0);
    }
    series.push_back(std::move(s));
  }

  for (const char* metric : {"misrouted_pct", "latency"}) {
    std::vector<std::string> columns{"t"};
    for (const Series& s : series) columns.push_back(s.name);
    ResultTable table(columns);
    for (std::int32_t w = 0; w < windows; ++w) {
      table.begin_row();
      table.set("t", static_cast<double>(w * window), 0);
      for (const Series& s : series) {
        const auto i = static_cast<std::size_t>(w);
        if (metric == std::string("misrouted_pct")) {
          table.set(s.name, s.misrouted_pct[i], 1);
        } else {
          table.set(s.name, s.latency[i], 1);
        }
      }
    }
    std::cout << "== " << metric << " by birth window (" << window
              << " cycles each) ==\n";
    if (csv) {
      table.write_csv(std::cout);
    } else {
      table.write_pretty(std::cout);
    }
    std::cout << "\n";
  }

  std::cout << "Reading: the counter trigger reacts within the first\n"
               "window or two at either buffer depth; the queue trigger's\n"
               "ramp is slower and stretches further when the buffers grow\n"
               "from 8 to 32 packets — the Figure 7 vs Figure 8 contrast,\n"
               "reproduced on a second topology.\n";
  return 0;
}
