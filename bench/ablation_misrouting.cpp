// Ablation bench: the two misrouting-policy design choices DESIGN.md calls
// out, isolated on the Base mechanism.
//
//  1. Global candidates MM+L vs CRG: with CRG (current router's globals
//     only), traffic funnelling into the source-group gateway must squeeze
//     through that router's h-1 spare global links; MM+L spreads it across
//     the whole group's links via committed local hops.
//  2. Opportunistic local misrouting on/off: ADV+h funnels all intermediate-
//     group traffic into one exit gateway per group, so disabling local
//     misrouting costs latency exactly where the paper's Figure 5c
//     exercises it.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace dfsim;
  using namespace dfsim::bench;
  const CliOptions cli(argc, argv);
  BenchConfig cfg = parse_common(cli);

  struct Variant {
    std::string name;
    GlobalMisroutePolicy policy;
    bool local_misroute;
  };
  const std::vector<Variant> variants{
      {"MM+L_localmis", GlobalMisroutePolicy::kMmL, true},  // paper policy
      {"CRG_localmis", GlobalMisroutePolicy::kCrg, true},
      {"MM+L_nolocal", GlobalMisroutePolicy::kMmL, false},
      {"CRG_nolocal", GlobalMisroutePolicy::kCrg, false},
  };

  SteadyOptions options{cfg.warmup, cfg.measure, cfg.reps};
  auto run_panel = [&](std::int32_t offset, const std::string& title) {
    const std::vector<double> loads = parse_loads(cli, {0.1, 0.2, 0.3, 0.4});
    std::vector<std::string> columns{"load"};
    for (const Variant& v : variants) columns.push_back(v.name);
    ResultTable latency(columns);
    ResultTable throughput(columns);

    std::vector<SweepPoint> points;
    for (const Variant& v : variants) {
      for (const double load : loads) {
        SimParams params = cfg.base;
        params.routing.kind = RoutingKind::kCbBase;
        params.routing.global_policy = v.policy;
        params.routing.allow_local_misroute = v.local_misroute;
        params.traffic.kind = TrafficKind::kAdversarial;
        params.traffic.adv_offset = offset;
        params.traffic.load = load;
        points.push_back(SweepPoint{params, options});
      }
    }
    const auto results = run_sweep(points);
    for (std::size_t li = 0; li < loads.size(); ++li) {
      latency.begin_row();
      throughput.begin_row();
      latency.set("load", loads[li], 2);
      throughput.set("load", loads[li], 2);
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const SteadyResult& r = results[vi * loads.size() + li];
        if (r.backlog_per_node > 4.0) {
          latency.set(variants[vi].name, "sat");
        } else {
          latency.set(variants[vi].name, r.latency_avg, 1);
        }
        throughput.set(variants[vi].name, r.throughput, 3);
      }
    }
    std::cout << "# " << title << "\n\n";
    emit(cfg, latency, "average packet latency (cycles)");
    emit(cfg, throughput, "accepted load (phits/node/cycle)");
  };

  std::cout << "# Ablation — Base misrouting policy (scale=" << cfg.scale
            << ", " << cfg.base.topo.nodes() << " nodes)\n\n";
  run_panel(1, "ADV+1 (source-group funnel)");
  run_panel(cfg.base.topo.h, "ADV+h (intermediate-group local funnel)");
  return 0;
}
