#!/usr/bin/env bash
# dfsim lint driver: one command for the whole static-analysis suite.
#
#   dfsim_check   invariant checks (CHK-RNG/GATE/ALLOC/CONFIG/SCHEMA);
#                 pure Python, always runs, always blocking.
#   clang-tidy    curated .clang-tidy profile over the compile database;
#                 blocking when the tool is installed, SKIP otherwise.
#   cppcheck      non-blocking report (written to $CPPCHECK_REPORT or
#                 cppcheck-report.txt in the build dir).
#
# Usage: scripts/lint.sh [build-dir]
# The build dir (default: build/) supplies compile_commands.json; it is
# configured on the fly when missing (CMAKE_EXPORT_COMPILE_COMMANDS is on
# by default in CMakeLists.txt).
set -u

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO/build}"
cd "$REPO"

rc=0
summary=()

note() { summary+=("$1"); echo "== $1"; }

# --- compile database --------------------------------------------------------
CDB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$CDB" ]; then
  echo "== compile_commands.json missing: configuring $BUILD_DIR"
  if ! cmake -S "$REPO" -B "$BUILD_DIR" -DDFSIM_FETCH_BENCHMARK=OFF \
       > /dev/null 2>&1; then
    echo "   (cmake configure failed; tool runs that need the database"
    echo "    will be skipped)"
  fi
fi
[ -f "$CDB" ] && echo "== compile database: $CDB"

# --- dfsim_check (blocking) --------------------------------------------------
if python3 "$REPO/tools/dfsim_check/dfsim_check.py" --root "$REPO" \
     ${CDB:+--compile-commands "$CDB"}; then
  note "dfsim_check: PASS"
else
  note "dfsim_check: FAIL"
  rc=1
fi

# --- clang-tidy (blocking when present) --------------------------------------
if command -v clang-tidy > /dev/null 2>&1 && [ -f "$CDB" ]; then
  mapfile -t tu < <(python3 -c "
import json,sys
for e in json.load(open('$CDB')):
    f = e['file']
    if '/src/' in f and f.endswith('.cpp'): print(f)")
  if clang-tidy -p "$BUILD_DIR" --quiet "${tu[@]}"; then
    note "clang-tidy: PASS (${#tu[@]} TUs)"
  else
    note "clang-tidy: FAIL"
    rc=1
  fi
else
  note "clang-tidy: SKIP (not installed or no compile database)"
fi

# --- cppcheck (non-blocking report) ------------------------------------------
if command -v cppcheck > /dev/null 2>&1; then
  report="${CPPCHECK_REPORT:-$BUILD_DIR/cppcheck-report.txt}"
  mkdir -p "$(dirname "$report")"
  cppcheck --enable=warning,performance,portability --inline-suppr \
    --std=c++20 --quiet -I "$REPO/src" "$REPO/src" 2> "$report" || true
  note "cppcheck: report at $report ($(wc -l < "$report") finding lines, non-blocking)"
else
  note "cppcheck: SKIP (not installed)"
fi

echo
echo "lint summary:"
printf '  %s\n' "${summary[@]}"
exit $rc
