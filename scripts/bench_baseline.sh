#!/usr/bin/env bash
# Emits BENCH_micro.json: combined google-benchmark JSON for the three
# micro-bench regression gates (counters, allocator, topology), and
# BENCH_workloads.json: the ablation_workloads CSV tables (tiny scale) as a
# JSON entry, so workload-level regressions are tracked alongside the micro
# gates.
#
# Usage: scripts/bench_baseline.sh [build-dir] [micro-out] [workloads-out]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro.json}"
WORKLOADS_OUT="${3:-BENCH_workloads.json}"
MIN_TIME="${DFSIM_BENCH_MIN_TIME:-0.2}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi

benches=(micro_counters micro_allocator micro_topology)
for b in "${benches[@]}"; do
  if [[ ! -x "$BUILD_DIR/$b" ]]; then
    echo "error: $BUILD_DIR/$b missing — build with google-benchmark available" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for b in "${benches[@]}"; do
  echo "== $b ==" >&2
  "$BUILD_DIR/$b" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$tmpdir/$b.json" \
    --benchmark_out_format=json >&2
done

# Merge: one object keyed by bench binary, preserving full benchmark JSON.
python3 - "$OUT" "$tmpdir" "${benches[@]}" <<'EOF'
import json, sys
out, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        merged[b] = json.load(f)
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out}")
EOF

# Workload ablation entry: tiny-scale CSV of every traffic model x routing,
# parsed into {table title: [rows...]} for diffing across commits.
if [[ ! -x "$BUILD_DIR/ablation_workloads" ]]; then
  echo "error: $BUILD_DIR/ablation_workloads missing — build it first" >&2
  exit 1
fi
WORKLOADS_ARGS=(--scale=tiny --warmup=500 --measure=1000 --csv)
"$BUILD_DIR/ablation_workloads" "${WORKLOADS_ARGS[@]}" > "$tmpdir/workloads.csv"

python3 - "$WORKLOADS_OUT" "$tmpdir/workloads.csv" "${WORKLOADS_ARGS[*]}" <<'EOF'
import json, sys
out, csv_path, args = sys.argv[1], sys.argv[2], sys.argv[3]
tables, title, rows = {}, None, []
with open(csv_path) as f:
    for line in f:
        line = line.strip()
        if line.startswith("== "):
            if title is not None:
                tables[title] = rows
            title, rows = line.strip("= "), []
        elif line and not line.startswith("#"):
            rows.append(line.split(","))
if title is not None:
    tables[title] = rows
with open(out, "w") as f:
    json.dump({"ablation_workloads": {"args": args, "tables": tables}}, f,
              indent=1)
print(f"wrote {out}")
EOF
