#!/usr/bin/env bash
# Emits the committed perf-trajectory artifacts:
#   BENCH_micro.json     — combined google-benchmark JSON for the micro
#                          regression gates (counters, allocator, topology);
#   BENCH_workloads.json — the ablation_workloads registry experiment at
#                          tiny scale as a schema-versioned dfsim-results
#                          document (emitted by dfsim_run, rev-stripped so
#                          re-running on an unchanged tree is a no-op diff);
#   BENCH_engine.json    — raw engine stepping throughput (cycles/sec per
#                          scale x load x engine.threads shard count,
#                          dfsim_run perf). When the output file already
#                          exists (the committed trajectory), a drop of more
#                          than 20% per point prints a SOFT warning — timing
#                          noise makes a hard gate flaky — and never fails
#                          the run. The threads axis is the sharded-engine
#                          scaling record; read it against the cores the
#                          measuring host actually had (a 1-core container
#                          shows a flat profile by construction).
#
# Usage: scripts/bench_baseline.sh [--engine] [build-dir] [micro-out]
#                                  [workloads-out] [engine-out]
#   --engine   emit only BENCH_engine.json (the CI perf-smoke job)
set -euo pipefail

ENGINE_ONLY=0
if [[ "${1:-}" == "--engine" ]]; then
  ENGINE_ONLY=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_micro.json}"
WORKLOADS_OUT="${3:-BENCH_workloads.json}"
ENGINE_OUT="${4:-BENCH_engine.json}"
MIN_TIME="${DFSIM_BENCH_MIN_TIME:-0.2}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi
if [[ ! -x "$BUILD_DIR/dfsim_run" ]]; then
  echo "error: $BUILD_DIR/dfsim_run missing — build it first" >&2
  exit 1
fi

# One EXIT trap covers every scratch path (mktemp files/dirs below), so an
# abort at any point leaves nothing behind.
SCRATCH=()
cleanup() { [[ ${#SCRATCH[@]} -gt 0 ]] && rm -rf "${SCRATCH[@]}" || true; }
trap cleanup EXIT

# Engine stepping throughput through dfsim_run perf: the committed file (if
# any) doubles as the soft regression baseline for the fresh measurement.
emit_engine() {
  local tmp
  tmp="$(mktemp)"
  SCRATCH+=("$tmp")
  local baseline_args=()
  if [[ -f "$ENGINE_OUT" ]]; then
    baseline_args=(--baseline="$ENGINE_OUT" --threshold=0.2)
  fi
  "$BUILD_DIR/dfsim_run" perf --scales=tiny,medium,paper --loads=0.05,0.3 \
    --engine-threads=1,2,4,8 \
    --out="$tmp" "${baseline_args[@]+"${baseline_args[@]}"}"
  mv "$tmp" "$ENGINE_OUT"
  echo "wrote $ENGINE_OUT"
}

if [[ "$ENGINE_ONLY" -eq 1 ]]; then
  emit_engine
  exit 0
fi

benches=(micro_counters micro_allocator micro_topology)
for b in "${benches[@]}"; do
  if [[ ! -x "$BUILD_DIR/$b" ]]; then
    echo "error: $BUILD_DIR/$b missing — build with google-benchmark available" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
SCRATCH+=("$tmpdir")

for b in "${benches[@]}"; do
  echo "== $b ==" >&2
  "$BUILD_DIR/$b" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$tmpdir/$b.json" \
    --benchmark_out_format=json >&2
done

# Merge: one object keyed by bench binary, preserving full benchmark JSON.
python3 - "$OUT" "$tmpdir" "${benches[@]}" <<'EOF'
import json, sys
out, tmpdir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {}
for b in benches:
    with open(f"{tmpdir}/{b}.json") as f:
        merged[b] = json.load(f)
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
print(f"wrote {out}")
EOF

# Workload baseline through the experiment registry: structured JSON with
# config hash + full metric set, diffable across commits.
"$BUILD_DIR/dfsim_run" run --experiments=ablation_workloads --scale=tiny \
  --warmup=500 --measure=1000 --quiet --strip-rev --out="$tmpdir/workloads"
cp "$tmpdir/workloads/ablation_workloads.json" "$WORKLOADS_OUT"
echo "wrote $WORKLOADS_OUT"

emit_engine
