#!/usr/bin/env bash
# Reproduce "the paper" in one command: run every registered experiment at
# the chosen scale, evaluate the paper-parity gates (trend gates at every
# scale; golden-curve comparison when the run matches the committed
# tests/goldens settings, i.e. at --scale=tiny defaults), and render
# RESULTS.md from the emitted JSON.
#
# Usage: scripts/reproduce.sh [--scale=tiny|small|medium|paper]
#                             [--out=results] [--build-dir=build]
#                             [--results-md=RESULTS.md] [--skip-build]
#                             [-- extra dfsim_run run flags...]
set -euo pipefail

SCALE="tiny"
OUT="results"
BUILD_DIR="build"
RESULTS_MD="RESULTS.md"
SKIP_BUILD=0
EXTRA_ARGS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --scale=*)      SCALE="${1#*=}" ;;
    --out=*)        OUT="${1#*=}" ;;
    --build-dir=*)  BUILD_DIR="${1#*=}" ;;
    --results-md=*) RESULTS_MD="${1#*=}" ;;
    --skip-build)   SKIP_BUILD=1 ;;
    --) shift; EXTRA_ARGS=("$@"); break ;;
    *) echo "error: unknown flag '$1'" >&2; exit 2 ;;
  esac
  shift
done

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

if [[ "$SKIP_BUILD" -eq 0 ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j --target dfsim_run >/dev/null
fi

RUN="$BUILD_DIR/dfsim_run"
if [[ ! -x "$RUN" ]]; then
  echo "error: $RUN not built (run cmake first or drop --skip-build)" >&2
  exit 1
fi

echo "== running the full experiment registry at scale=$SCALE -> $OUT/ =="
# --strip-rev always: the committed RESULTS.md is rev-free, so a clean
# reproduction must be a no-op diff (rev-stamped documents are available
# via dfsim_run run directly when provenance matters).
"$RUN" run --experiments=all --scale="$SCALE" --out="$OUT" --quiet \
  --strip-rev "${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}"

echo "== paper-parity gates =="
CHECK_STATUS=0
"$RUN" check --in="$OUT" --goldens=tests/goldens || CHECK_STATUS=$?

echo "== rendering $RESULTS_MD =="
"$RUN" render --in="$OUT" --out="$RESULTS_MD" --goldens=tests/goldens \
  || CHECK_STATUS=$?

if [[ "$CHECK_STATUS" -ne 0 ]]; then
  echo "reproduce: parity gates FAILED (see above / $RESULTS_MD)" >&2
  exit "$CHECK_STATUS"
fi
echo "reproduce: done — JSON+CSV in $OUT/, report in $RESULTS_MD, all gates passed"
