#include "sim/config_io.hpp"

#include <fstream>
#include <stdexcept>

namespace dfsim {

namespace {

std::string trim(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::int32_t to_i32(const std::string& key, const std::string& value) {
  try {
    return static_cast<std::int32_t>(std::stol(value));
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad integer for " + key + ": '" +
                                value + "'");
  }
}

double to_f64(const std::string& key, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad number for " + key + ": '" +
                                value + "'");
  }
}

bool to_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("config: bad bool for " + key + ": '" + value +
                              "'");
}

}  // namespace

void apply_param(SimParams& p, const std::string& key,
                 const std::string& value) {
  // Topology
  if (key == "topology") { p.topology = topology_kind_from_string(value); return; }
  if (key == "topo.p") { p.topo.p = to_i32(key, value); return; }
  if (key == "topo.a") { p.topo.a = to_i32(key, value); return; }
  if (key == "topo.h") { p.topo.h = to_i32(key, value); return; }
  if (key == "fbfly.k") { p.fbfly.k = to_i32(key, value); return; }
  if (key == "fbfly.n") { p.fbfly.n = to_i32(key, value); return; }
  if (key == "fbfly.c") { p.fbfly.c = to_i32(key, value); return; }
  if (key == "torus.k") { p.torus.k = to_i32(key, value); return; }
  if (key == "torus.n") { p.torus.n = to_i32(key, value); return; }
  if (key == "torus.c") { p.torus.c = to_i32(key, value); return; }
  // Router
  if (key == "router.pipeline_cycles") { p.router.pipeline_cycles = to_i32(key, value); return; }
  if (key == "router.speedup") { p.router.speedup = to_i32(key, value); return; }
  if (key == "router.vcs_local") { p.router.vcs_local = to_i32(key, value); return; }
  if (key == "router.vcs_global") { p.router.vcs_global = to_i32(key, value); return; }
  if (key == "router.vcs_injection") { p.router.vcs_injection = to_i32(key, value); return; }
  if (key == "router.buf_output_phits") { p.router.buf_output_phits = to_i32(key, value); return; }
  if (key == "router.buf_local_phits") { p.router.buf_local_phits = to_i32(key, value); return; }
  if (key == "router.buf_global_phits") { p.router.buf_global_phits = to_i32(key, value); return; }
  if (key == "router.injection_queue_packets") { p.router.injection_queue_packets = to_i32(key, value); return; }
  if (key == "router.through_priority") { p.router.through_priority = to_bool(key, value); return; }
  // Links
  if (key == "link.local_latency") { p.link.local_latency = to_i32(key, value); return; }
  if (key == "link.global_latency") { p.link.global_latency = to_i32(key, value); return; }
  // Routing
  if (key == "routing.kind") { p.routing.kind = routing_kind_from_string(value); return; }
  if (key == "routing.contention_threshold") { p.routing.contention_threshold = to_i32(key, value); return; }
  if (key == "routing.hybrid_contention_threshold") { p.routing.hybrid_contention_threshold = to_i32(key, value); return; }
  if (key == "routing.ectn_combined_threshold") { p.routing.ectn_combined_threshold = to_i32(key, value); return; }
  if (key == "routing.ectn_update_period") { p.routing.ectn_update_period = to_i32(key, value); return; }
  if (key == "routing.counter_saturation") { p.routing.counter_saturation = to_i32(key, value); return; }
  if (key == "routing.olm_credit_fraction") { p.routing.olm_credit_fraction = to_f64(key, value); return; }
  if (key == "routing.hybrid_credit_fraction") { p.routing.hybrid_credit_fraction = to_f64(key, value); return; }
  if (key == "routing.pb_ugal_threshold") { p.routing.pb_ugal_threshold = to_i32(key, value); return; }
  if (key == "routing.global_policy") {
    if (value == "MM+L" || value == "mml" || value == "MML") {
      p.routing.global_policy = GlobalMisroutePolicy::kMmL;
    } else if (value == "CRG" || value == "crg") {
      p.routing.global_policy = GlobalMisroutePolicy::kCrg;
    } else {
      throw std::invalid_argument("config: bad global_policy '" + value + "'");
    }
    return;
  }
  if (key == "routing.allow_local_misroute") { p.routing.allow_local_misroute = to_bool(key, value); return; }
  if (key == "routing.statistical_trigger") { p.routing.statistical_trigger = to_bool(key, value); return; }
  if (key == "routing.statistical_window") { p.routing.statistical_window = to_i32(key, value); return; }
  // Traffic (names per traffic/spec.cpp; any registered model is selectable)
  if (key == "traffic.kind") { p.traffic.kind = traffic_kind_from_string(value); return; }
  if (key == "traffic.load") { p.traffic.load = to_f64(key, value); return; }
  if (key == "traffic.adv_offset") { p.traffic.adv_offset = to_i32(key, value); return; }
  if (key == "traffic.mixed_uniform_fraction") { p.traffic.mixed_uniform_fraction = to_f64(key, value); return; }
  if (key == "traffic.shift_offset") { p.traffic.shift_offset = to_i32(key, value); return; }
  if (key == "traffic.hotspot_count") { p.traffic.hotspot_count = to_i32(key, value); return; }
  if (key == "traffic.hotspot_fraction") { p.traffic.hotspot_fraction = to_f64(key, value); return; }
  if (key == "traffic.injection") { p.traffic.injection = injection_process_from_string(value); return; }
  if (key == "traffic.burst_factor") { p.traffic.burst_factor = to_f64(key, value); return; }
  if (key == "traffic.burst_len") { p.traffic.burst_len = to_f64(key, value); return; }
  if (key == "traffic.trace_path") { p.traffic.trace_path = value; p.traffic.kind = TrafficKind::kTrace; return; }
  if (key == "traffic.inorder_fraction") { p.traffic.inorder_fraction = to_f64(key, value); return; }
  // Fault schedule (src/fault/fault_model.hpp)
  if (key == "fault.enabled") { p.fault.enabled = to_bool(key, value); return; }
  if (key == "fault.seed") { p.fault.seed = static_cast<std::uint64_t>(to_i32(key, value)); return; }
  if (key == "fault.onset") { p.fault.onset = to_i32(key, value); return; }
  if (key == "fault.link_fail_fraction") { p.fault.link_fail_fraction = to_f64(key, value); return; }
  if (key == "fault.link_class") {
    if (value != "any" && value != "local" && value != "global") {
      throw std::invalid_argument("config: bad fault.link_class '" + value +
                                  "' (expected any|local|global)");
    }
    p.fault.link_class = value;
    return;
  }
  if (key == "fault.flap_period") { p.fault.flap_period = to_i32(key, value); return; }
  if (key == "fault.flap_down") { p.fault.flap_down = to_i32(key, value); return; }
  if (key == "fault.router_fail_fraction") { p.fault.router_fail_fraction = to_f64(key, value); return; }
  if (key == "fault.degrade_fraction") { p.fault.degrade_fraction = to_f64(key, value); return; }
  if (key == "fault.degrade_latency") { p.fault.degrade_latency = to_i32(key, value); return; }
  if (key == "fault.hop_cap") { p.fault.hop_cap = to_i32(key, value); return; }
  // Telemetry (src/telemetry/telemetry_sink.hpp)
  if (key == "telemetry.enabled") { p.telemetry.enabled = to_bool(key, value); return; }
  if (key == "telemetry.sample_period") { p.telemetry.sample_period = to_i32(key, value); return; }
  if (key == "telemetry.max_samples") { p.telemetry.max_samples = to_i32(key, value); return; }
  // Packet tracing (src/telemetry/packet_trace.hpp)
  if (key == "trace.enabled") { p.trace.enabled = to_bool(key, value); return; }
  if (key == "trace.seed") { p.trace.seed = static_cast<std::uint64_t>(to_i32(key, value)); return; }
  if (key == "trace.sample_rate") { p.trace.sample_rate = to_f64(key, value); return; }
  if (key == "trace.max_events") { p.trace.max_events = to_i32(key, value); return; }
  // Congestion notifications (src/routing/notification.hpp, ARN family)
  if (key == "notify.enabled") { p.notify.enabled = to_bool(key, value); return; }
  if (key == "notify.threshold") { p.notify.threshold = to_f64(key, value); return; }
  if (key == "notify.update_period") { p.notify.update_period = to_i32(key, value); return; }
  if (key == "notify.propagation_delay") { p.notify.propagation_delay = to_i32(key, value); return; }
  if (key == "notify.expiry") { p.notify.expiry = to_i32(key, value); return; }
  if (key == "notify.throttle_injection") { p.notify.throttle_injection = to_bool(key, value); return; }
  // Engine (src/engine/simulator.hpp sharded execution)
  if (key == "engine.threads") { p.engine.threads = to_i32(key, value); return; }
  // Top level
  if (key == "packet_size_phits") { p.packet_size_phits = to_i32(key, value); return; }
  if (key == "seed") { p.seed = static_cast<std::uint64_t>(to_i32(key, value)); return; }
  throw std::invalid_argument("config: unknown key '" + key + "'");
}

SimParams load_params(const std::string& path, const SimParams& base) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  SimParams params = base;
  std::string line;
  std::string section;
  while (std::getline(in, line)) {
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config: expected key = value, got '" +
                                  line + "'");
    }
    std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (!section.empty() && key.find('.') == std::string::npos) {
      key = section + "." + key;
    }
    apply_param(params, key, value);
  }
  return params;
}

}  // namespace dfsim
