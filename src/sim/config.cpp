#include "sim/config.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfsim {

std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kMin: return "MIN";
    case RoutingKind::kValiant: return "VAL";
    case RoutingKind::kUgalL: return "UGAL-L";
    case RoutingKind::kUgalG: return "UGAL-G";
    case RoutingKind::kPiggyback: return "PB";
    case RoutingKind::kOlm: return "OLM";
    case RoutingKind::kCbBase: return "Base";
    case RoutingKind::kCbHybrid: return "Hybrid";
    case RoutingKind::kCbEctn: return "ECtN";
    case RoutingKind::kArn: return "ARN";
  }
  return "?";
}

std::string to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kFbfly: return "fbfly";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

TopologyKind topology_kind_from_string(const std::string& name) {
  if (name == "dragonfly" || name == "df") return TopologyKind::kDragonfly;
  if (name == "fbfly" || name == "flattened-butterfly" || name == "fb") {
    return TopologyKind::kFbfly;
  }
  if (name == "torus" || name == "ring") return TopologyKind::kTorus;
  throw std::invalid_argument("unknown topology: " + name +
                              " (expected dragonfly|fbfly|torus)");
}

RoutingKind routing_kind_from_string(const std::string& name) {
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  const std::string n = lower(name);
  if (n == "min") return RoutingKind::kMin;
  if (n == "val" || n == "valiant") return RoutingKind::kValiant;
  if (n == "ugal-l" || n == "ugall") return RoutingKind::kUgalL;
  if (n == "ugal-g" || n == "ugalg") return RoutingKind::kUgalG;
  if (n == "pb" || n == "piggyback") return RoutingKind::kPiggyback;
  if (n == "olm") return RoutingKind::kOlm;
  if (n == "base" || n == "cb" || n == "cb-base") return RoutingKind::kCbBase;
  if (n == "hybrid" || n == "cb-hybrid") return RoutingKind::kCbHybrid;
  if (n == "ectn" || n == "cb-ectn") return RoutingKind::kCbEctn;
  if (n == "arn" || n == "notify") return RoutingKind::kArn;
  throw std::invalid_argument("unknown routing mechanism: " + name);
}

namespace presets {

SimParams paper() {
  SimParams p;
  p.topo = TopoParams{8, 16, 8};
  return p;
}

SimParams medium() {
  SimParams p;
  p.topo = TopoParams{4, 8, 4};
  return p;
}

SimParams small() {
  SimParams p;
  p.topo = TopoParams{3, 6, 3};
  p.routing.contention_threshold = 5;
  return p;
}

SimParams tiny() {
  SimParams p;
  p.topo = TopoParams{2, 4, 2};
  p.routing.contention_threshold = 4;
  // Short links keep base latency low at smoke scale.
  p.link.local_latency = 5;
  p.link.global_latency = 20;
  return p;
}

SimParams exa() {
  SimParams p;
  p.topo = TopoParams{10, 48, 44};  // 2113 groups, 101424 routers, ~1.01M nodes
  return p;
}

namespace {

// Shared non-dragonfly baseline: unit packets so `load` is packets/node/
// cycle, uniform short links, one buffer class.
SimParams flat_base(std::int32_t buf_packets) {
  SimParams p;
  p.packet_size_phits = 1;
  p.router.pipeline_cycles = 1;
  p.router.vcs_injection = 1;
  p.router.buf_local_phits = buf_packets;
  p.router.buf_global_phits = buf_packets;
  p.router.injection_queue_packets = 512;
  p.link.local_latency = 3;
  p.link.global_latency = 3;
  p.router.through_priority = true;
  return p;
}

}  // namespace

SimParams fbfly(std::int32_t k, std::int32_t n, std::int32_t c,
                std::int32_t buf_packets) {
  SimParams p = flat_base(buf_packets);
  p.topology = TopologyKind::kFbfly;
  p.fbfly = FbflyParams{k, n, c};
  p.router.vcs_local = 2;   // one VC class per Valiant phase
  p.router.vcs_global = 2;
  // Auto threshold: all c injection heads aligned on one channel. The
  // unified engine's counters observe every queue head (not just the
  // injection heads the old forked simulator sampled), so c aligned heads
  // fire reliably under adversarial patterns while random uniform alignment
  // stays very unlikely.
  p.routing.contention_threshold = std::max(2, c);
  p.routing.hybrid_contention_threshold =
      std::max(1, p.routing.contention_threshold / 2);
  p.routing.allow_local_misroute = false;  // no local-detour analogue
  return p;
}

SimParams torus(std::int32_t k, std::int32_t n, std::int32_t c,
                std::int32_t buf_packets) {
  SimParams p = flat_base(buf_packets);
  p.topology = TopologyKind::kTorus;
  p.torus = TorusParams{k, n, c};
  p.router.vcs_local = 4;   // dateline x Valiant-phase classes
  p.router.vcs_global = 4;
  p.routing.contention_threshold = std::max(2, c);
  p.routing.hybrid_contention_threshold =
      std::max(1, p.routing.contention_threshold / 2);
  p.routing.allow_local_misroute = false;
  return p;
}

SimParams with_link_faults(SimParams base, double fraction,
                           const std::string& link_class, Cycle onset) {
  base.fault.enabled = true;
  base.fault.link_fail_fraction = fraction;
  base.fault.link_class = link_class;
  base.fault.onset = onset;
  return base;
}

SimParams by_name(const std::string& name) {
  if (name == "paper") return paper();
  if (name == "medium") return medium();
  if (name == "small") return small();
  if (name == "tiny") return tiny();
  if (name == "exa") return exa();
  throw std::invalid_argument("unknown preset/scale: " + name +
                              " (expected tiny|small|medium|paper|exa)");
}

}  // namespace presets

}  // namespace dfsim
