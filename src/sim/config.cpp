#include "sim/config.hpp"

#include <stdexcept>

namespace dfsim {

std::string to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kMin: return "MIN";
    case RoutingKind::kValiant: return "VAL";
    case RoutingKind::kUgalL: return "UGAL-L";
    case RoutingKind::kUgalG: return "UGAL-G";
    case RoutingKind::kPiggyback: return "PB";
    case RoutingKind::kOlm: return "OLM";
    case RoutingKind::kCbBase: return "Base";
    case RoutingKind::kCbHybrid: return "Hybrid";
    case RoutingKind::kCbEctn: return "ECtN";
  }
  return "?";
}

RoutingKind routing_kind_from_string(const std::string& name) {
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  const std::string n = lower(name);
  if (n == "min") return RoutingKind::kMin;
  if (n == "val" || n == "valiant") return RoutingKind::kValiant;
  if (n == "ugal-l" || n == "ugall") return RoutingKind::kUgalL;
  if (n == "ugal-g" || n == "ugalg") return RoutingKind::kUgalG;
  if (n == "pb" || n == "piggyback") return RoutingKind::kPiggyback;
  if (n == "olm") return RoutingKind::kOlm;
  if (n == "base" || n == "cb" || n == "cb-base") return RoutingKind::kCbBase;
  if (n == "hybrid" || n == "cb-hybrid") return RoutingKind::kCbHybrid;
  if (n == "ectn" || n == "cb-ectn") return RoutingKind::kCbEctn;
  throw std::invalid_argument("unknown routing mechanism: " + name);
}

namespace presets {

SimParams paper() {
  SimParams p;
  p.topo = TopoParams{8, 16, 8};
  return p;
}

SimParams medium() {
  SimParams p;
  p.topo = TopoParams{4, 8, 4};
  return p;
}

SimParams small() {
  SimParams p;
  p.topo = TopoParams{3, 6, 3};
  p.routing.contention_threshold = 5;
  return p;
}

SimParams tiny() {
  SimParams p;
  p.topo = TopoParams{2, 4, 2};
  p.routing.contention_threshold = 4;
  // Short links keep base latency low at smoke scale.
  p.link.local_latency = 5;
  p.link.global_latency = 20;
  return p;
}

SimParams by_name(const std::string& name) {
  if (name == "paper") return paper();
  if (name == "medium") return medium();
  if (name == "small") return small();
  if (name == "tiny") return tiny();
  throw std::invalid_argument("unknown preset/scale: " + name +
                              " (expected tiny|small|medium|paper)");
}

}  // namespace presets

}  // namespace dfsim
