// Config-file overlay: a partial INI-style file overrides only the keys it
// mentions on top of a base SimParams (usually a preset). Keys are dotted,
// e.g. `topo.a = 16`, `routing.kind = ECtN`, `traffic.load = 0.35`.
#pragma once

#include <string>

#include "sim/config.hpp"

namespace dfsim {

/// Loads `path` on top of `base`. Throws std::runtime_error when the file
/// cannot be opened and std::invalid_argument on unknown keys or bad values.
[[nodiscard]] SimParams load_params(const std::string& path,
                                    const SimParams& base);

/// Applies a single `key = value` assignment; exposed for tests and for
/// `--set key=value` style overrides.
void apply_param(SimParams& params, const std::string& key,
                 const std::string& value);

}  // namespace dfsim
