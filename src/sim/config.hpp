// Simulation parameters: topology shape, router microarchitecture, link
// latencies, routing mechanism knobs, and traffic pattern — plus the named
// presets every bench selects with --scale (Table I of the paper at "paper"
// scale, proportionally shrunk versions below it).
#pragma once

#include <cstdint>
#include <string>

#include "traffic/spec.hpp"
#include "util/types.hpp"

namespace dfsim {

// ---------------------------------------------------------------------------
// Enums

/// Routing mechanisms compared in the paper. kCb* are the contention-counter
/// based contributions (Section IV/V); the rest are baselines.
enum class RoutingKind : std::uint8_t {
  kMin,        // oblivious minimal
  kValiant,    // oblivious Valiant (random intermediate group)
  kUgalL,      // UGAL with local (source-router credit) estimates
  kUgalG,      // UGAL with idealized global queue knowledge
  kPiggyback,  // UGAL-L + piggybacked remote link state (PB)
  kOlm,        // in-transit credit-triggered misrouting (On-the-fly OLM)
  kCbBase,     // contention counters, threshold trigger (Base)
  kCbHybrid,   // contention + credit hybrid trigger (Hybrid)
  kCbEctn,     // contention + explicit contention notification (ECtN)
  kArn,        // adaptive-routing-notification family (notify.* knobs)
};

[[nodiscard]] std::string to_string(RoutingKind kind);
[[nodiscard]] RoutingKind routing_kind_from_string(const std::string& name);

// TrafficKind / InjectionProcess / TrafficParams moved to traffic/spec.hpp:
// the workload subsystem (traffic/model.hpp) interprets them for both
// simulators; this header re-exports them via the include above.

/// Candidate set for a global misroute (Section V-A): MM+L may commit a local
/// hop to reach any global link of the group; CRG restricts candidates to the
/// current router's own global links.
enum class GlobalMisroutePolicy : std::uint8_t { kMmL, kCrg };

/// Topology the unified engine instantiates (see topo/topology.hpp). The
/// matching shape struct below is consulted; the others are ignored.
enum class TopologyKind : std::uint8_t { kDragonfly, kFbfly, kTorus };

[[nodiscard]] std::string to_string(TopologyKind kind);
[[nodiscard]] TopologyKind topology_kind_from_string(const std::string& name);

// ---------------------------------------------------------------------------
// Parameter structs

/// Canonical dragonfly: `a` routers per group, `p` nodes per router, `h`
/// global links per router; fully connected groups, one global link between
/// every pair of groups (g = a*h + 1 groups).
struct TopoParams {
  std::int32_t p = 4;
  std::int32_t a = 8;
  std::int32_t h = 4;

  [[nodiscard]] std::int32_t groups() const { return a * h + 1; }
  [[nodiscard]] std::int32_t routers() const { return groups() * a; }
  [[nodiscard]] std::int32_t nodes() const { return routers() * p; }
  [[nodiscard]] std::int32_t local_ports() const { return a - 1; }
  /// Inter-router ports (local + global); injection/ejection excluded.
  [[nodiscard]] std::int32_t forward_ports() const { return (a - 1) + h; }
  /// Full router radix: injection + local + global.
  [[nodiscard]] std::int32_t radix() const { return p + forward_ports(); }
};

/// k-ary n-flat flattened butterfly: full connectivity per dimension,
/// c terminals per router (Section VI-D companion topology).
struct FbflyParams {
  std::int32_t k = 4;  // radix per dimension
  std::int32_t n = 2;  // dimensions
  std::int32_t c = 4;  // nodes per router

  [[nodiscard]] std::int32_t routers() const {
    std::int32_t total = 1;
    for (std::int32_t d = 0; d < n; ++d) total *= k;
    return total;
  }
  [[nodiscard]] std::int32_t nodes() const { return routers() * c; }
  /// Inter-router channels per router: (k-1) per dimension.
  [[nodiscard]] std::int32_t channels() const { return n * (k - 1); }
};

/// k-ary n-cube torus: wrap-around rings per dimension, c terminals per
/// router. Needs vcs_local >= 4 (dateline x Valiant-phase VCs).
struct TorusParams {
  std::int32_t k = 8;  // ring size per dimension
  std::int32_t n = 2;  // dimensions
  std::int32_t c = 2;  // nodes per router

  [[nodiscard]] std::int32_t routers() const {
    std::int32_t total = 1;
    for (std::int32_t d = 0; d < n; ++d) total *= k;
    return total;
  }
  [[nodiscard]] std::int32_t nodes() const { return routers() * c; }
};

struct RouterParams {
  std::int32_t pipeline_cycles = 5;  // router traversal latency
  std::int32_t speedup = 2;          // internal frequency speedup (allocator iterations)
  std::int32_t vcs_local = 3;        // local-port VCs (l0/l1/l2 hop classes)
  std::int32_t vcs_global = 2;       // global-port VCs (g0/g1 hop classes)
  std::int32_t vcs_injection = 1;
  std::int32_t buf_output_phits = 32;
  std::int32_t buf_local_phits = 32;    // per VC, Table I "small buffers"
  std::int32_t buf_global_phits = 256;  // per VC
  /// Injection (source) queue depth in packets; bounds memory past saturation.
  std::int32_t injection_queue_packets = 64;
  /// Output arbitration favors in-network traffic over injection (see
  /// SeparableAllocator::set_through_priority). Required for sane saturated
  /// throughput on low-radix rings/tori; off for dragonfly figure parity.
  bool through_priority = false;
};

struct LinkParams {
  std::int32_t local_latency = 10;
  std::int32_t global_latency = 100;
};

struct RoutingParams {
  RoutingKind kind = RoutingKind::kCbBase;
  // Contention-counter triggers (Base / ECtN / Hybrid).
  std::int32_t contention_threshold = 6;
  std::int32_t hybrid_contention_threshold = 3;
  std::int32_t ectn_combined_threshold = 8;
  Cycle ectn_update_period = 100;
  /// Counter saturation cap; 4 bits matches the Section VI-B overhead math.
  std::int32_t counter_saturation = 15;
  // Credit-based triggers.
  double olm_credit_fraction = 0.35;    // occupancy fraction that flags a link
  double hybrid_credit_fraction = 0.25;
  std::int32_t pb_ugal_threshold = 3;   // UGAL/PB decision offset T (phits)
  // Misrouting policy (Section V / ablations).
  GlobalMisroutePolicy global_policy = GlobalMisroutePolicy::kMmL;
  bool allow_local_misroute = true;
  // Section VI-C statistical trigger: ramp misrouting probability across a
  // window of counter values below the threshold instead of a hard cutoff.
  bool statistical_trigger = false;
  std::int32_t statistical_window = 4;
};

/// Deterministic fault schedule (src/fault/). Disabled by default; when
/// disabled the engine takes zero fault branches and results are bit-exact
/// with builds that predate the overlay.
struct FaultParams {
  bool enabled = false;
  /// Selection seed for which links/routers fail; 0 derives from the run
  /// seed so `seed` sweeps also vary the fault placement.
  std::uint64_t seed = 0;
  /// Cycle at which scheduled faults take effect (relative to cycle 0, i.e.
  /// including warmup).
  Cycle onset = 0;
  /// Fraction of physical inter-router links (both directions) that fail.
  double link_fail_fraction = 0.0;
  /// Restrict link selection to a port class: "any", "local" or "global"
  /// (dragonfly only distinguishes the two classes).
  std::string link_class = "any";
  /// When > 0, failed links flap instead of dying permanently: down for
  /// `flap_down` cycles at the start of every `flap_period` window after
  /// onset. Requires 0 < flap_down < flap_period.
  Cycle flap_period = 0;
  Cycle flap_down = 0;
  /// Fraction of routers whose forward links all fail (both directions).
  double router_fail_fraction = 0.0;
  /// Fraction of physical links degraded with `degrade_latency` extra
  /// cycles from onset (selected independently of the failed set).
  double degrade_fraction = 0.0;
  std::int32_t degrade_latency = 0;
  /// Livelock guard: packets rerouted around faults for more than this many
  /// hops are dropped and counted as `undeliverable`.
  std::int32_t hop_cap = 64;
};

/// Spatial telemetry (src/telemetry/telemetry_sink.hpp). Disabled by
/// default; when disabled the engine takes zero telemetry branches and
/// results (and config hashes — the `telemetry.*` block only enters the
/// canonical params text when enabled) are bit-exact with builds that
/// predate the layer.
struct TelemetryParams {
  bool enabled = false;
  /// Cycles between spatial samples. Each sample captures per-router queue
  /// occupancy and the per-link / per-cause activity accumulated since the
  /// previous sample.
  Cycle sample_period = 100;
  /// Preallocated sample-frame capacity; sampling stops (and the dropped
  /// count is reported) once exhausted, preserving zero-alloc-after-warmup.
  /// Per-frame memory scales with routers * radix (~6 bytes per link slot),
  /// so the default stays modest — raise it together with sample_period for
  /// long captures.
  std::int32_t max_samples = 512;
};

/// Packet-lifecycle tracing (src/telemetry/packet_trace.hpp). Sampling
/// draws from the tracer's OWN RNG stream, so routing and traffic draws are
/// untouched and a traced run is bit-identical to an untraced one.
struct TraceParams {
  bool enabled = false;
  /// Sampling seed; 0 derives from the run seed.
  std::uint64_t seed = 0;
  /// Per-packet probability of being traced through its whole lifecycle.
  double sample_rate = 0.01;
  /// Preallocated event capacity; recording stops (dropped count reported)
  /// once exhausted.
  std::int64_t max_events = 1 << 20;
};

/// Congestion-notification mechanism (src/routing/notification.hpp, the
/// ARN family of arxiv 2502.00616): routers whose forward links exceed an
/// occupancy threshold broadcast a notification that becomes visible at
/// every source after a propagation delay and expires after a staleness
/// window. Inert unless enabled; `routing.kind = ARN` requires it (the
/// factory throws otherwise), and the `notify.*` block enters the
/// canonical params text — and thus config hashes — only when enabled.
struct NotifyParams {
  bool enabled = false;
  /// Occupancy fraction of a forward link's buffer that flags it congested
  /// during a notification scan (same credit-occupancy test as OLM/PB).
  double threshold = 0.5;
  /// Cycles between notification scans (0 disables scanning).
  Cycle update_period = 20;
  /// Cycles before a broadcast notification is live at the sources.
  Cycle propagation_delay = 10;
  /// Cycles a notification stays live after arrival unless refreshed;
  /// stale entries stop influencing decisions (no retraction message).
  Cycle expiry = 60;
  /// ARN variant that additionally refuses injections whose minimal route
  /// starts on a live-notified link (arxiv 2502.00597's source throttle).
  bool throttle_injection = false;
};

/// Execution-engine knobs. `threads = 1` (the default) runs the legacy
/// serial cycle loop and is bit-exact with builds that predate sharding;
/// `threads > 1` partitions routers across barrier-synced worker shards
/// (see ARCHITECTURE.md "Sharded execution"). Results are deterministic
/// per (seed, threads) pair but not bit-identical across thread counts.
struct EngineParams {
  std::int32_t threads = 1;
};

struct SimParams {
  /// Which topology the engine instantiates; `topo` (dragonfly), `fbfly`,
  /// or `torus` supplies the shape accordingly.
  TopologyKind topology = TopologyKind::kDragonfly;
  TopoParams topo;
  FbflyParams fbfly;
  TorusParams torus;
  RouterParams router;
  LinkParams link;
  RoutingParams routing;
  TrafficParams traffic;
  FaultParams fault;
  TelemetryParams telemetry;
  TraceParams trace;
  NotifyParams notify;
  EngineParams engine;
  std::int32_t packet_size_phits = 8;
  std::uint64_t seed = 1;

  [[nodiscard]] std::int32_t nodes() const {
    switch (topology) {
      case TopologyKind::kFbfly: return fbfly.nodes();
      case TopologyKind::kTorus: return torus.nodes();
      case TopologyKind::kDragonfly: break;
    }
    return topo.nodes();
  }
};

// ---------------------------------------------------------------------------
// Presets

namespace presets {

/// Paper scale (Table I): p=8 a=16 h=8, 31 forward ports, 129 groups,
/// 16512 nodes.
[[nodiscard]] SimParams paper();
/// p=4 a=8 h=4 — 1056 nodes; the default bench scale.
[[nodiscard]] SimParams medium();
/// p=3 a=6 h=3 — 342 nodes.
[[nodiscard]] SimParams small();
/// p=2 a=4 h=2 — 72 nodes; smoke-test scale.
[[nodiscard]] SimParams tiny();
/// p=10 a=48 h=44 — 2113 groups, 101424 routers, ~1.01M nodes; the
/// sharded-engine scale target (ROADMAP item 1). Only practical with
/// engine.threads > 1.
[[nodiscard]] SimParams exa();

/// Lookup by --scale name; throws std::invalid_argument on unknown names.
[[nodiscard]] SimParams by_name(const std::string& name);

/// Flattened-butterfly run on the unified engine: unit packets (load is
/// packets/node/cycle), 2 phase VCs, per-channel buffering of `buf_packets`,
/// and an auto contention threshold of max(2, c) — all injection heads
/// aligned (the unified engine's counters see every queue head, unlike the
/// old forked simulator's injection-only sampling).
[[nodiscard]] SimParams fbfly(std::int32_t k, std::int32_t n, std::int32_t c,
                              std::int32_t buf_packets = 16);
/// Torus run on the unified engine: 4 VCs (dateline x Valiant phase),
/// unit packets, uniform per-channel buffering.
[[nodiscard]] SimParams torus(std::int32_t k, std::int32_t n, std::int32_t c,
                              std::int32_t buf_packets = 16);

/// Overlay helper: permanent failure of `fraction` of the links of
/// `link_class` ("any"|"local"|"global") from cycle `onset` on `base`.
[[nodiscard]] SimParams with_link_faults(SimParams base, double fraction,
                                         const std::string& link_class = "any",
                                         Cycle onset = 0);

}  // namespace presets

}  // namespace dfsim
