// Simulation parameters: topology shape, router microarchitecture, link
// latencies, routing mechanism knobs, and traffic pattern — plus the named
// presets every bench selects with --scale (Table I of the paper at "paper"
// scale, proportionally shrunk versions below it).
#pragma once

#include <cstdint>
#include <string>

#include "traffic/spec.hpp"
#include "util/types.hpp"

namespace dfsim {

// ---------------------------------------------------------------------------
// Enums

/// Routing mechanisms compared in the paper. kCb* are the contention-counter
/// based contributions (Section IV/V); the rest are baselines.
enum class RoutingKind : std::uint8_t {
  kMin,        // oblivious minimal
  kValiant,    // oblivious Valiant (random intermediate group)
  kUgalL,      // UGAL with local (source-router credit) estimates
  kUgalG,      // UGAL with idealized global queue knowledge
  kPiggyback,  // UGAL-L + piggybacked remote link state (PB)
  kOlm,        // in-transit credit-triggered misrouting (On-the-fly OLM)
  kCbBase,     // contention counters, threshold trigger (Base)
  kCbHybrid,   // contention + credit hybrid trigger (Hybrid)
  kCbEctn,     // contention + explicit contention notification (ECtN)
};

[[nodiscard]] std::string to_string(RoutingKind kind);
[[nodiscard]] RoutingKind routing_kind_from_string(const std::string& name);

// TrafficKind / InjectionProcess / TrafficParams moved to traffic/spec.hpp:
// the workload subsystem (traffic/model.hpp) interprets them for both
// simulators; this header re-exports them via the include above.

/// Candidate set for a global misroute (Section V-A): MM+L may commit a local
/// hop to reach any global link of the group; CRG restricts candidates to the
/// current router's own global links.
enum class GlobalMisroutePolicy : std::uint8_t { kMmL, kCrg };

// ---------------------------------------------------------------------------
// Parameter structs

/// Canonical dragonfly: `a` routers per group, `p` nodes per router, `h`
/// global links per router; fully connected groups, one global link between
/// every pair of groups (g = a*h + 1 groups).
struct TopoParams {
  std::int32_t p = 4;
  std::int32_t a = 8;
  std::int32_t h = 4;

  [[nodiscard]] std::int32_t groups() const { return a * h + 1; }
  [[nodiscard]] std::int32_t routers() const { return groups() * a; }
  [[nodiscard]] std::int32_t nodes() const { return routers() * p; }
  [[nodiscard]] std::int32_t local_ports() const { return a - 1; }
  /// Inter-router ports (local + global); injection/ejection excluded.
  [[nodiscard]] std::int32_t forward_ports() const { return (a - 1) + h; }
  /// Full router radix: injection + local + global.
  [[nodiscard]] std::int32_t radix() const { return p + forward_ports(); }
};

struct RouterParams {
  std::int32_t pipeline_cycles = 5;  // router traversal latency
  std::int32_t speedup = 2;          // internal frequency speedup (allocator iterations)
  std::int32_t vcs_local = 3;        // local-port VCs (l0/l1/l2 hop classes)
  std::int32_t vcs_global = 2;       // global-port VCs (g0/g1 hop classes)
  std::int32_t vcs_injection = 1;
  std::int32_t buf_output_phits = 32;
  std::int32_t buf_local_phits = 32;    // per VC, Table I "small buffers"
  std::int32_t buf_global_phits = 256;  // per VC
  /// Injection (source) queue depth in packets; bounds memory past saturation.
  std::int32_t injection_queue_packets = 64;
};

struct LinkParams {
  std::int32_t local_latency = 10;
  std::int32_t global_latency = 100;
};

struct RoutingParams {
  RoutingKind kind = RoutingKind::kCbBase;
  // Contention-counter triggers (Base / ECtN / Hybrid).
  std::int32_t contention_threshold = 6;
  std::int32_t hybrid_contention_threshold = 3;
  std::int32_t ectn_combined_threshold = 8;
  Cycle ectn_update_period = 100;
  /// Counter saturation cap; 4 bits matches the Section VI-B overhead math.
  std::int32_t counter_saturation = 15;
  // Credit-based triggers.
  double olm_credit_fraction = 0.35;    // occupancy fraction that flags a link
  double hybrid_credit_fraction = 0.25;
  std::int32_t pb_ugal_threshold = 3;   // UGAL/PB decision offset T (phits)
  // Misrouting policy (Section V / ablations).
  GlobalMisroutePolicy global_policy = GlobalMisroutePolicy::kMmL;
  bool allow_local_misroute = true;
  // Section VI-C statistical trigger: ramp misrouting probability across a
  // window of counter values below the threshold instead of a hard cutoff.
  bool statistical_trigger = false;
  std::int32_t statistical_window = 4;
};

struct SimParams {
  TopoParams topo;
  RouterParams router;
  LinkParams link;
  RoutingParams routing;
  TrafficParams traffic;
  std::int32_t packet_size_phits = 8;
  std::uint64_t seed = 1;
};

// ---------------------------------------------------------------------------
// Presets

namespace presets {

/// Paper scale (Table I): p=8 a=16 h=8, 31 forward ports, 129 groups,
/// 16512 nodes.
[[nodiscard]] SimParams paper();
/// p=4 a=8 h=4 — 1056 nodes; the default bench scale.
[[nodiscard]] SimParams medium();
/// p=3 a=6 h=3 — 342 nodes.
[[nodiscard]] SimParams small();
/// p=2 a=4 h=2 — 72 nodes; smoke-test scale.
[[nodiscard]] SimParams tiny();

/// Lookup by --scale name; throws std::invalid_argument on unknown names.
[[nodiscard]] SimParams by_name(const std::string& name);

}  // namespace presets

}  // namespace dfsim
