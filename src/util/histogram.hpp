// Log2-bucketed latency histogram: fixed storage (no heap allocation), O(1)
// insert, and approximate quantiles by linear interpolation inside the
// matching power-of-two bucket. Bucket b holds values v with
// bit_width(v) == b, i.e. [2^(b-1), 2^b); bucket 0 holds v <= 0. Mean-only
// latency hides exactly the tail effects skewed workloads create — p50/p95/
// p99 from this histogram are what the experiment drivers report.
//
// Values at or beyond the top bucket are NOT silently folded into it (that
// would make p99 under-report whenever the tail leaves the tracked range):
// they are counted separately in overflow(), still contribute to total(),
// and quantiles landing in the overflow region report the range's upper
// boundary — a visibly saturated "at least this much" answer rather than an
// interpolated underestimate.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace dfsim {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t value) {
    ++total_;
    const int b = value <= 0 ? 0
                             : static_cast<int>(std::bit_width(
                                   static_cast<std::uint64_t>(value)));
    if (b >= kBuckets - 1) {  // at or beyond the top bucket: overflow
      ++overflow_;
      return;
    }
    ++buckets_[static_cast<std::size_t>(b)];
  }

  [[nodiscard]] std::int64_t total() const { return total_; }
  /// Samples at or beyond the tracked range (value >= 2^(kBuckets-2)).
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  /// Upper boundary of the tracked range; quantiles report this value when
  /// they land among the overflow samples.
  [[nodiscard]] static double overflow_boundary() {
    return std::ldexp(1.0, kBuckets - 2);
  }

  /// Value at quantile q in [0, 1]; 0 when empty. Exact to within the
  /// bucket's linear interpolation (a factor-of-2 band); saturates at
  /// overflow_boundary() when the rank falls into the overflow region.
  [[nodiscard]] double quantile(double q) const {
    if (total_ <= 0) return 0.0;
    double rank = q * static_cast<double>(total_);
    if (rank < 1.0) rank = 1.0;
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::int64_t n = buckets_[static_cast<std::size_t>(b)];
      if (n <= 0) continue;
      if (static_cast<double>(seen + n) >= rank) {
        const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
        const double hi = std::ldexp(1.0, b);
        const double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(n);
        return lo + (hi - lo) * frac;
      }
      seen += n;
    }
    return overflow_boundary();
  }

  void merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<std::size_t>(b)] +=
          other.buckets_[static_cast<std::size_t>(b)];
    }
    total_ += other.total_;
    overflow_ += other.overflow_;
  }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t total_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace dfsim
