// Fundamental index/time types shared by every dfsim layer. Kept in one tiny
// header so hot structs can include it without pulling in configuration.
#pragma once

#include <cstdint>

namespace dfsim {

/// Simulation time in router cycles. Signed: transient figures index cycles
/// relative to a traffic switch (negative = before the switch).
using Cycle = std::int64_t;

using NodeId = std::int32_t;
using RouterId = std::int32_t;
using GroupId = std::int32_t;
using PortIndex = std::int32_t;
using VcIndex = std::int32_t;

constexpr PortIndex kInvalidPort = -1;
constexpr std::int32_t kInvalidPacket = -1;

}  // namespace dfsim
