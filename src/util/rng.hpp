// Small, fast, deterministic RNG (xoshiro256** seeded via splitmix64).
// Every simulator instance owns its own Rng so sweep points are independent
// and reproducible regardless of thread scheduling.
#pragma once

#include <cmath>
#include <cstdint>

namespace dfsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
    for (auto& word : state_) {
      std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses the multiply-shift trick (Lemire);
  /// bias is negligible for the bounds a simulator uses.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability) { return next_double() < probability; }

  /// Precomputed acceptance bound for next_bool(probability), for hot loops
  /// that test the same probability millions of times (the traffic model's
  /// per-node injection draws). next_bool draws x = next() >> 11 and tests
  /// x * 2^-53 < p; both the 53-bit-to-double conversion and the
  /// power-of-two scaling are exact, so that is the real-number comparison
  /// x < p * 2^53 — an integer test against ceil(p * 2^53). Outcomes are
  /// bit-identical to next_bool for every probability, from the same single
  /// draw.
  [[nodiscard]] static std::uint64_t bool_threshold(double probability) {
    if (probability <= 0.0) return 0;
    constexpr std::uint64_t kOne = std::uint64_t{1} << 53;
    if (probability >= 1.0) return kOne;
    const auto scaled =
        static_cast<std::uint64_t>(std::ceil(probability * 0x1.0p53));
    return scaled < kOne ? scaled : kOne;
  }
  bool next_bool_below(std::uint64_t threshold) {
    return (next() >> 11) < threshold;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace dfsim
