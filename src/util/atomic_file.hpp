// Crash-safe whole-file writes for result artifacts.
#pragma once

#include <string>

namespace dfsim {

/// Writes `text` to `path` atomically: the content goes to a sibling
/// temporary file (`path` + ".tmp") which is renamed over `path` only after
/// a successful flush and close, so an interrupted or killed writer never
/// leaves a truncated or partially written file at `path`. Throws
/// std::runtime_error on any I/O failure (the temporary is removed).
void write_file_atomic(const std::string& path, const std::string& text);

}  // namespace dfsim
