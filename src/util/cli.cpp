#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace dfsim {

CliOptions::CliOptions(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      Option opt;
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        opt.key = arg.substr(2);
      } else {
        opt.key = arg.substr(2, eq - 2);
        opt.value = arg.substr(eq + 1);
        opt.has_value = true;
      }
      options_.push_back(std::move(opt));
    } else {
      positional_.push_back(arg);
    }
  }
}

const CliOptions::Option* CliOptions::find(const std::string& key) const {
  // Last occurrence wins, so scripted callers can append overrides.
  const Option* found = nullptr;
  for (const Option& opt : options_) {
    if (opt.key == key) found = &opt;
  }
  return found;
}

bool CliOptions::has(const std::string& key) const {
  return find(key) != nullptr;
}

std::string CliOptions::get(const std::string& key) const {
  const Option* opt = find(key);
  return opt != nullptr ? opt->value : std::string();
}

std::string CliOptions::get(const std::string& key,
                            const std::string& fallback) const {
  const Option* opt = find(key);
  return (opt != nullptr && opt->has_value) ? opt->value : fallback;
}

std::int64_t CliOptions::parse_int(const std::string& text,
                                   std::int64_t fallback) {
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return static_cast<std::int64_t>(value);
}

double CliOptions::parse_double(const std::string& text, double fallback) {
  if (text.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return value;
}

std::int64_t CliOptions::get_int(const std::string& key,
                                 std::int64_t fallback) const {
  const Option* opt = find(key);
  if (opt == nullptr || !opt->has_value) return fallback;
  const std::int64_t parsed = parse_int(opt->value, fallback);
  if (parsed == fallback && CliOptions::parse_int(opt->value, fallback + 1) !=
                                parsed) {  // did not actually parse
    std::cerr << "warning: --" << key << "=" << opt->value
              << " is not an integer; using " << fallback << "\n";
  }
  return parsed;
}

double CliOptions::get_double(const std::string& key, double fallback) const {
  const Option* opt = find(key);
  if (opt == nullptr || !opt->has_value) return fallback;
  return parse_double(opt->value, fallback);
}

std::string CliOptions::env(const std::string& name,
                            const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  return value != nullptr ? std::string(value) : fallback;
}

std::int64_t CliOptions::env_int(const std::string& name,
                                 std::int64_t fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr) return fallback;
  return parse_int(value, fallback);
}

}  // namespace dfsim
