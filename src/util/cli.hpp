// Minimal `--key=value` / `--flag` command-line parser plus environment
// helpers. All benches share it; no external dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfsim {

class CliOptions {
 public:
  CliOptions(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of `--key=value`; empty string when absent or valueless.
  [[nodiscard]] std::string get(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;

  /// Numeric lookups fall back (and warn once on stderr) when the value does
  /// not parse, instead of throwing out of `std::stol`/`std::stod`.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Environment variable lookup with fallback.
  [[nodiscard]] static std::string env(const std::string& name,
                                       const std::string& fallback);
  /// Integer environment lookup that tolerates unset or garbage values.
  [[nodiscard]] static std::int64_t env_int(const std::string& name,
                                            std::int64_t fallback);

  /// Tolerant parses used by both CLI and env paths. Return the fallback on
  /// empty/garbage input rather than throwing.
  [[nodiscard]] static std::int64_t parse_int(const std::string& text,
                                              std::int64_t fallback);
  [[nodiscard]] static double parse_double(const std::string& text,
                                           double fallback);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  struct Option {
    std::string key;
    std::string value;
    bool has_value = false;
  };
  [[nodiscard]] const Option* find(const std::string& key) const;

  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace dfsim
