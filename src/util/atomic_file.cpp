#include "util/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace dfsim {

void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot write " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("short write to " + tmp);
    }
  }
  // POSIX rename within one directory is atomic: readers observe either the
  // old file or the complete new one, never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace dfsim
