// Column-oriented result table with pretty and CSV writers. Cells are stored
// preformatted so figure benches control precision per metric.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dfsim {

class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  /// Starts a new (initially empty) row; `set` fills cells of the row most
  /// recently begun.
  void begin_row();

  void set(const std::string& column, const std::string& value);
  void set(const std::string& column, const char* value);
  void set(const std::string& column, double value, int precision);

  [[nodiscard]] std::size_t rows() const { return cells_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t column) const {
    return cells_[row][column];
  }

  void write_pretty(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::size_t column_index(const std::string& column) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace dfsim
