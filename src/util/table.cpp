#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dfsim {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::begin_row() {
  cells_.emplace_back(columns_.size());
}

std::size_t ResultTable::column_index(const std::string& column) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  throw std::out_of_range("ResultTable: unknown column '" + column + "'");
}

void ResultTable::set(const std::string& column, const std::string& value) {
  if (cells_.empty()) begin_row();
  cells_.back()[column_index(column)] = value;
}

void ResultTable::set(const std::string& column, const char* value) {
  set(column, std::string(value));
}

void ResultTable::set(const std::string& column, double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  set(column, std::string(buffer));
}

void ResultTable::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : cells_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) os << "  ";
      const std::string& value = c < row.size() ? row[c] : std::string();
      // First column left-aligned (labels), the rest right-aligned (numbers).
      if (c == 0) {
        os << value << std::string(widths[c] - value.size(), ' ');
      } else {
        os << std::string(widths[c] - value.size(), ' ') << value;
      }
    }
    os << "\n";
  };
  write_row(columns_);
  for (const auto& row : cells_) write_row(row);
}

void ResultTable::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) os << ",";
      os << (c < row.size() ? row[c] : std::string());
    }
    os << "\n";
  };
  write_row(columns_);
  for (const auto& row : cells_) write_row(row);
}

}  // namespace dfsim
