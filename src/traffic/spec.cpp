#include "traffic/spec.hpp"

#include <cctype>
#include <stdexcept>

namespace dfsim {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

std::string to_string(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kUniform: return "UN";
    case TrafficKind::kAdversarial: return "ADV";
    case TrafficKind::kMixed: return "MIXED";
    case TrafficKind::kShift: return "SHIFT";
    case TrafficKind::kBitComplement: return "BITCOMP";
    case TrafficKind::kTranspose: return "TRANSPOSE";
    case TrafficKind::kTornado: return "TORNADO";
    case TrafficKind::kGroupLocal: return "GROUPLOCAL";
    case TrafficKind::kHotspot: return "HOTSPOT";
    case TrafficKind::kTrace: return "TRACE";
  }
  return "?";
}

std::string to_string(InjectionProcess process) {
  switch (process) {
    case InjectionProcess::kBernoulli: return "bernoulli";
    case InjectionProcess::kBursty: return "bursty";
  }
  return "?";
}

TrafficKind traffic_kind_from_string(const std::string& name) {
  const std::string n = lower(name);
  if (n == "un" || n == "uniform") return TrafficKind::kUniform;
  if (n == "adv" || n == "adversarial") return TrafficKind::kAdversarial;
  if (n == "mixed") return TrafficKind::kMixed;
  if (n == "shift") return TrafficKind::kShift;
  if (n == "bitcomp" || n == "bit-complement" || n == "complement") {
    return TrafficKind::kBitComplement;
  }
  if (n == "transpose") return TrafficKind::kTranspose;
  if (n == "tornado") return TrafficKind::kTornado;
  if (n == "grouplocal" || n == "group-local") return TrafficKind::kGroupLocal;
  if (n == "hotspot") return TrafficKind::kHotspot;
  if (n == "trace") return TrafficKind::kTrace;
  throw std::invalid_argument("unknown traffic pattern: " + name);
}

InjectionProcess injection_process_from_string(const std::string& name) {
  const std::string n = lower(name);
  if (n == "bernoulli") return InjectionProcess::kBernoulli;
  if (n == "bursty" || n == "onoff" || n == "on-off") {
    return InjectionProcess::kBursty;
  }
  throw std::invalid_argument("unknown injection process: " + name);
}

const std::vector<std::string>& traffic_kind_names() {
  static const std::vector<std::string> names{
      "uniform",   "adversarial", "mixed",      "shift",   "bitcomp",
      "transpose", "tornado",     "grouplocal", "hotspot",
  };
  return names;
}

}  // namespace dfsim
