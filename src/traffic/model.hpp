// Pluggable traffic/workload model consumed by both simulators.
//
// Design
//  - Everything a pattern needs is pre-resolved per source at setup
//    (permutation tables, adversarial group bases, the hot-node set), so the
//    per-packet hot path is a table lookup plus at most two RNG draws, with
//    zero heap allocation after construction.
//  - The model owns its own RNG, decoupled from the simulator's routing RNG.
//    That makes a recorded trace replay *bit-identical*: replaying the same
//    injection stream leaves the routing RNG consuming the exact same draw
//    sequence as the recording run.
//  - Pull API: the simulator calls begin_cycle(now) once per cycle and then
//    next() until it returns false; each call returns one injection attempt
//    (at most one per node per cycle). Trace replay and synthetic patterns
//    share this interface, so the engines carry no pattern enums at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "traffic/spec.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim {

/// Topology facts a traffic model needs: terminal count plus a partition of
/// terminals into `groups` contiguous blocks of `nodes_per_group` (dragonfly
/// groups; fbfly routers). `adv_group` maps (source group, offset) to the
/// adversarial target group; when unset, the ring (g + offset) mod groups is
/// used. Consulted at setup only — never on the hot path.
struct TrafficTopologyInfo {
  std::int32_t nodes = 0;
  std::int32_t groups = 1;
  std::int32_t nodes_per_group = 0;
  std::function<std::int32_t(std::int32_t group, std::int32_t offset)>
      adv_group;
};

struct Injection {
  NodeId src = 0;
  NodeId dst = 0;
};

class TrafficModel {
 public:
  /// `packet_size_phits` converts spec.load (phits/node/cycle) into the
  /// per-node packet injection probability. Throws std::invalid_argument on
  /// inconsistent topology info and std::runtime_error on unreadable traces.
  TrafficModel(const TrafficParams& spec, const TrafficTopologyInfo& topo,
               std::int32_t packet_size_phits, std::uint64_t seed);

  /// Swaps the workload mid-run (transient experiments). Rebuilds the
  /// pattern tables (may allocate); the RNG stream continues.
  void reset_spec(const TrafficParams& spec);

  /// Restricts this instance to source nodes in [lo, hi): next() scans only
  /// that range and trace replay serves only records whose src falls inside
  /// it. Destination draws still span all nodes. Sharded simulations give
  /// each shard its own model restricted to the shard's node range; the
  /// default (full range) leaves every draw sequence untouched.
  void restrict_nodes(NodeId lo, NodeId hi);

  // --- hot path: begin_cycle once per cycle, then next() until false.
  void begin_cycle(Cycle now);
  bool next(Injection& out);

  // --- trace recording: every subsequent injection attempt is appended to
  // an in-memory buffer (cycle made relative to the first recorded cycle).
  void start_recording(std::size_t reserve_records);
  [[nodiscard]] bool recording() const { return recording_; }
  [[nodiscard]] const std::vector<TraceRecord>& recorded() const {
    return recorded_;
  }
  void write_recorded(const std::string& path) const;
  /// Record-buffer growths past the reserve (zero-alloc accounting).
  [[nodiscard]] std::int64_t record_growth_events() const {
    return record_growth_;
  }

  [[nodiscard]] const TrafficParams& spec() const { return spec_; }
  [[nodiscard]] const TrafficTopologyInfo& topology() const { return topo_; }

  /// Draws (or looks up) a destination for `src`. Exposed for tests:
  /// deterministic for the permutation patterns, a fresh draw otherwise.
  [[nodiscard]] NodeId draw_dest(NodeId src);
  /// Advances the injection process for node `src` by one cycle and reports
  /// whether it injects. Exposed for the rate tests.
  [[nodiscard]] bool draw_injects(NodeId src);

 private:
  void build_tables();
  [[nodiscard]] NodeId uniform_excluding(NodeId src);
  /// draw_injects against an explicit RNG (next() loops on a local copy).
  [[nodiscard]] bool injects(NodeId src, Rng& rng);

  TrafficParams spec_;
  TrafficTopologyInfo topo_;
  std::int32_t psize_ = 1;
  Rng rng_;

  // Pre-resolved pattern state.
  double inject_prob_ = 0.0;              // packets/node/cycle
  std::vector<std::int32_t> perm_;        // permutation patterns: dst per src
  std::vector<std::int32_t> adv_base_;    // per group: target-group first node
  std::vector<std::int32_t> hot_nodes_;   // hotspot target set
  // Bursty on/off process (alpha: off->on, beta: on->off per cycle).
  double p_on_ = 0.0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  std::vector<std::uint8_t> on_;
  // Integer acceptance bounds (Rng::bool_threshold) for the per-node
  // injection draws — the O(nodes)-per-cycle hot loop. Outcomes are
  // bit-identical to next_bool on the corresponding probability.
  std::uint64_t inject_threshold_ = 0;
  std::uint64_t p_on_threshold_ = 0;
  std::uint64_t alpha_threshold_ = 0;
  std::uint64_t beta_threshold_ = 0;

  // Source-node range (restrict_nodes); defaults to every node.
  NodeId node_lo_ = 0;
  NodeId node_hi_ = 0;

  // Per-cycle iteration state.
  Cycle now_ = 0;
  NodeId node_cursor_ = 0;

  // Trace replay.
  std::vector<TraceRecord> replay_;
  std::size_t replay_cursor_ = 0;
  Cycle replay_base_ = -1;

  // Trace recording.
  bool recording_ = false;
  Cycle record_base_ = -1;
  std::vector<TraceRecord> recorded_;
  std::int64_t record_growth_ = 0;
};

}  // namespace dfsim
