// Binary injection traces: flat (cycle, src, dst) streams recorded from any
// run and replayed deterministically by TrafficModel (TrafficKind::kTrace).
//
// File format (native little-endian):
//   8 bytes   magic "DFTRACE1"
//   u64       record count
//   count x { i64 cycle, i32 src, i32 dst }   (16 bytes per record)
// Cycles are relative to the start of recording; records are sorted by cycle
// (ties ordered by src) because that is the order injection emits them in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfsim {

struct TraceRecord {
  std::int64_t cycle = 0;
  std::int32_t src = 0;
  std::int32_t dst = 0;
};
static_assert(sizeof(TraceRecord) == 16, "trace records are written raw");

void write_trace(const std::string& path,
                 const std::vector<TraceRecord>& records);
/// Throws std::runtime_error on missing/garbled files.
[[nodiscard]] std::vector<TraceRecord> read_trace(const std::string& path);
/// Header-only validation (magic + record count vs file size); returns the
/// record count. Same errors as read_trace without reading the records —
/// bench drivers call this up front so a bad --trace fails fast instead of
/// throwing from a sweep worker thread.
[[nodiscard]] std::uint64_t validate_trace(const std::string& path);

}  // namespace dfsim
