#include "traffic/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dfsim {

namespace {

// Keeps the model's draw sequence distinct from the simulator's routing RNG,
// which splitmix-expands the raw seed.
constexpr std::uint64_t kTrafficSeedSalt = 0x7452414646494353ull;

}  // namespace

TrafficModel::TrafficModel(const TrafficParams& spec,
                           const TrafficTopologyInfo& topo,
                           std::int32_t packet_size_phits, std::uint64_t seed)
    : spec_(spec),
      topo_(topo),
      psize_(std::max(1, packet_size_phits)),
      rng_(seed ^ kTrafficSeedSalt) {
  if (topo_.nodes < 1 || topo_.groups < 1 ||
      topo_.nodes_per_group * topo_.groups != topo_.nodes) {
    throw std::invalid_argument(
        "traffic: topology info must partition nodes into groups");
  }
  node_hi_ = topo_.nodes;
  build_tables();
}

void TrafficModel::restrict_nodes(NodeId lo, NodeId hi) {
  if (lo < 0 || hi > topo_.nodes || lo >= hi) {
    throw std::invalid_argument("traffic: bad node range restriction");
  }
  node_lo_ = lo;
  node_hi_ = hi;
}

void TrafficModel::reset_spec(const TrafficParams& spec) {
  spec_ = spec;
  build_tables();
}

void TrafficModel::build_tables() {
  const std::int32_t nodes = topo_.nodes;
  const std::int32_t groups = topo_.groups;
  const std::int32_t npg = topo_.nodes_per_group;
  inject_prob_ =
      std::clamp(spec_.load / static_cast<double>(psize_), 0.0, 1.0);
  inject_threshold_ = Rng::bool_threshold(inject_prob_);

  // Adversarial group bases: the offset is normalized ONCE here, not per
  // injected packet, and topologies with structure beyond a ring (fbfly
  // rows) supply their own mapping.
  if (spec_.kind == TrafficKind::kAdversarial ||
      spec_.kind == TrafficKind::kMixed) {
    adv_base_.assign(static_cast<std::size_t>(groups), 0);
    for (std::int32_t g = 0; g < groups; ++g) {
      std::int32_t gd;
      if (topo_.adv_group) {
        gd = topo_.adv_group(g, spec_.adv_offset);
      } else {
        gd = (g + ((spec_.adv_offset % groups) + groups) % groups) % groups;
      }
      if (gd < 0 || gd >= groups) {
        throw std::invalid_argument("traffic: adv_group out of range");
      }
      adv_base_[static_cast<std::size_t>(g)] = gd * npg;
    }
  }

  // Permutation patterns: one table build, hot path is a single load.
  const bool is_perm = spec_.kind == TrafficKind::kShift ||
                       spec_.kind == TrafficKind::kBitComplement ||
                       spec_.kind == TrafficKind::kTranspose ||
                       spec_.kind == TrafficKind::kTornado ||
                       spec_.kind == TrafficKind::kGroupLocal;
  if (is_perm) {
    perm_.assign(static_cast<std::size_t>(nodes), 0);
    switch (spec_.kind) {
      case TrafficKind::kShift: {
        std::int32_t s = ((spec_.shift_offset % nodes) + nodes) % nodes;
        if (s == 0) s = 1 % nodes;  // identity would be pure self-traffic
        for (std::int32_t n = 0; n < nodes; ++n) {
          perm_[static_cast<std::size_t>(n)] = (n + s) % nodes;
        }
        break;
      }
      case TrafficKind::kBitComplement:
        for (std::int32_t n = 0; n < nodes; ++n) {
          perm_[static_cast<std::size_t>(n)] = nodes - 1 - n;
        }
        break;
      case TrafficKind::kTranspose: {
        const auto w = static_cast<std::int32_t>(
            std::sqrt(static_cast<double>(nodes)));
        for (std::int32_t n = 0; n < nodes; ++n) {
          perm_[static_cast<std::size_t>(n)] =
              n < w * w ? (n % w) * w + n / w : n;
        }
        break;
      }
      case TrafficKind::kTornado: {
        const std::int32_t t = std::max(1, (groups - 1) / 2);
        for (std::int32_t n = 0; n < nodes; ++n) {
          const std::int32_t g = n / npg;
          perm_[static_cast<std::size_t>(n)] =
              groups > 1 ? ((g + t) % groups) * npg + n % npg
                         : (n + std::max(1, nodes / 2)) % nodes;
        }
        break;
      }
      case TrafficKind::kGroupLocal:
        for (std::int32_t n = 0; n < nodes; ++n) {
          const std::int32_t g = n / npg;
          perm_[static_cast<std::size_t>(n)] = g * npg + (n % npg + 1) % npg;
        }
        break;
      default:
        break;
    }
  }

  if (spec_.kind == TrafficKind::kHotspot) {
    const std::int32_t count =
        std::clamp(spec_.hotspot_count, 1, nodes);
    hot_nodes_.assign(static_cast<std::size_t>(count), 0);
    // Spread the hot set evenly so it spans groups (worst case for remote
    // congestion detection).
    for (std::int32_t i = 0; i < count; ++i) {
      hot_nodes_[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>((static_cast<std::int64_t>(i) * nodes) /
                                    count);
    }
  }

  // Bursty on/off process: beta = 1/burst_len, on-state rate
  // p_on = burst_factor * load, and alpha chosen so the stationary ON share
  // (alpha / (alpha + beta)) times p_on equals the offered load exactly.
  if (spec_.injection == InjectionProcess::kBursty) {
    p_on_ = std::clamp(spec_.burst_factor * inject_prob_, inject_prob_, 1.0);
    const double duty = p_on_ > 0.0 ? inject_prob_ / p_on_ : 1.0;
    beta_ = 1.0 / std::max(1.0, spec_.burst_len);
    if (duty >= 1.0 - 1e-12) {
      alpha_ = 1.0;
      beta_ = 0.0;
    } else {
      alpha_ = beta_ * duty / (1.0 - duty);
    }
    p_on_threshold_ = Rng::bool_threshold(p_on_);
    alpha_threshold_ = Rng::bool_threshold(alpha_);
    beta_threshold_ = Rng::bool_threshold(beta_);
    on_.assign(static_cast<std::size_t>(nodes), 0);
    // Start from the stationary distribution so measurement windows are
    // unbiased from the first cycle.
    for (auto& st : on_) st = rng_.next_bool(duty) ? 1 : 0;
  }

  if (spec_.kind == TrafficKind::kTrace) {
    replay_ = read_trace(spec_.trace_path);
    replay_cursor_ = 0;
    replay_base_ = -1;
  }
}

void TrafficModel::begin_cycle(Cycle now) {
  now_ = now;
  node_cursor_ = node_lo_;
  if (spec_.kind == TrafficKind::kTrace && replay_base_ < 0) {
    replay_base_ = now;
  }
  if (recording_ && record_base_ < 0) record_base_ = now;
}

bool TrafficModel::injects(NodeId src, Rng& rng) {
  // Integer-threshold draws: bit-identical to next_bool on inject_prob_ /
  // alpha_ / beta_ / p_on_ (see Rng::bool_threshold), one int compare per
  // draw — this runs once per node per cycle, the model's only O(nodes)
  // loop. `rng` is passed in so next() can batch the loop on a local copy
  // whose state stays in registers.
  if (spec_.injection == InjectionProcess::kBernoulli) {
    return rng.next_bool_below(inject_threshold_);
  }
  std::uint8_t& st = on_[static_cast<std::size_t>(src)];
  if (st != 0) {
    if (beta_ > 0.0 && rng.next_bool_below(beta_threshold_)) st = 0;
  } else if (rng.next_bool_below(alpha_threshold_)) {
    st = 1;
  }
  return st != 0 && rng.next_bool_below(p_on_threshold_);
}

bool TrafficModel::draw_injects(NodeId src) { return injects(src, rng_); }

NodeId TrafficModel::uniform_excluding(NodeId src) {
  const std::int32_t nodes = topo_.nodes;
  if (nodes <= 1) return src;
  auto dest = static_cast<NodeId>(
      rng_.next_below(static_cast<std::uint64_t>(nodes - 1)));
  if (dest >= src) ++dest;
  return dest;
}

NodeId TrafficModel::draw_dest(NodeId src) {
  switch (spec_.kind) {
    case TrafficKind::kUniform:
      return uniform_excluding(src);
    case TrafficKind::kMixed:
      if (rng_.next_bool(spec_.mixed_uniform_fraction)) {
        return uniform_excluding(src);
      }
      [[fallthrough]];
    case TrafficKind::kAdversarial: {
      const std::int32_t npg = topo_.nodes_per_group;
      return adv_base_[static_cast<std::size_t>(src / npg)] +
             static_cast<NodeId>(
                 rng_.next_below(static_cast<std::uint64_t>(npg)));
    }
    case TrafficKind::kShift:
    case TrafficKind::kBitComplement:
    case TrafficKind::kTranspose:
    case TrafficKind::kTornado:
    case TrafficKind::kGroupLocal:
      return perm_[static_cast<std::size_t>(src)];
    case TrafficKind::kHotspot: {
      if (rng_.next_bool(spec_.hotspot_fraction)) {
        const NodeId hot = hot_nodes_[static_cast<std::size_t>(
            rng_.next_below(hot_nodes_.size()))];
        if (hot != src) return hot;
      }
      return uniform_excluding(src);
    }
    case TrafficKind::kTrace:
      return src;  // replay never draws; next() serves records directly
  }
  return src;
}

bool TrafficModel::next(Injection& out) {
  if (spec_.kind == TrafficKind::kTrace) {
    const Cycle rel = now_ - replay_base_;
    while (replay_cursor_ < replay_.size() &&
           (replay_[replay_cursor_].cycle < rel ||
            (replay_[replay_cursor_].cycle == rel &&
             (replay_[replay_cursor_].src < node_lo_ ||
              replay_[replay_cursor_].src >= node_hi_)))) {
      // Records from before replay started (or a re-base), plus — under a
      // restrict_nodes range — due records owned by another shard's model.
      ++replay_cursor_;
    }
    if (replay_cursor_ < replay_.size() &&
        replay_[replay_cursor_].cycle == rel) {
      const TraceRecord& rec = replay_[replay_cursor_++];
      out.src = rec.src;
      out.dst = rec.dst;
    } else {
      return false;
    }
  } else {
    // Per-node scan on local copies: the RNG state and cursor live in
    // registers across the (mostly non-injecting) nodes instead of
    // round-tripping through members every iteration — same draws in the
    // same order, ~5x faster at scale. State is written back before
    // draw_dest so the destination draw continues the same stream.
    const std::int32_t nodes = node_hi_;
    std::int32_t cursor = node_cursor_;
    Rng rng = rng_;
    NodeId hit = -1;
    while (cursor < nodes) {
      const NodeId n = cursor++;
      if (injects(n, rng)) {
        hit = n;
        break;
      }
    }
    rng_ = rng;
    node_cursor_ = cursor;
    if (hit < 0) return false;
    out.src = hit;
    out.dst = draw_dest(hit);
  }
  if (recording_) {
    const bool grew = recorded_.size() == recorded_.capacity();
    // dfsim-check: allow(CHK-ALLOC): growth is counted in record_growth_
    recorded_.push_back(TraceRecord{now_ - record_base_, out.src, out.dst});
    if (grew) ++record_growth_;
  }
  return true;
}

void TrafficModel::start_recording(std::size_t reserve_records) {
  recording_ = true;
  record_base_ = -1;
  recorded_.clear();
  recorded_.reserve(reserve_records);
}

void TrafficModel::write_recorded(const std::string& path) const {
  write_trace(path, recorded_);
}

}  // namespace dfsim
