// Traffic workload specification shared by both simulators: spatial pattern
// kinds, injection-process kinds, and the TrafficParams knob block that
// sim/config embeds, config_io overlays, and bench/common parses from the
// command line. The runtime interpreter of this spec (pre-resolved tables,
// the per-cycle pull API) lives in traffic/model.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dfsim {

/// Spatial destination patterns. The permutation patterns (kShift through
/// kGroupLocal) are deterministic bijections over terminals; the rest draw
/// destinations per packet.
enum class TrafficKind : std::uint8_t {
  kUniform,        // UN: uniform random destinations (excluding self)
  kAdversarial,    // ADV+o: every node in group G sends into group G+o
  kMixed,          // blend of UN and ADV+o
  kShift,          // dst = (src + shift_offset) mod N
  kBitComplement,  // dst = N-1-src (the bit complement when N is 2^k)
  kTranspose,      // transpose of the largest W x W square, W = floor(sqrt N)
  kTornado,        // group-level tornado: group g sends to g + (G-1)/2
  kGroupLocal,     // intra-group neighbor permutation (no global traffic)
  kHotspot,        // hotspot_fraction of packets target hotspot_count nodes
  kTrace,          // deterministic replay of a recorded (cycle,src,dst) stream
};

/// Injection (temporal) process, layered under any spatial pattern.
enum class InjectionProcess : std::uint8_t {
  kBernoulli,  // independent per-node per-cycle coin at the offered load
  kBursty,     // two-state on/off Markov process, same long-run rate
};

[[nodiscard]] std::string to_string(TrafficKind kind);
[[nodiscard]] std::string to_string(InjectionProcess process);
/// Parses canonical and CLI/INI spellings ("UN"/"uniform", "bitcomp", ...);
/// throws std::invalid_argument on unknown names.
[[nodiscard]] TrafficKind traffic_kind_from_string(const std::string& name);
[[nodiscard]] InjectionProcess injection_process_from_string(
    const std::string& name);
/// Canonical CLI spellings of every self-contained pattern (kTrace excluded:
/// it needs a trace_path). Smoke jobs iterate this list.
[[nodiscard]] const std::vector<std::string>& traffic_kind_names();

struct TrafficParams {
  TrafficKind kind = TrafficKind::kUniform;
  double load = 0.5;  // offered phits/node/cycle
  // Spatial-pattern knobs.
  std::int32_t adv_offset = 1;          // ADV+o group offset
  double mixed_uniform_fraction = 0.5;  // kMixed: share of UN packets
  std::int32_t shift_offset = 1;        // kShift node offset
  std::int32_t hotspot_count = 4;       // kHotspot: size of the hot set
  double hotspot_fraction = 0.5;        // kHotspot: share aimed at the hot set
  // Injection process.
  InjectionProcess injection = InjectionProcess::kBernoulli;
  double burst_factor = 4.0;  // kBursty: on-state rate = factor * load
  double burst_len = 50.0;    // kBursty: mean on-state duration (cycles)
  // kTrace: path of a trace written by TrafficModel recording.
  std::string trace_path;
  /// Fraction of traffic pinned to the minimal path (in-order delivery,
  /// Section VI-C remedy (a)).
  double inorder_fraction = 0.0;
};

}  // namespace dfsim
