#include "traffic/trace.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace dfsim {

namespace {

constexpr char kMagic[8] = {'D', 'F', 'T', 'R', 'A', 'C', 'E', '1'};

}  // namespace

void write_trace(const std::string& path,
                 const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = records.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (count > 0) {
    out.write(reinterpret_cast<const char*>(records.data()),
              static_cast<std::streamsize>(count * sizeof(TraceRecord)));
  }
  if (!out) throw std::runtime_error("trace: write failed: " + path);
}

namespace {

// Checks magic and count-vs-file-size, leaving `in` positioned at the first
// record. A corrupt header raises the documented runtime_error instead of
// length_error/bad_alloc from a garbage-sized vector.
std::uint64_t read_and_check_header(std::ifstream& in,
                                    const std::string& path) {
  if (!in) throw std::runtime_error("trace: cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace: bad magic in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("trace: truncated header in " + path);
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos data_end = in.tellg();
  in.seekg(data_begin);
  if (count > (std::numeric_limits<std::uint64_t>::max)() /
                  sizeof(TraceRecord) ||
      data_begin < 0 || data_end < data_begin ||
      static_cast<std::uint64_t>(data_end - data_begin) !=
          count * sizeof(TraceRecord)) {
    throw std::runtime_error("trace: record count does not match file size: " +
                             path);
  }
  return count;
}

}  // namespace

std::uint64_t validate_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return read_and_check_header(in, path);
}

std::vector<TraceRecord> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  const std::uint64_t count = read_and_check_header(in, path);
  std::vector<TraceRecord> records(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(records.data()),
            static_cast<std::streamsize>(count * sizeof(TraceRecord)));
    if (!in) throw std::runtime_error("trace: truncated records in " + path);
  }
  return records;
}

}  // namespace dfsim
