// Topology factory: instantiates the Topology plugin SimParams selects.
#pragma once

#include <memory>

#include "sim/config.hpp"
#include "topo/topology.hpp"

namespace dfsim {

/// Builds the topology named by `params.topology` from the matching shape
/// struct. Throws std::invalid_argument on invalid shapes.
[[nodiscard]] std::unique_ptr<Topology> make_topology(const SimParams& params);

}  // namespace dfsim
