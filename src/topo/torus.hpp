// k-ary n-cube (torus) Topology plugin for the unified engine.
//
// Routers are points of a k^n grid with wrap-around rings per dimension and
// c terminals per router; each dimension contributes a plus port (2d) and a
// minus port (2d+1). Minimal routing is Dimension-Order taking the shorter
// ring direction (ties broken toward plus, which is what makes tornado
// traffic at offset k/2 the classic MIN-collapse adversary); nonminimal
// routing is Valiant through a random intermediate router.
//
// Deadlock avoidance uses dateline VCs doubled per Valiant phase: within a
// phase a packet uses VC 0 of the pair until it traverses the wrap link of
// the current dimension and VC 1 after, and the destination leg uses the
// second pair. vc_class returns (phase0 ? 0 : 2) + crossed, so configure
// vcs_local >= 4. The per-packet vc_state byte packs
// (current dimension) * 2 + crossed-dateline-in-that-dimension.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "topo/topology.hpp"
#include "util/types.hpp"

namespace dfsim {

class TorusTopology final : public Topology {
 public:
  explicit TorusTopology(const TorusParams& params);

  [[nodiscard]] const TorusParams& params() const { return params_; }

  [[nodiscard]] std::int32_t coord(RouterId r, std::int32_t dim) const {
    std::int32_t v = r;
    for (std::int32_t d = 0; d < dim; ++d) v /= params_.k;
    return v % params_.k;
  }
  [[nodiscard]] std::int32_t ring_distance(std::int32_t from,
                                           std::int32_t to) const {
    const std::int32_t k = params_.k;
    const std::int32_t plus = ((to - from) % k + k) % k;
    return std::min(plus, k - plus);
  }
  [[nodiscard]] std::int32_t dor_hops(RouterId from, RouterId to) const {
    std::int32_t hops = 0;
    for (std::int32_t dim = 0; dim < params_.n; ++dim) {
      hops += ring_distance(coord(from, dim), coord(to, dim));
    }
    return hops;
  }
  /// True when taking `out` at `r` traverses that ring's wrap-around link.
  [[nodiscard]] bool is_wrap_hop(RouterId r, PortIndex out) const {
    const std::int32_t c = coord(r, out / 2);
    return (out % 2 == 0) ? c == params_.k - 1 : c == 0;
  }

  // --- Topology interface -------------------------------------------------

  [[nodiscard]] PortClass port_class(PortIndex port) const override {
    (void)port;
    return PortClass::kLocalClass;
  }
  [[nodiscard]] RouterId peer(RouterId r, PortIndex port) const override;
  [[nodiscard]] PortIndex peer_port(RouterId r, PortIndex port) const override {
    (void)r;
    return port ^ 1;  // plus links feed the peer's minus port and vice versa
  }
  [[nodiscard]] PortIndex minimal_output(RouterId r,
                                         NodeId dest) const override;
  [[nodiscard]] PortIndex route_toward(RouterId r,
                                       RouterId target) const override;

  [[nodiscard]] VcIndex vc_class(RouterId r, PortIndex out,
                                 std::int8_t vc_state,
                                 bool phase0) const override {
    return (phase0 ? 0 : 2) + crossed_after(r, out, vc_state);
  }
  [[nodiscard]] HopTransition on_hop(RouterId r, PortIndex out,
                                     std::int8_t vc_state) const override {
    const std::int8_t next = static_cast<std::int8_t>(
        (out / 2) * 2 + crossed_after(r, out, vc_state));
    return {next, false, false};
  }
  [[nodiscard]] std::int8_t phase_end_state(
      std::int8_t vc_state) const override {
    return static_cast<std::int8_t>(vc_state & ~1);  // fresh dateline leg
  }

  [[nodiscard]] std::int32_t min_channel(RouterId r, NodeId dst) const override;
  [[nodiscard]] std::int32_t nonmin_pool_size(
      RouterId r, bool own_router_only) const override {
    (void)r;
    (void)own_router_only;
    return routers();
  }
  [[nodiscard]] bool sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                   bool own_router_only,
                                   NonminCandidate& out) const override;
  [[nodiscard]] bool nonmin_candidate_at(RouterId r, NodeId dst,
                                         bool own_router_only,
                                         std::int32_t index,
                                         NonminCandidate& out) const override;
  [[nodiscard]] bool sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                    NonminCandidate& out) const override;

  [[nodiscard]] HopEstimate min_hops(RouterId r, RouterId dr) const override {
    return {dor_hops(r, dr), 0};
  }
  [[nodiscard]] HopEstimate nonmin_hops(RouterId r,
                                        const NonminCandidate& cand,
                                        RouterId dr) const override {
    return {dor_hops(r, cand.inter) + dor_hops(cand.inter, dr), 0};
  }
  [[nodiscard]] bool min_link_probe(RouterId r, NodeId dst,
                                    RemoteProbe& out) const override;
  [[nodiscard]] bool min_remote_probe(RouterId r, NodeId dst,
                                      RemoteProbe& out) const override {
    return min_link_probe(r, dst, out);  // one-hop-lookahead queue
  }
  [[nodiscard]] bool nonmin_remote_probe(RouterId r,
                                         const NonminCandidate& cand,
                                         RemoteProbe& out) const override;

  [[nodiscard]] bool can_misroute_in_transit(
      RouterId r, RouterId src_router, std::int8_t vc_state) const override {
    (void)vc_state;
    return r == src_router;
  }

  [[nodiscard]] TrafficTopologyInfo traffic_info() const override;

  /// Opposite ring direction first, then other unresolved dimensions.
  [[nodiscard]] PortIndex fallback_output(RouterId r, RouterId target,
                                          PortIndex avoid) const override;

 private:
  [[nodiscard]] std::int32_t crossed_after(RouterId r, PortIndex out,
                                           std::int8_t vc_state) const {
    const std::int32_t dim = out / 2;
    const std::int32_t prev = (vc_state / 2 == dim) ? (vc_state & 1) : 0;
    return prev | (is_wrap_hop(r, out) ? 1 : 0);
  }
  [[nodiscard]] bool make_candidate(RouterId r, RouterId inter,
                                    NonminCandidate& out) const;

  TorusParams params_;
};

}  // namespace dfsim
