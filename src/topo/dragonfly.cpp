#include "topo/dragonfly.hpp"

#include <cassert>
#include <stdexcept>

namespace dfsim {

DragonflyTopology::DragonflyTopology(const TopoParams& params)
    : params_(params),
      groups_(params.groups()),
      routers_(params.routers()),
      nodes_(params.nodes()),
      forward_ports_(params.forward_ports()) {
  if (params_.p < 1 || params_.a < 2 || params_.h < 1) {
    throw std::invalid_argument("dragonfly: need p>=1, a>=2, h>=1");
  }
  const auto n_routers = static_cast<std::size_t>(routers_);
  const auto n_groups = static_cast<std::size_t>(groups_);
  const auto fwd = static_cast<std::size_t>(forward_ports_);

  peer_.assign(n_routers * fwd, -1);
  peer_port_.assign(n_routers * fwd, -1);
  global_src_.assign(n_groups * n_groups, -1);
  global_port_.assign(n_groups * n_groups, -1);

  const std::int32_t a = params_.a;
  const std::int32_t h = params_.h;

  // Peer tables.
  for (RouterId r = 0; r < routers_; ++r) {
    const GroupId g = group_of(r);
    const std::int32_t lr = local_index(r);
    // Local ports: port i reaches local index (i < lr ? i : i + 1).
    for (PortIndex port = 0; port < a - 1; ++port) {
      const std::int32_t li = port < lr ? port : port + 1;
      const RouterId dest = g * a + li;
      peer_[static_cast<std::size_t>(r) * fwd + static_cast<std::size_t>(port)] = dest;
      peer_port_[static_cast<std::size_t>(r) * fwd +
                 static_cast<std::size_t>(port)] =
          static_cast<std::int16_t>(local_port_to(dest, r));
    }
    // Global ports: channel j = lr*h + gp of group g reaches group
    // (j < g ? j : j+1); the far end is that group's channel for g.
    for (PortIndex gp = 0; gp < h; ++gp) {
      const std::int32_t j = lr * h + gp;
      const GroupId gd = global_channel_dest(g, j);
      const std::int32_t j_back = g < gd ? g : g - 1;  // gd's channel to g
      const RouterId dest = gd * a + j_back / h;
      const PortIndex dest_port = (a - 1) + (j_back % h);
      const PortIndex port = (a - 1) + gp;
      peer_[static_cast<std::size_t>(r) * fwd + static_cast<std::size_t>(port)] = dest;
      peer_port_[static_cast<std::size_t>(r) * fwd +
                 static_cast<std::size_t>(port)] =
          static_cast<std::int16_t>(dest_port);
      // Group-level gateway tables.
      global_src_[static_cast<std::size_t>(g) * n_groups +
                  static_cast<std::size_t>(gd)] = r;
      global_port_[static_cast<std::size_t>(g) * n_groups +
                   static_cast<std::size_t>(gd)] =
          static_cast<std::int16_t>(port);
    }
  }

  // Minimal next-output table over router pairs. Route shape is
  // local?(to gateway) -> global -> local?(to dest router).
  min_port_.assign(n_routers * n_routers, kEject);
  for (RouterId r = 0; r < routers_; ++r) {
    const GroupId g = group_of(r);
    for (RouterId dr = 0; dr < routers_; ++dr) {
      const std::size_t idx =
          static_cast<std::size_t>(r) * n_routers + static_cast<std::size_t>(dr);
      if (dr == r) continue;  // stays kEject
      const GroupId gd = group_of(dr);
      if (gd == g) {
        min_port_[idx] = static_cast<std::int16_t>(local_port_to(r, dr));
        continue;
      }
      const RouterId gateway = minimal_global_source(g, gd);
      if (r == gateway) {
        min_port_[idx] = static_cast<std::int16_t>(minimal_global_port(g, gd));
      } else {
        min_port_[idx] = static_cast<std::int16_t>(local_port_to(r, gateway));
      }
    }
  }
}

std::int32_t DragonflyTopology::minimal_hops(RouterId from, RouterId to) const {
  std::int32_t hops = 0;
  RouterId r = from;
  while (r != to) {
    const PortIndex port = minimal_router_output(r, to);
    assert(port != kInvalidPort);
    r = peer(r, port);
    ++hops;
    assert(hops <= 3);
  }
  return hops;
}

}  // namespace dfsim
