#include "topo/dragonfly.hpp"

#include <cassert>
#include <stdexcept>

namespace dfsim {

DragonflyTopology::DragonflyTopology(const TopoParams& params)
    : params_(params), groups_(params.groups()) {
  if (params_.p < 1 || params_.a < 2 || params_.h < 1) {
    throw std::invalid_argument("dragonfly: need p>=1, a>=2, h>=1");
  }
  set_shape(params_.routers(), params_.forward_ports(), params_.p);

  const auto n_routers = static_cast<std::size_t>(routers());
  const auto n_groups = static_cast<std::size_t>(groups_);
  const auto fwd = static_cast<std::size_t>(forward_ports());

  peer_.assign(n_routers * fwd, -1);
  peer_port_.assign(n_routers * fwd, -1);
  global_src_.assign(n_groups * n_groups, -1);
  global_port_.assign(n_groups * n_groups, -1);

  const std::int32_t a = params_.a;
  const std::int32_t h = params_.h;

  // Peer tables.
  for (RouterId r = 0; r < routers(); ++r) {
    const GroupId g = group_of(r);
    const std::int32_t lr = local_index(r);
    // Local ports: port i reaches local index (i < lr ? i : i + 1).
    for (PortIndex port = 0; port < a - 1; ++port) {
      const std::int32_t li = port < lr ? port : port + 1;
      const RouterId dest = g * a + li;
      peer_[static_cast<std::size_t>(r) * fwd + static_cast<std::size_t>(port)] = dest;
      peer_port_[static_cast<std::size_t>(r) * fwd +
                 static_cast<std::size_t>(port)] =
          static_cast<std::int16_t>(local_port_to(dest, r));
    }
    // Global ports: channel j = lr*h + gp of group g reaches group
    // (j < g ? j : j+1); the far end is that group's channel for g.
    for (PortIndex gp = 0; gp < h; ++gp) {
      const std::int32_t j = lr * h + gp;
      const GroupId gd = global_channel_dest(g, j);
      const std::int32_t j_back = g < gd ? g : g - 1;  // gd's channel to g
      const RouterId dest = gd * a + j_back / h;
      const PortIndex dest_port = (a - 1) + (j_back % h);
      const PortIndex port = (a - 1) + gp;
      peer_[static_cast<std::size_t>(r) * fwd + static_cast<std::size_t>(port)] = dest;
      peer_port_[static_cast<std::size_t>(r) * fwd +
                 static_cast<std::size_t>(port)] =
          static_cast<std::int16_t>(dest_port);
      // Group-level gateway tables.
      global_src_[static_cast<std::size_t>(g) * n_groups +
                  static_cast<std::size_t>(gd)] = r;
      global_port_[static_cast<std::size_t>(g) * n_groups +
                   static_cast<std::size_t>(gd)] =
          static_cast<std::int16_t>(port);
    }
  }

  // Minimal next-output table over router pairs. Route shape is
  // local?(to gateway) -> global -> local?(to dest router).
  min_port_.assign(n_routers * n_routers, kEject);
  for (RouterId r = 0; r < routers(); ++r) {
    const GroupId g = group_of(r);
    for (RouterId dr = 0; dr < routers(); ++dr) {
      const std::size_t idx =
          static_cast<std::size_t>(r) * n_routers + static_cast<std::size_t>(dr);
      if (dr == r) continue;  // stays kEject
      const GroupId gd = group_of(dr);
      if (gd == g) {
        min_port_[idx] = static_cast<std::int16_t>(local_port_to(r, dr));
        continue;
      }
      const RouterId gateway = minimal_global_source(g, gd);
      if (r == gateway) {
        min_port_[idx] = static_cast<std::int16_t>(minimal_global_port(g, gd));
      } else {
        min_port_[idx] = static_cast<std::int16_t>(local_port_to(r, gateway));
      }
    }
  }
}

std::int32_t DragonflyTopology::minimal_hops(RouterId from, RouterId to) const {
  std::int32_t hops = 0;
  RouterId r = from;
  while (r != to) {
    const PortIndex port = minimal_router_output(r, to);
    assert(port != kInvalidPort);
    r = peer(r, port);
    ++hops;
    assert(hops <= 3);
  }
  return hops;
}

// ---------------------------------------------------------------------------
// Nonminimal candidate machinery (moved from the engine's dragonfly-specific
// routing; RNG draw sequences are preserved exactly).

std::int32_t DragonflyTopology::min_channel(RouterId r, NodeId dst) const {
  const GroupId g = group_of(r);
  const GroupId gd = group_of(router_of_node(dst));
  if (gd == g) return -1;  // intra-group traffic stays minimal
  return gd < g ? gd : gd - 1;
}

std::int32_t DragonflyTopology::nonmin_pool_size(RouterId r,
                                                 bool own_router_only) const {
  (void)r;
  return own_router_only ? params_.h : params_.a * params_.h;
}

bool DragonflyTopology::nonmin_viable(RouterId r, NodeId dst,
                                      bool own_router_only) const {
  if (!own_router_only || params_.h > 1) return true;
  // CRG with a single global channel per router: unusable when that channel
  // is the minimal one.
  return local_index(r) * params_.h != min_channel(r, dst);
}

void DragonflyTopology::fill_candidate(RouterId r, std::int32_t channel,
                                       NonminCandidate& out) const {
  const GroupId g = group_of(r);
  const std::int32_t a = params_.a;
  const std::int32_t h = params_.h;
  out.channel = channel;
  out.inter = g * a + channel / h;
  out.via_port = (a - 1) + channel % h;
  out.first_hop = out.inter == r ? out.via_port : local_port_to(r, out.inter);
}

bool DragonflyTopology::sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                      bool own_router_only,
                                      NonminCandidate& out) const {
  const std::int32_t h = params_.h;
  const std::int32_t channels = params_.a * h;
  const std::int32_t jmin = min_channel(r, dst);
  const std::int32_t j =
      own_router_only
          ? local_index(r) * h + static_cast<std::int32_t>(rng.next_below(
                                     static_cast<std::uint64_t>(h)))
          : static_cast<std::int32_t>(
                rng.next_below(static_cast<std::uint64_t>(channels)));
  if (j == jmin) return false;
  fill_candidate(r, j, out);
  return candidate_usable(r, out);
}

bool DragonflyTopology::nonmin_candidate_at(RouterId r, NodeId dst,
                                            bool own_router_only,
                                            std::int32_t index,
                                            NonminCandidate& out) const {
  const std::int32_t j =
      own_router_only ? local_index(r) * params_.h + index : index;
  if (j == min_channel(r, dst)) return false;
  fill_candidate(r, j, out);
  return candidate_usable(r, out);
}

bool DragonflyTopology::sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                       NonminCandidate& out) const {
  const std::int32_t channels = params_.a * params_.h;
  const std::int32_t jmin = min_channel(r, dst);
  std::int32_t j = static_cast<std::int32_t>(
      rng.next_below(static_cast<std::uint64_t>(channels - 1)));
  if (j >= jmin) ++j;
  fill_candidate(r, j, out);
  return candidate_usable(r, out);
}

PortIndex DragonflyTopology::fallback_output(RouterId r, RouterId /*target*/,
                                             PortIndex avoid) const {
  // A dead global link has no minimal replacement (one link per group
  // pair), but any other live global port reaches a group that still has
  // its own link toward the destination group; a dead local hop detours via
  // another local router, which — groups being fully connected — keeps a
  // direct link to the gateway. So prefer same-class alternatives, scanning
  // cyclically from just past the dead port so rerouted traffic spreads
  // instead of re-converging on one substitute.
  const std::int32_t a = params_.a;
  const std::int32_t fwd = forward_ports();
  const bool global_dead = avoid >= a - 1;
  const PortIndex lo = global_dead ? a - 1 : 0;
  const PortIndex hi = global_dead ? fwd : a - 1;
  const std::int32_t span = hi - lo;
  for (std::int32_t i = 1; i < span; ++i) {
    const PortIndex p = lo + static_cast<PortIndex>((avoid - lo + i) % span);
    if (link_up(r, p)) return p;
  }
  for (PortIndex p = 0; p < fwd; ++p) {
    if (p != avoid && link_up(r, p)) return p;
  }
  return kInvalidPort;
}

HopEstimate DragonflyTopology::min_hops(RouterId r, RouterId dr) const {
  if (r == dr) return {0, 0};
  const GroupId g = group_of(r);
  const GroupId gd = group_of(dr);
  if (g == gd) return {1, 0};
  HopEstimate est{0, 1};
  const RouterId gateway = minimal_global_source(g, gd);
  if (r != gateway) ++est.local_hops;
  const RouterId entry = peer(gateway, minimal_global_port(g, gd));
  if (entry != dr) ++est.local_hops;
  return est;
}

HopEstimate DragonflyTopology::nonmin_hops(RouterId r,
                                           const NonminCandidate& cand,
                                           RouterId dr) const {
  const RouterId entry = peer(cand.inter, cand.via_port);
  HopEstimate est = min_hops(entry, dr);
  ++est.global_hops;
  if (cand.inter != r) ++est.local_hops;
  return est;
}

bool DragonflyTopology::min_remote_probe(RouterId r, NodeId dst,
                                         RemoteProbe& out) const {
  const GroupId g = group_of(r);
  const GroupId gd = group_of(router_of_node(dst));
  if (gd == g) return false;
  const RouterId min_gw = minimal_global_source(g, gd);
  if (min_gw == r) return false;  // first-hop term already covers it
  out = RemoteProbe{min_gw, minimal_global_port(g, gd)};
  return true;
}

bool DragonflyTopology::nonmin_remote_probe(RouterId r,
                                            const NonminCandidate& cand,
                                            RemoteProbe& out) const {
  if (cand.inter < 0 || cand.inter == r) return false;
  out = RemoteProbe{cand.inter, cand.via_port};
  return true;
}

bool DragonflyTopology::min_link_probe(RouterId r, NodeId dst,
                                       RemoteProbe& out) const {
  const GroupId g = group_of(r);
  const GroupId gd = group_of(router_of_node(dst));
  if (gd == g) return false;
  out = RemoteProbe{minimal_global_source(g, gd), minimal_global_port(g, gd)};
  return true;
}

TrafficTopologyInfo DragonflyTopology::traffic_info() const {
  TrafficTopologyInfo info;
  info.nodes = nodes();
  info.groups = groups_;
  info.nodes_per_group = params_.a * params_.p;
  return info;  // default ring adv_group matches ADV+o on the dragonfly
}

}  // namespace dfsim
