// Topology abstraction consumed by the unified SoA engine.
//
// A Topology instance owns everything topology-shaped the per-cycle loop
// needs — wiring (peer/peer_port), the minimal next-output function, the
// port-class map that selects buffer depth / VC count / link latency per
// port, the VC-for-hop deadlock schedule, and the nonminimal-candidate
// machinery behind every adaptive mechanism (Valiant sampling, scored
// candidate sampling for UGAL/CB, UGAL hop estimates, and remote-queue probe
// points for UGAL-G/PB). The engine itself carries no dragonfly, flattened
// butterfly, or torus specifics: those live in the DragonflyTopology,
// FlattenedButterflyTopology, and TorusTopology subclasses.
//
// Phase-0 convention: a globally misrouted packet first travels to
// `NonminCandidate::inter`. When `via_port >= 0` the nonminimal phase ends
// by taking that output at `inter` (dragonfly: the gateway's global port,
// signalled by HopTransition::end_phase0). When `via_port < 0` the phase
// ends upon *arrival* at `inter` (flattened butterfly / torus Valiant
// intermediates); the engine handles that case when the packet is enqueued.
//
// Dispatch cost model: the shape accessors (routers/nodes/radix/
// router_of_node) are non-virtual; minimal_output/peer/vc_class ARE virtual
// and called per head event / departure, but each implementation is a flat
// table load or closed-form coordinate math, and the engine amortizes them
// against queue and allocator work (simulator-cycle micro benches are
// unchanged vs the pre-interface engine). The candidate-sampling / UGAL /
// probe hooks sit behind RNG draws and occupancy scans, off the per-cycle
// inner loop.
#pragma once

#include <cstdint>
#include <memory>

#include "traffic/model.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim {

/// Buffering/latency class of a forward port. The engine maps classes to the
/// RouterParams/LinkParams knobs: kLocalClass uses buf_local_phits /
/// vcs_local / local_latency; kGlobalClass uses the *_global knobs.
/// Injection/ejection ports are identified positionally (port >=
/// forward_ports()) and are not classed here.
enum class PortClass : std::uint8_t { kLocalClass, kGlobalClass };

/// One nonminimal route option at a deciding router.
struct NonminCandidate {
  std::int32_t channel = -1;  // id in the topology's candidate space
  RouterId inter = -1;        // phase-0 target router
  PortIndex via_port = -1;    // output to take at `inter`; -1 = phase ends
                              // on arrival at `inter`
  PortIndex first_hop = -1;   // output at the deciding router (counters /
                              // occupancy are scored here)
};

/// Minimal/nonminimal path length split by port class, so the engine can
/// convert to latency with its own LinkParams.
struct HopEstimate {
  std::int32_t local_hops = 0;
  std::int32_t global_hops = 0;
};

/// (router, output port) whose downstream occupancy a mechanism may probe
/// remotely (UGAL-G's idealized global knowledge, PB's piggybacked state).
struct RemoteProbe {
  RouterId router = -1;
  PortIndex port = -1;
};

/// Per-hop packet-state transition. `vc_state` is a topology-interpreted
/// byte carried per packet (dragonfly: global hops taken, torus: current
/// dimension + dateline bit, flattened butterfly: unused).
struct HopTransition {
  std::int8_t vc_state = 0;
  bool end_phase0 = false;   // this hop completes the nonminimal phase
  bool reset_detour = false; // allow a fresh opportunistic local detour
};

/// ECtN broadcast layout: which counter each router contributes to which
/// (domain, channel) snapshot slot. Only topologies with supports_ectn().
struct EctnSlot {
  PortIndex port = -1;        // output port whose counter is broadcast
  std::int32_t domain = -1;   // snapshot row (dragonfly: group)
  std::int32_t channel = -1;  // snapshot column (dragonfly: a*h channel id)
};

/// Current link-health view consumed by topology candidate filtering and by
/// the engine's routing fallback. Implemented by fault/LinkHealthMap; the
/// engine refreshes the concrete map at fault-event cycles, so queries carry
/// no time argument and stay O(1) flat-array loads on the hot path.
class LinkHealth {
 public:
  virtual ~LinkHealth() = default;
  /// False while the directed link out of (r, port) is down.
  [[nodiscard]] virtual bool link_up(RouterId r, PortIndex port) const = 0;
  /// Extra serialization latency (cycles) currently imposed on (r, port).
  [[nodiscard]] virtual std::int32_t extra_latency(RouterId r,
                                                   PortIndex port) const = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  // --- shape
  [[nodiscard]] std::int32_t routers() const { return routers_; }
  [[nodiscard]] std::int32_t nodes() const { return nodes_; }
  /// Inter-router ports; injection/ejection ports follow at
  /// [forward_ports(), forward_ports() + concentration()).
  [[nodiscard]] std::int32_t forward_ports() const { return forward_ports_; }
  /// Terminals attached per router.
  [[nodiscard]] std::int32_t concentration() const { return concentration_; }
  /// Full router radix (forward + injection/ejection).
  [[nodiscard]] std::int32_t radix() const {
    return forward_ports_ + concentration_;
  }
  [[nodiscard]] RouterId router_of_node(NodeId n) const {
    return n / concentration_;
  }

  // --- wiring & minimal routing
  [[nodiscard]] virtual PortClass port_class(PortIndex port) const = 0;
  [[nodiscard]] virtual RouterId peer(RouterId r, PortIndex port) const = 0;
  [[nodiscard]] virtual PortIndex peer_port(RouterId r,
                                            PortIndex port) const = 0;
  /// Next output on the (unique) minimal route to `dest`; an ejection port
  /// when `dest` is attached to `r`.
  [[nodiscard]] virtual PortIndex minimal_output(RouterId r,
                                                 NodeId dest) const = 0;
  /// Next output toward router `target` (phase-0 forwarding); kInvalidPort
  /// when `r == target`.
  [[nodiscard]] virtual PortIndex route_toward(RouterId r,
                                               RouterId target) const = 0;

  // --- VC deadlock schedule
  /// VC class for taking `out` with the given packet state; the engine
  /// clamps to the port class's configured VC count.
  [[nodiscard]] virtual VcIndex vc_class(RouterId r, PortIndex out,
                                         std::int8_t vc_state,
                                         bool phase0) const = 0;
  /// State transition when a packet departs `r` via `out`.
  [[nodiscard]] virtual HopTransition on_hop(RouterId r, PortIndex out,
                                             std::int8_t vc_state) const = 0;
  /// State adjustment when the nonminimal phase ends on *arrival* at the
  /// intermediate router (via_port < 0 candidates only).
  [[nodiscard]] virtual std::int8_t phase_end_state(std::int8_t vc_state) const {
    return vc_state;
  }

  // --- nonminimal candidates
  /// Candidate-space id of the minimal route at `r`, or -1 when no
  /// nonminimal decision applies here (dragonfly: intra-group traffic;
  /// fbfly/torus: destination attached to `r`). Doubles as the ECtN
  /// combined-threshold snapshot index on topologies that support ECtN.
  [[nodiscard]] virtual std::int32_t min_channel(RouterId r,
                                                 NodeId dst) const = 0;
  /// Candidate pool size for scored sampling; `own_router_only` is the CRG
  /// policy restriction (candidates via this router's own channels).
  [[nodiscard]] virtual std::int32_t nonmin_pool_size(
      RouterId r, bool own_router_only) const = 0;
  /// False when the restricted pool provably contains no usable candidate
  /// (so the engine skips sampling without consuming RNG draws).
  [[nodiscard]] virtual bool nonmin_viable(RouterId r, NodeId dst,
                                           bool own_router_only) const {
    (void)r;
    (void)dst;
    (void)own_router_only;
    return true;
  }
  /// Draws one candidate; false when the draw hit the minimal route (or an
  /// otherwise unusable option) and should simply be skipped. RNG use must
  /// be identical across calls for determinism.
  [[nodiscard]] virtual bool sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                           bool own_router_only,
                                           NonminCandidate& out) const = 0;
  /// Enumerated access to the candidate pool for small-pool exhaustive
  /// scoring: option `index` in [0, nonmin_pool_size(r, own_router_only)).
  /// False when that slot is the minimal route (or otherwise unusable).
  /// Draws no RNG; distinct indices yield distinct candidates.
  [[nodiscard]] virtual bool nonmin_candidate_at(RouterId r, NodeId dst,
                                                 bool own_router_only,
                                                 std::int32_t index,
                                                 NonminCandidate& out)
      const = 0;
  /// Uniform Valiant draw over all valid nonminimal options; false when no
  /// candidate could be produced.
  [[nodiscard]] virtual bool sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                            NonminCandidate& out) const = 0;

  // --- UGAL estimates & remote probes
  [[nodiscard]] virtual HopEstimate min_hops(RouterId r,
                                             RouterId dr) const = 0;
  [[nodiscard]] virtual HopEstimate nonmin_hops(
      RouterId r, const NonminCandidate& cand, RouterId dr) const = 0;
  /// UGAL-G: remote queue on the minimal route (skipped when it is `r`'s
  /// own first hop, already counted locally).
  [[nodiscard]] virtual bool min_remote_probe(RouterId r, NodeId dst,
                                              RemoteProbe& out) const {
    (void)r;
    (void)dst;
    (void)out;
    return false;
  }
  /// UGAL-G: remote queue on the candidate path (skipped when that queue is
  /// at `r` itself, already counted via the first hop).
  [[nodiscard]] virtual bool nonmin_remote_probe(RouterId r,
                                                 const NonminCandidate& cand,
                                                 RemoteProbe& out) const {
    (void)r;
    (void)cand;
    (void)out;
    return false;
  }
  /// PB: the link whose congested-bit is piggybacked for the minimal route
  /// (may be `r`'s own port; unlike min_remote_probe it is not skipped).
  [[nodiscard]] virtual bool min_link_probe(RouterId r, NodeId dst,
                                            RemoteProbe& out) const {
    (void)r;
    (void)dst;
    (void)out;
    return false;
  }

  // --- in-transit policy
  /// Whether the in-transit mechanisms (OLM/Base/Hybrid/ECtN) may still
  /// divert a minimal-committed packet at `r` (dragonfly: anywhere in the
  /// source group; fbfly/torus: only at the source router).
  [[nodiscard]] virtual bool can_misroute_in_transit(
      RouterId r, RouterId src_router, std::int8_t vc_state) const = 0;
  /// Ports [0, local_detour_ports(r)) eligible as opportunistic local
  /// detours; 0 disables local misrouting on this topology.
  [[nodiscard]] virtual std::int32_t local_detour_ports(RouterId r) const {
    (void)r;
    return 0;
  }

  // --- ECtN layout (topologies with group-broadcast contention snapshots)
  [[nodiscard]] virtual bool supports_ectn() const { return false; }
  [[nodiscard]] virtual std::int32_t ectn_domains() const { return 0; }
  [[nodiscard]] virtual std::int32_t ectn_channels() const { return 0; }
  [[nodiscard]] virtual std::int32_t ectn_router_slots() const { return 0; }
  [[nodiscard]] virtual std::int32_t ectn_domain(RouterId r) const {
    (void)r;
    return 0;
  }
  [[nodiscard]] virtual EctnSlot ectn_slot(RouterId r, std::int32_t i) const {
    (void)r;
    (void)i;
    return {};
  }

  // --- traffic grouping
  [[nodiscard]] virtual TrafficTopologyInfo traffic_info() const = 0;

  // --- fault overlay
  /// Attach (or detach with nullptr) the link-health view consulted by the
  /// candidate filters and fallback routing. Never attached when faults are
  /// disabled, so the null check below is the only healthy-path cost.
  void attach_link_health(const LinkHealth* health) { health_ = health; }
  [[nodiscard]] const LinkHealth* link_health() const { return health_; }
  /// True when the directed link (r, port) is currently usable.
  [[nodiscard]] bool link_up(RouterId r, PortIndex port) const {
    return health_ == nullptr || health_->link_up(r, port);
  }
  /// True when every link the candidate commits to up front is usable: the
  /// first hop at the deciding router and — for via_port >= 0 candidates —
  /// the phase-ending output at the intermediate router.
  [[nodiscard]] bool candidate_usable(RouterId r,
                                      const NonminCandidate& c) const {
    if (health_ == nullptr) return true;
    if (c.first_hop >= 0 && !health_->link_up(r, c.first_hop)) return false;
    if (c.via_port >= 0 && c.inter != r &&
        !health_->link_up(c.inter, c.via_port)) {
      return false;
    }
    return true;
  }
  /// Alternative output at `r` toward router `target` when the preferred
  /// output `avoid` is down; kInvalidPort when every forward link of `r` is
  /// down. Deterministic (no RNG): the engine may re-evaluate it every cycle
  /// for a blocked head. The base version scans cyclically from `avoid`;
  /// subclasses override with class-aware preferences.
  [[nodiscard]] virtual PortIndex fallback_output(RouterId r, RouterId target,
                                                  PortIndex avoid) const {
    (void)target;
    const std::int32_t fwd = forward_ports();
    for (std::int32_t i = 1; i < fwd; ++i) {
      const PortIndex p = static_cast<PortIndex>((avoid + i) % fwd);
      if (link_up(r, p)) return p;
    }
    return kInvalidPort;
  }

 protected:
  /// Subclasses fill the shape once in their constructor.
  void set_shape(std::int32_t routers, std::int32_t forward_ports,
                 std::int32_t concentration) {
    routers_ = routers;
    forward_ports_ = forward_ports;
    concentration_ = concentration;
    nodes_ = routers * concentration;
  }

 private:
  std::int32_t routers_ = 0;
  std::int32_t nodes_ = 0;
  std::int32_t forward_ports_ = 0;
  std::int32_t concentration_ = 0;
  const LinkHealth* health_ = nullptr;
};

}  // namespace dfsim
