#include "topo/torus.hpp"

#include <stdexcept>

namespace dfsim {

TorusTopology::TorusTopology(const TorusParams& params) : params_(params) {
  if (params_.k < 3 || params_.n < 1 || params_.c < 1) {
    // k >= 3 keeps plus/minus ports distinct links (k == 2 would double the
    // single physical link between the two routers of a ring).
    throw std::invalid_argument("torus: need k>=3, n>=1, c>=1");
  }
  set_shape(params_.routers(), 2 * params_.n, params_.c);
}

RouterId TorusTopology::peer(RouterId r, PortIndex port) const {
  const std::int32_t k = params_.k;
  const std::int32_t dim = port / 2;
  const std::int32_t own = coord(r, dim);
  const std::int32_t next =
      (port % 2 == 0) ? (own + 1) % k : (own - 1 + k) % k;
  std::int32_t stride = 1;
  for (std::int32_t d = 0; d < dim; ++d) stride *= k;
  return r + (next - own) * stride;
}

PortIndex TorusTopology::minimal_output(RouterId r, NodeId dest) const {
  const RouterId dr = router_of_node(dest);
  if (dr == r) return forward_ports() + (dest % params_.c);
  return route_toward(r, dr);
}

PortIndex TorusTopology::route_toward(RouterId r, RouterId target) const {
  if (r == target) return kInvalidPort;
  const std::int32_t k = params_.k;
  for (std::int32_t dim = 0; dim < params_.n; ++dim) {
    const std::int32_t cr = coord(r, dim);
    const std::int32_t ct = coord(target, dim);
    if (cr == ct) continue;
    const std::int32_t plus = ((ct - cr) % k + k) % k;
    // Shorter direction wins; ties go to plus, which is what concentrates
    // tornado traffic (offset k/2) on one ring direction.
    return plus <= k - plus ? dim * 2 : dim * 2 + 1;
  }
  return kInvalidPort;
}

std::int32_t TorusTopology::min_channel(RouterId r, NodeId dst) const {
  const RouterId dr = router_of_node(dst);
  return dr == r ? -1 : dr;  // candidate space is router ids
}

bool TorusTopology::make_candidate(RouterId r, RouterId inter,
                                   NonminCandidate& out) const {
  out.channel = inter;
  out.inter = inter;
  out.via_port = -1;  // phase 0 ends on arrival at the intermediate
  out.first_hop = route_toward(r, inter);
  return candidate_usable(r, out);
}

bool TorusTopology::sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                  bool own_router_only,
                                  NonminCandidate& out) const {
  (void)own_router_only;
  const RouterId dr = router_of_node(dst);
  const auto inter = static_cast<RouterId>(
      rng.next_below(static_cast<std::uint64_t>(routers())));
  if (inter == r || inter == dr) return false;
  return make_candidate(r, inter, out);
}

bool TorusTopology::nonmin_candidate_at(RouterId r, NodeId dst,
                                        bool own_router_only,
                                        std::int32_t index,
                                        NonminCandidate& out) const {
  (void)own_router_only;
  const RouterId dr = router_of_node(dst);
  if (index == r || index == dr) return false;  // not a nonminimal option
  return make_candidate(r, index, out);
}

bool TorusTopology::sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                   NonminCandidate& out) const {
  const RouterId dr = router_of_node(dst);
  for (std::int32_t attempt = 0; attempt < 8; ++attempt) {
    const auto inter = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(routers())));
    // With faults attached a drawn candidate may be unusable; keep trying
    // within the attempt budget (draw-for-draw identical when healthy).
    if (inter != r && inter != dr && make_candidate(r, inter, out)) {
      return true;
    }
  }
  return false;
}

PortIndex TorusTopology::fallback_output(RouterId r, RouterId target,
                                         PortIndex avoid) const {
  // The opposite direction of the blocked ring first (the long way round
  // that dimension), then the preferred direction of any other unresolved
  // dimension, then anything live. DOR is memoryless, so a detour can
  // ping-pong in pathological cut sets; the engine's hop cap bounds that.
  const PortIndex opposite = avoid ^ 1;
  if (link_up(r, opposite)) return opposite;
  const std::int32_t k = params_.k;
  for (std::int32_t dim = 0; dim < params_.n; ++dim) {
    const std::int32_t cr = coord(r, dim);
    const std::int32_t ct = coord(target, dim);
    if (cr == ct) continue;
    const std::int32_t plus = ((ct - cr) % k + k) % k;
    const PortIndex pref = plus <= k - plus ? dim * 2 : dim * 2 + 1;
    if (pref != avoid && link_up(r, pref)) return pref;
    if ((pref ^ 1) != avoid && link_up(r, pref ^ 1)) return pref ^ 1;
  }
  for (PortIndex p = 0; p < forward_ports(); ++p) {
    if (p != avoid && link_up(r, p)) return p;
  }
  return kInvalidPort;
}

bool TorusTopology::min_link_probe(RouterId r, NodeId dst,
                                   RemoteProbe& out) const {
  // One-hop-lookahead: the next router's minimal output toward `dst` — on a
  // ring the congestion of interest is a few hops downstream, and the
  // neighbor's same-direction queue is the closest observable proxy.
  const PortIndex first = minimal_output(r, dst);
  if (first >= forward_ports()) return false;
  const RouterId next = peer(r, first);
  out = RemoteProbe{next, minimal_output(next, dst)};
  return true;
}

bool TorusTopology::nonmin_remote_probe(RouterId r,
                                        const NonminCandidate& cand,
                                        RemoteProbe& out) const {
  // One-hop-lookahead on the candidate path, mirroring min_remote_probe.
  if (cand.first_hop < 0 || cand.first_hop >= forward_ports()) return false;
  const RouterId next = peer(r, cand.first_hop);
  const PortIndex cont = next == cand.inter
                             ? kInvalidPort
                             : route_toward(next, cand.inter);
  if (cont == kInvalidPort) return false;
  out = RemoteProbe{next, cont};
  return true;
}

TrafficTopologyInfo TorusTopology::traffic_info() const {
  TrafficTopologyInfo info;
  info.nodes = nodes();
  info.groups = routers();
  info.nodes_per_group = params_.c;
  const std::int32_t k = params_.k;
  // ADV+o advances the dimension-0 ring coordinate; offset k/2 is the
  // tornado adversary (every router sends halfway around its row ring).
  info.adv_group = [k](std::int32_t r, std::int32_t offset) {
    const std::int32_t c0 = r % k;
    return r - c0 + ((c0 + offset) % k + k) % k;
  };
  return info;
}

}  // namespace dfsim
