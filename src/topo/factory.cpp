#include "topo/factory.hpp"

#include "fbfly/fb_topology.hpp"
#include "topo/dragonfly.hpp"
#include "topo/torus.hpp"

namespace dfsim {

std::unique_ptr<Topology> make_topology(const SimParams& params) {
  switch (params.topology) {
    case TopologyKind::kFbfly:
      return std::make_unique<FlattenedButterflyTopology>(params.fbfly);
    case TopologyKind::kTorus:
      return std::make_unique<TorusTopology>(params.torus);
    case TopologyKind::kDragonfly:
      break;
  }
  return std::make_unique<DragonflyTopology>(params.topo);
}

}  // namespace dfsim
