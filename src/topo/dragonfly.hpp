// Canonical dragonfly topology with fully precomputed flat tables.
//
// Port layout per router (outputs and inputs use the same indices):
//   [0, a-1)                      local ports, one per other router in group
//   [a-1, a-1+h)                  global ports
//   [forward_ports(), +p)         ejection (outputs) / injection (inputs)
//
// Global link arrangement is the standard "absolute" one: group G's global
// channel j (j in [0, a*h), owned by router j/h at global port j%h) connects
// to group j if j < G else j+1, which gives exactly one link per group pair.
//
// `minimal_output` is a single array lookup: the next-output table over
// (router, destination router) pairs is built once in the constructor; at
// paper scale it is a ~8.5 MB int16 table, which is why route computation
// never shows up in the simulator profile.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "util/types.hpp"

namespace dfsim {

class DragonflyTopology {
 public:
  explicit DragonflyTopology(const TopoParams& params);

  [[nodiscard]] const TopoParams& params() const { return params_; }
  [[nodiscard]] std::int32_t groups() const { return groups_; }
  [[nodiscard]] std::int32_t routers() const { return routers_; }
  [[nodiscard]] std::int32_t nodes() const { return nodes_; }
  [[nodiscard]] std::int32_t forward_ports() const { return forward_ports_; }

  [[nodiscard]] GroupId group_of(RouterId r) const { return r / params_.a; }
  [[nodiscard]] std::int32_t local_index(RouterId r) const {
    return r % params_.a;
  }
  [[nodiscard]] RouterId router_of_node(NodeId n) const {
    return n / params_.p;
  }

  [[nodiscard]] bool is_local_port(PortIndex port) const {
    return port < params_.a - 1;
  }
  [[nodiscard]] bool is_global_port(PortIndex port) const {
    return port >= params_.a - 1 && port < forward_ports_;
  }
  [[nodiscard]] bool is_ejection_port(PortIndex port) const {
    return port >= forward_ports_;
  }

  /// Neighbor router on the other end of `port` (local or global).
  [[nodiscard]] RouterId peer(RouterId r, PortIndex port) const {
    return peer_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(forward_ports_) +
                 static_cast<std::size_t>(port)];
  }
  /// Input port on the peer router that this link feeds.
  [[nodiscard]] PortIndex peer_port(RouterId r, PortIndex port) const {
    return peer_port_[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(forward_ports_) +
                      static_cast<std::size_t>(port)];
  }

  /// Next output port on the (unique) minimal route from router `r` to node
  /// `dest`: an ejection port when `dest` is attached to `r`.
  [[nodiscard]] PortIndex minimal_output(RouterId r, NodeId dest) const {
    const RouterId dr = router_of_node(dest);
    const PortIndex port = min_port_[static_cast<std::size_t>(r) *
                                         static_cast<std::size_t>(routers_) +
                                     static_cast<std::size_t>(dr)];
    if (port != kEject) return port;
    return forward_ports_ + (dest % params_.p);
  }

  /// Next output port on the minimal route toward router `dr` (kInvalidPort
  /// when `r == dr`).
  [[nodiscard]] PortIndex minimal_router_output(RouterId r, RouterId dr) const {
    const PortIndex port = min_port_[static_cast<std::size_t>(r) *
                                         static_cast<std::size_t>(routers_) +
                                     static_cast<std::size_t>(dr)];
    return port == kEject ? kInvalidPort : port;
  }

  /// The router in group `g` owning the global link to group `gd` (g != gd).
  [[nodiscard]] RouterId minimal_global_source(GroupId g, GroupId gd) const {
    return global_src_[static_cast<std::size_t>(g) *
                           static_cast<std::size_t>(groups_) +
                       static_cast<std::size_t>(gd)];
  }
  /// The global port on `minimal_global_source(g, gd)` reaching `gd`.
  [[nodiscard]] PortIndex minimal_global_port(GroupId g, GroupId gd) const {
    return global_port_[static_cast<std::size_t>(g) *
                            static_cast<std::size_t>(groups_) +
                        static_cast<std::size_t>(gd)];
  }

  /// Destination group of group-level global channel `channel` in [0, a*h)
  /// of group `g`.
  [[nodiscard]] GroupId global_channel_dest(GroupId g,
                                            std::int32_t channel) const {
    return channel < g ? channel : channel + 1;
  }
  /// Group-level channel index [0, a*h) for router `r`'s global port.
  [[nodiscard]] std::int32_t global_channel_of(RouterId r,
                                               PortIndex global_port) const {
    return local_index(r) * params_.h + (global_port - (params_.a - 1));
  }

  /// Local output port on router `r` toward router `dest` in the same group.
  [[nodiscard]] PortIndex local_port_to(RouterId r, RouterId dest) const {
    const std::int32_t li = local_index(dest);
    const std::int32_t lr = local_index(r);
    return li < lr ? li : li - 1;
  }

  /// Hop count of the minimal route between two routers (0..3; at most one
  /// global hop plus at most one local hop on each side).
  [[nodiscard]] std::int32_t minimal_hops(RouterId from, RouterId to) const;

 private:
  // Sentinel inside min_port_ marking "destination router reached".
  static constexpr std::int16_t kEject = -2;

  TopoParams params_;
  std::int32_t groups_ = 0;
  std::int32_t routers_ = 0;
  std::int32_t nodes_ = 0;
  std::int32_t forward_ports_ = 0;

  std::vector<RouterId> peer_;          // [routers x forward_ports]
  std::vector<std::int16_t> peer_port_; // [routers x forward_ports]
  std::vector<std::int16_t> min_port_;  // [routers x routers]
  std::vector<RouterId> global_src_;    // [groups x groups]
  std::vector<std::int16_t> global_port_;  // [groups x groups]
};

}  // namespace dfsim
