// Canonical dragonfly topology with fully precomputed flat tables.
//
// Port layout per router (outputs and inputs use the same indices):
//   [0, a-1)                      local ports, one per other router in group
//   [a-1, a-1+h)                  global ports
//   [forward_ports(), +p)         ejection (outputs) / injection (inputs)
//
// Global link arrangement is the standard "absolute" one: group G's global
// channel j (j in [0, a*h), owned by router j/h at global port j%h) connects
// to group j if j < G else j+1, which gives exactly one link per group pair.
//
// `minimal_output` is a single array lookup: the next-output table over
// (router, destination router) pairs is built once in the constructor; at
// paper scale it is a ~8.5 MB int16 table, which is why route computation
// never shows up in the simulator profile.
//
// As a Topology plugin this class also owns the dragonfly-shaped half of the
// paper's routing mechanisms: the nonminimal candidate space is the a*h
// group-level global channels (MM+L) or the router's own h channels (CRG),
// Valiant draws uniformly over the non-minimal channels, phase 0 ends on the
// global hop, the VC schedule is the hop-class one (l0/l1/l2, g0/g1), and
// ECtN broadcasts each router's h global-port counters inside its group.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "topo/topology.hpp"
#include "util/types.hpp"

namespace dfsim {

class DragonflyTopology final : public Topology {
 public:
  explicit DragonflyTopology(const TopoParams& params);

  [[nodiscard]] const TopoParams& params() const { return params_; }
  [[nodiscard]] std::int32_t groups() const { return groups_; }

  [[nodiscard]] GroupId group_of(RouterId r) const { return r / params_.a; }
  [[nodiscard]] std::int32_t local_index(RouterId r) const {
    return r % params_.a;
  }

  [[nodiscard]] bool is_local_port(PortIndex port) const {
    return port < params_.a - 1;
  }
  [[nodiscard]] bool is_global_port(PortIndex port) const {
    return port >= params_.a - 1 && port < forward_ports();
  }
  [[nodiscard]] bool is_ejection_port(PortIndex port) const {
    return port >= forward_ports();
  }

  // --- Topology interface -------------------------------------------------

  [[nodiscard]] PortClass port_class(PortIndex port) const override {
    return port < params_.a - 1 ? PortClass::kLocalClass
                                : PortClass::kGlobalClass;
  }

  /// Neighbor router on the other end of `port` (local or global).
  [[nodiscard]] RouterId peer(RouterId r, PortIndex port) const override {
    return peer_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(forward_ports()) +
                 static_cast<std::size_t>(port)];
  }
  /// Input port on the peer router that this link feeds.
  [[nodiscard]] PortIndex peer_port(RouterId r, PortIndex port) const override {
    return peer_port_[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(forward_ports()) +
                      static_cast<std::size_t>(port)];
  }

  /// Next output port on the (unique) minimal route from router `r` to node
  /// `dest`: an ejection port when `dest` is attached to `r`.
  [[nodiscard]] PortIndex minimal_output(RouterId r,
                                         NodeId dest) const override {
    const RouterId dr = router_of_node(dest);
    const PortIndex port = min_port_[static_cast<std::size_t>(r) *
                                         static_cast<std::size_t>(routers()) +
                                     static_cast<std::size_t>(dr)];
    if (port != kEject) return port;
    return forward_ports() + (dest % params_.p);
  }

  [[nodiscard]] PortIndex route_toward(RouterId r,
                                       RouterId target) const override {
    return minimal_router_output(r, target);
  }

  [[nodiscard]] VcIndex vc_class(RouterId r, PortIndex out,
                                 std::int8_t vc_state,
                                 bool phase0) const override {
    (void)r;
    (void)out;
    (void)phase0;
    return vc_state;  // VC class == global hops taken; engine clamps
  }

  [[nodiscard]] HopTransition on_hop(RouterId r, PortIndex out,
                                     std::int8_t vc_state) const override {
    (void)r;
    if (out >= params_.a - 1) {
      // Global hop: advance the VC class, close any phase-0 detour, and
      // allow a fresh local detour in the next group.
      return {static_cast<std::int8_t>(vc_state + 1), true, true};
    }
    return {vc_state, false, false};
  }

  [[nodiscard]] std::int32_t min_channel(RouterId r, NodeId dst) const override;
  [[nodiscard]] std::int32_t nonmin_pool_size(
      RouterId r, bool own_router_only) const override;
  [[nodiscard]] bool nonmin_viable(RouterId r, NodeId dst,
                                   bool own_router_only) const override;
  [[nodiscard]] bool sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                   bool own_router_only,
                                   NonminCandidate& out) const override;
  [[nodiscard]] bool nonmin_candidate_at(RouterId r, NodeId dst,
                                         bool own_router_only,
                                         std::int32_t index,
                                         NonminCandidate& out) const override;
  [[nodiscard]] bool sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                    NonminCandidate& out) const override;

  [[nodiscard]] HopEstimate min_hops(RouterId r, RouterId dr) const override;
  [[nodiscard]] HopEstimate nonmin_hops(RouterId r,
                                        const NonminCandidate& cand,
                                        RouterId dr) const override;
  [[nodiscard]] bool min_remote_probe(RouterId r, NodeId dst,
                                      RemoteProbe& out) const override;
  [[nodiscard]] bool nonmin_remote_probe(RouterId r,
                                         const NonminCandidate& cand,
                                         RemoteProbe& out) const override;
  [[nodiscard]] bool min_link_probe(RouterId r, NodeId dst,
                                    RemoteProbe& out) const override;

  [[nodiscard]] bool can_misroute_in_transit(
      RouterId r, RouterId src_router, std::int8_t vc_state) const override {
    (void)r;
    (void)src_router;
    return vc_state == 0;  // source group only (no global hop taken yet)
  }
  [[nodiscard]] std::int32_t local_detour_ports(RouterId r) const override {
    (void)r;
    return params_.a - 1;
  }

  [[nodiscard]] bool supports_ectn() const override { return true; }
  [[nodiscard]] std::int32_t ectn_domains() const override { return groups_; }
  [[nodiscard]] std::int32_t ectn_channels() const override {
    return params_.a * params_.h;
  }
  [[nodiscard]] std::int32_t ectn_router_slots() const override {
    return params_.h;
  }
  [[nodiscard]] std::int32_t ectn_domain(RouterId r) const override {
    return group_of(r);
  }
  [[nodiscard]] EctnSlot ectn_slot(RouterId r, std::int32_t i) const override {
    return EctnSlot{(params_.a - 1) + i, group_of(r),
                    local_index(r) * params_.h + i};
  }

  [[nodiscard]] TrafficTopologyInfo traffic_info() const override;

  /// Same-class-first fallback: other global ports for a dead global link,
  /// other local routers for a dead local hop.
  [[nodiscard]] PortIndex fallback_output(RouterId r, RouterId target,
                                          PortIndex avoid) const override;

  // --- dragonfly-specific helpers (tests, micro benches, ECtN math) -------

  /// Next output port on the minimal route toward router `dr` (kInvalidPort
  /// when `r == dr`).
  [[nodiscard]] PortIndex minimal_router_output(RouterId r, RouterId dr) const {
    const PortIndex port = min_port_[static_cast<std::size_t>(r) *
                                         static_cast<std::size_t>(routers()) +
                                     static_cast<std::size_t>(dr)];
    return port == kEject ? kInvalidPort : port;
  }

  /// The router in group `g` owning the global link to group `gd` (g != gd).
  [[nodiscard]] RouterId minimal_global_source(GroupId g, GroupId gd) const {
    return global_src_[static_cast<std::size_t>(g) *
                           static_cast<std::size_t>(groups_) +
                       static_cast<std::size_t>(gd)];
  }
  /// The global port on `minimal_global_source(g, gd)` reaching `gd`.
  [[nodiscard]] PortIndex minimal_global_port(GroupId g, GroupId gd) const {
    return global_port_[static_cast<std::size_t>(g) *
                            static_cast<std::size_t>(groups_) +
                        static_cast<std::size_t>(gd)];
  }

  /// Destination group of group-level global channel `channel` in [0, a*h)
  /// of group `g`.
  [[nodiscard]] GroupId global_channel_dest(GroupId g,
                                            std::int32_t channel) const {
    return channel < g ? channel : channel + 1;
  }
  /// Group-level channel index [0, a*h) for router `r`'s global port.
  [[nodiscard]] std::int32_t global_channel_of(RouterId r,
                                               PortIndex global_port) const {
    return local_index(r) * params_.h + (global_port - (params_.a - 1));
  }

  /// Local output port on router `r` toward router `dest` in the same group.
  [[nodiscard]] PortIndex local_port_to(RouterId r, RouterId dest) const {
    const std::int32_t li = local_index(dest);
    const std::int32_t lr = local_index(r);
    return li < lr ? li : li - 1;
  }

  /// Hop count of the minimal route between two routers (0..3; at most one
  /// global hop plus at most one local hop on each side).
  [[nodiscard]] std::int32_t minimal_hops(RouterId from, RouterId to) const;

 private:
  // Sentinel inside min_port_ marking "destination router reached".
  static constexpr std::int16_t kEject = -2;

  /// Fills a candidate from a group-level channel id of `r`'s group.
  void fill_candidate(RouterId r, std::int32_t channel,
                      NonminCandidate& out) const;

  TopoParams params_;
  std::int32_t groups_ = 0;

  std::vector<RouterId> peer_;          // [routers x forward_ports]
  std::vector<std::int16_t> peer_port_; // [routers x forward_ports]
  std::vector<std::int16_t> min_port_;  // [routers x routers]
  std::vector<RouterId> global_src_;    // [groups x groups]
  std::vector<std::int16_t> global_port_;  // [groups x groups]
};

}  // namespace dfsim
