// Parallel sweep engine: every (routing x load) point of a figure is an
// independent simulation, so they fan out across a std::thread pool. Results
// come back in input order regardless of scheduling.
#pragma once

#include <vector>

#include "engine/experiment.hpp"
#include "sim/config.hpp"

namespace dfsim {

struct SweepPoint {
  SimParams params;
  SteadyOptions options;
};

/// Worker count: explicit argument > $DFSIM_THREADS > hardware concurrency,
/// clamped to the number of points.
[[nodiscard]] std::vector<SteadyResult> run_sweep(
    const std::vector<SweepPoint>& points, int threads = 0);

}  // namespace dfsim
