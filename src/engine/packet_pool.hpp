// Structure-of-arrays packet storage with a free list.
//
// A packet is an index into parallel arrays — the simulator hot loops touch
// only the field they need (e.g. the routing pass reads `target_router` and
// `flags` without dragging src/birth cache lines along). Freed indices are
// recycled; the arrays only grow while the in-flight population is still
// climbing toward steady state, and every growth bumps `grow_events` so the
// zero-allocation-after-warmup property is testable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dfsim {

class PacketPool {
 public:
  // Packet flag bits.
  static constexpr std::uint8_t kRouted = 1;        // injection decision made
  static constexpr std::uint8_t kMisGlobal = 2;     // globally misrouted
  static constexpr std::uint8_t kMisLocal = 4;      // took a local detour
  static constexpr std::uint8_t kInorder = 8;       // pinned to minimal path
  static constexpr std::uint8_t kPhase0 = 16;       // heading to misroute gateway
  static constexpr std::uint8_t kDetoured = 32;     // local detour in this group

  std::int32_t allocate() {
    if (!free_.empty()) {
      const std::int32_t id = free_.back();
      free_.pop_back();
      return id;
    }
    const auto id = static_cast<std::int32_t>(src.size());
    if (src.size() == src.capacity()) ++grow_events;  // heap growth
    src.push_back(0);
    dst.push_back(0);
    birth.push_back(0);
    target_router.push_back(-1);
    via_port.push_back(-1);
    g_hops.push_back(0);
    hops.push_back(0);
    flags.push_back(0);
    return id;
  }

  void release(std::int32_t id) { free_.push_back(id); }

  void reset_packet(std::int32_t id) {
    target_router[static_cast<std::size_t>(id)] = -1;
    via_port[static_cast<std::size_t>(id)] = -1;
    g_hops[static_cast<std::size_t>(id)] = 0;
    hops[static_cast<std::size_t>(id)] = 0;
    flags[static_cast<std::size_t>(id)] = 0;
  }

  /// Size every SoA array to exactly `n` slots, bypassing the free list.
  /// Sharded (threads > 1) runs use this: the arrays must never reallocate
  /// while worker threads hold references into them, so each shard draws ids
  /// from its own disjoint range (see Simulator::build_shards) and
  /// allocate()/release() go unused.
  void resize_slots(std::size_t n) {
    src.resize(n, 0);
    dst.resize(n, 0);
    birth.resize(n, 0);
    target_router.resize(n, -1);
    via_port.resize(n, -1);
    g_hops.resize(n, 0);
    hops.resize(n, 0);
    flags.resize(n, 0);
  }

  /// Preallocate capacity for `n` packets (and the free list) up front.
  void reserve(std::size_t n) {
    src.reserve(n);
    dst.reserve(n);
    birth.reserve(n);
    target_router.reserve(n);
    via_port.reserve(n);
    g_hops.reserve(n);
    hops.reserve(n);
    flags.reserve(n);
    free_.reserve(n);
  }

  [[nodiscard]] std::size_t capacity() const { return src.size(); }
  [[nodiscard]] std::size_t in_use() const { return src.size() - free_.size(); }

  // SoA fields, indexed by packet id.
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  std::vector<Cycle> birth;
  std::vector<RouterId> target_router;  // phase-0 gateway target
  std::vector<std::int16_t> via_port;   // global port to take at the gateway
  std::vector<std::int8_t> g_hops;      // global hops taken so far (VC class)
  std::vector<std::uint16_t> hops;      // total hops (fault livelock guard)
  std::vector<std::uint8_t> flags;

  /// Number of times the arrays grew (allocation events).
  std::int64_t grow_events = 0;

 private:
  std::vector<std::int32_t> free_;
};

}  // namespace dfsim
