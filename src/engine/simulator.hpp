// Topology-generic cycle-driven simulator with flat (structure-of-arrays)
// state. The topology (dragonfly, flattened butterfly, torus — see
// topo/topology.hpp) is a plugin: the engine owns queues, credits, links,
// allocation, metrics, delivery logging, and trace hooks; the Topology
// instance owns wiring, minimal routing, the VC deadlock schedule, and the
// nonminimal-candidate machinery; the routing mechanism (src/routing/) owns
// every misrouting decision and the state behind it (contention counters,
// triggers, the ECtN snapshot), reading engine state only through the
// routing::EngineProbe surface this class implements.
//
// Model summary
//  - Packet granularity, virtual cut-through-ish: a packet occupies its link
//    for packet_size cycles and arrives whole after link latency + router
//    pipeline + serialization.
//  - Input-queued routers: per (port, VC) fixed-capacity rings over one
//    shared slab; credits are tracked as free slots (reserved at grant time,
//    returned when the packet moves on downstream).
//  - A separable input-first allocator arbitrates the crossbar each cycle;
//    the router frequency speedup of Table I is modeled as extra allocator
//    iterations per cycle.
//  - Contention counters (owned by the routing mechanism, maintained by the
//    engine's head/tail hooks) track, per output port, how many packet
//    heads' *minimal* route uses that port — deliberately independent of
//    the actual routing decision (the property behind the paper's Figure 9).
//  - Global misrouting is decided by the mechanism at injection
//    (CB/UGAL/PB/VAL) or in transit (OLM/CB, where the topology's
//    in-transit policy allows); opportunistic local misrouting diverts a
//    blocked head one extra local hop on topologies that expose detour
//    ports.
//
// After warmup the steady-state step performs zero heap allocations: packets
// come from a pooled free list, queues and scratch are preallocated, and the
// event calendar reuses its buckets. `allocation_events()` exposes every
// growth event so tests can verify this.
//
// Active-set stepping: the per-cycle phases iterate only non-empty state.
// Occupied queues are tracked as per-router bitmask words plus a router
// summary mask (set in push_queue, cleared when a queue drains), so
// route_and_allocate costs O(active queues) instead of
// O(routers * radix * vcs); links with packets in flight live in a binary
// min-heap keyed by (front arrival, link id), so deliver_arrivals costs
// O(due links * log links) instead of a full link scan. Both structures are
// exact mirrors of the dense state (debug_check_active_state() cross-checks
// them against a brute-force scan) and preserve the dense scan's iteration
// order — bit scans walk queues in ascending (port, vc) order and the heap
// pops same-cycle arrivals in ascending link order — which keeps every RNG
// draw site in the original sequence. Refactors of this file must keep the
// 18 goldens in tests/test_engine_equivalence.cpp bit-exact (see
// ARCHITECTURE.md, "Bit-exactness rule").
//
// Sharded execution (engine.threads > 1): the router range is partitioned
// into contiguous shards, one barrier-synced worker thread per shard (the
// calling thread drives shard 0). Each shard owns its routers' queues,
// credits, allocators, contention counters, its slice of the occupancy
// bitmasks and due-link heap, a private RNG stream, a private traffic-model
// instance restricted to the shard's terminals, and private metrics. State
// that crosses a shard boundary — a packet departing onto a link whose
// downstream router lives elsewhere, a credit return to an upstream shard, a
// packet id going home to its allocating shard — travels through per-shard
// outboxes applied at the next cycle's merge point in fixed (source shard,
// FIFO) order, so results are a pure function of (params, seed,
// engine.threads). threads = 1 runs the exact serial code path and stays
// bit-exact with the goldens; threads > 1 is deterministic per shard count
// but intentionally NOT bit-exact across shard counts (cross-shard credits
// land one cycle late, remote occupancy probes read a cycle-start snapshot,
// and each shard draws from its own RNG stream). See ARCHITECTURE.md,
// "Sharded execution".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/ectn_state.hpp"
#include "engine/packet_pool.hpp"
#include "engine/spin_barrier.hpp"
#include "fault/fault_model.hpp"
#include "router/allocator.hpp"
#include "routing/mechanism.hpp"
#include "sim/config.hpp"
#include "telemetry/packet_trace.hpp"
#include "telemetry/phase_profiler.hpp"
#include "telemetry/telemetry_sink.hpp"
#include "topo/topology.hpp"
#include "traffic/model.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim {

class Simulator : private routing::EngineProbe {
 public:
  struct Delivery {
    Cycle birth = 0;
    Cycle latency = 0;
    bool misrouted = false;       // globally misrouted
    bool minimal_path = false;    // no global and no local misroute
  };

  struct Metrics {
    std::int64_t delivered = 0;
    std::int64_t delivered_phits = 0;
    double latency_sum = 0.0;
    std::int64_t misrouted = 0;       // global misroutes among delivered
    std::int64_t local_misrouted = 0;
    std::int64_t minimal_path = 0;
    std::int64_t generated = 0;
    std::int64_t refused = 0;  // generation attempts dropped at a full queue
    // Fault-overlay accounting; all stay 0 while faults are disabled.
    std::int64_t dropped = 0;        // in flight on a link when it went down
    std::int64_t undeliverable = 0;  // dropped by the hop-cap livelock guard
    std::int64_t dead_link_hops = 0; // departures onto a down link (hard
                                     // invariant: must remain 0)
    LatencyHistogram latency_hist;  // log2-bucketed, for p50/p95/p99

    [[nodiscard]] double mean_latency() const {
      return delivered > 0 ? latency_sum / static_cast<double>(delivered) : 0.0;
    }
    [[nodiscard]] double misrouted_fraction() const {
      return delivered > 0
                 ? static_cast<double>(misrouted) / static_cast<double>(delivered)
                 : 0.0;
    }
    [[nodiscard]] double minimal_path_fraction() const {
      return delivered > 0 ? static_cast<double>(minimal_path) /
                                 static_cast<double>(delivered)
                           : 0.0;
    }
  };

  /// Builds the topology `params.topology` selects via topo/factory.hpp.
  explicit Simulator(const SimParams& params);
  /// Runs on a caller-provided topology (tests, custom instances).
  Simulator(const SimParams& params, std::unique_ptr<const Topology> topology);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  void step();
  void run(Cycle cycles);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const SimParams& params() const { return params_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  /// Shard count actually in use: min(engine.threads, routers).
  [[nodiscard]] std::int32_t shard_count() const { return n_shards_; }

  /// Resets measurement counters; metrics() accumulates from this point.
  void begin_measurement();
  /// Measurement-window metrics; with threads > 1 the per-shard metrics are
  /// merged in ascending shard order on each call.
  [[nodiscard]] const Metrics& metrics() const;
  [[nodiscard]] Cycle measured_cycles() const { return now_ - measure_start_; }

  /// Lifetime (never reset) packet accounting for conservation checks:
  /// generated - refused == delivered + dropped + undeliverable +
  /// packets_in_network() holds at every cycle.
  struct Totals {
    std::int64_t generated = 0;
    std::int64_t refused = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t undeliverable = 0;
  };
  [[nodiscard]] const Totals& lifetime_totals() const;
  /// Packets currently held in queues or in flight on links (cross-shard
  /// handoffs still in an outbox included).
  [[nodiscard]] std::int64_t packets_in_network() const;
  /// Unaccounted packets (0 when conservation holds exactly).
  [[nodiscard]] std::int64_t conservation_error() const {
    const Totals& t = lifetime_totals();
    return t.generated - t.refused -
           (t.delivered + t.dropped + t.undeliverable + packets_in_network());
  }

  /// Accepted load in phits/node/cycle over the measurement window; 0 while
  /// the window is empty (guards the division right after
  /// begin_measurement()).
  [[nodiscard]] double throughput() const;
  /// Offered load actually generated (phits/node/cycle) over the window;
  /// 0 while the window is empty.
  [[nodiscard]] double generated_load() const;
  /// Packets waiting in injection queues, per node.
  [[nodiscard]] double backlog_per_node() const;

  /// Swaps the traffic pattern mid-run (transient experiments).
  void set_traffic(const TrafficParams& traffic);
  [[nodiscard]] const TrafficModel& traffic_model() const {
    return *shards_[0].traffic;
  }

  /// Records every subsequent injection attempt as a (cycle, src, dst)
  /// trace; replay it with TrafficKind::kTrace + traffic.trace_path (see
  /// traffic/trace.hpp for the format). When recording starts at
  /// construction, replay under the same SimParams and seed reproduces the
  /// run bit-exactly: the traffic model draws from its own RNG, so the
  /// routing RNG stream is unchanged. Recording after a warmup still
  /// replays deterministically, but into a cold network (cycles are
  /// re-based to the recording start and the warmup traffic is not in the
  /// trace), so metrics need not match the recording run.
  /// Requires engine.threads = 1 (a shard records only its own sources).
  void start_trace_recording(std::size_t reserve_records = 1u << 16);
  void write_recorded_trace(const std::string& path) const {
    shards_[0].traffic->write_recorded(path);
  }

  /// Per-delivery records for birth-bucketed transient analysis. With
  /// threads > 1 the log is the concatenation of the per-shard logs in
  /// ascending shard order (deterministic, but not birth-sorted).
  void enable_delivery_log();
  [[nodiscard]] const std::vector<Delivery>& delivery_log() const;

  /// Live ECtN broadcast-overhead measurement (Section VI-B ablation).
  /// Requires a topology with supports_ectn() and engine.threads = 1.
  void enable_ectn_monitor(std::int32_t async_mult, std::int32_t urgent_delta);
  [[nodiscard]] const EctnOverheadMonitor& ectn_monitor() const {
    return ectn_monitor_;
  }

  /// Spatial telemetry frames (params.telemetry.enabled): per-router /
  /// per-link counters sampled every telemetry.sample_period cycles. See
  /// src/telemetry/telemetry_sink.hpp and telemetry/heatmap.hpp.
  [[nodiscard]] bool telemetry_enabled() const { return telemetry_on_; }
  [[nodiscard]] const telemetry::TelemetrySink& telemetry_sink() const {
    return sink_;
  }

  /// Packet-lifecycle tracing (params.trace.enabled): deterministically
  /// sampled per-packet event records, exported via
  /// telemetry/packet_trace.hpp's binary and Chrome trace-event writers.
  [[nodiscard]] bool trace_enabled() const { return trace_on_; }
  [[nodiscard]] const telemetry::PacketTracer& packet_tracer() const {
    return tracer_;
  }

  /// Per-phase wall-time profiling (dfsim_run perf --phases). API-enabled
  /// like the ECtN monitor: wall time never affects results, so there is no
  /// config key and the config hash is untouched. Serial engine only.
  void enable_phase_profiler() {
    if (n_shards_ > 1) {
      throw std::invalid_argument(
          "phase profiler requires engine.threads = 1");
    }
    profile_on_ = true;
    profiler_.reset();
  }
  [[nodiscard]] const telemetry::PhaseProfiler& phase_profiler() const {
    return profiler_;
  }

  /// Growth/allocation events since construction (pool growth, calendar,
  /// log, or outbox growth). Constant across steps == steady state
  /// allocates nothing.
  [[nodiscard]] std::int64_t allocation_events() const;
  /// Packet-pool heap growths alone (0 == the reserve bound held).
  [[nodiscard]] std::int64_t pool_grow_events() const {
    return pool_.grow_events;
  }

  /// Debug cross-check of the active-set structures against a brute-force
  /// scan of the dense state: every queue-occupancy bit matches q_size, the
  /// router summary mask matches the queue bits, the due-link heap holds
  /// exactly one well-formed entry per non-empty link ring, and the packet
  /// pool population equals the packets sitting in queues plus rings (plus,
  /// sharded, handoffs waiting in an outbox).
  /// O(routers * radix * vcs) and may allocate — tests only, not hot path.
  [[nodiscard]] bool debug_check_active_state() const;

  /// Test hook: staggers worker-thread start by `us * shard_index`
  /// microseconds on every dispatch, to shake out schedules under the
  /// determinism tests. Applies to simulators process-wide; 0 disables.
  static void debug_set_shard_jitter(std::int32_t us);

 private:
  struct LinkEvent {
    Cycle arrival = 0;
    std::int32_t packet = kInvalidPacket;
    std::int32_t down_queue = -1;
  };

  /// Link-id field width in the due-link heap key; the remaining 40 high
  /// bits carry the arrival cycle (bounds: < 2^24 links, < 2^40 cycles —
  /// both orders of magnitude past paper scale and any practical run).
  static constexpr int kLinkBits = 24;

  /// Seed stride between shard RNG streams (routing and traffic). Shard 0
  /// uses the raw seed, so the serial stream is the threads = 1 stream.
  static constexpr std::uint64_t kShardSeedStride = 0xA24BAED4963EE407ull;

  /// Cross-shard event carried through the destination shard's inbox and
  /// applied at the next cycle's merge point (merge_inboxes) in fixed
  /// (source shard, FIFO) order.
  struct ShardMessage {
    enum class Kind : std::uint8_t {
      kLinkSend,  // packet departs onto a link owned downstream
      kCredit,    // credit return for a queue whose upstream is remote
      kFreeId,    // packet id going home to its allocating shard
    };
    Kind kind = Kind::kLinkSend;
    std::int32_t link = -1;                // kLinkSend: flat link id
    std::int32_t queue = -1;               // kLinkSend/kCredit: flat queue
    std::int32_t packet = kInvalidPacket;  // kLinkSend/kFreeId
    Cycle arrival = 0;                     // kLinkSend
  };

  /// One worker shard: a contiguous router range [r_lo, r_hi) plus every
  /// piece of per-cycle mutable state that only that range's owner may
  /// touch. With threads = 1, shard 0 spans everything and the serial step
  /// runs against it unchanged (bit-exactness anchor). Cache-line aligned
  /// so neighboring shards never share a line through this struct.
  struct alignas(64) Shard {
    std::int32_t index = 0;
    RouterId r_lo = 0;
    RouterId r_hi = 0;
    NodeId n_lo = 0;  // = r_lo * concentration
    NodeId n_hi = 0;  // = r_hi * concentration
    Rng rng{0};       // routing decisions for owned routers
    std::unique_ptr<TrafficModel> traffic;  // restricted to [n_lo, n_hi)
    Metrics metrics;
    Totals totals;
    AllocRequestBatch request_batch;  // per-router sparse requests (reused)
    // Router summary mask slice: bit (r - r_lo) of word (r - r_lo) / 64.
    std::vector<std::uint64_t> router_active;
    // Due-link min-heap over links this shard owns (downstream side).
    std::vector<std::uint64_t> link_heap;
    std::vector<Delivery> deliveries;
    std::int64_t log_growth = 0;
    // Sharded packet-id accounting: ids from [base[i], base[i+1]) are
    // allocated here; `live` is this shard's net allocate-minus-release
    // delta, so the sum over shards is the exact in-network population.
    std::vector<std::int32_t> free_ids;
    std::int64_t live = 0;
    std::vector<std::vector<ShardMessage>> outbox;  // one per dest shard
    std::int64_t msg_growth = 0;
  };

  // --- construction helpers
  void build_layout();
  void build_shards();

  // --- fault overlay
  /// Refreshes the health map at a fault-event cycle and schedules the next
  /// one. Global state; sharded runs execute it on shard 0 only, behind a
  /// barrier.
  void advance_faults_serial();
  /// Drops in-flight packets on this shard's newly-dead links (credits
  /// returned, counted as dropped) and rebuilds the shard's due-link heap.
  void purge_faulted_rings(Shard& sh);

  // --- per-cycle phases
  void deliver_arrivals(Shard& sh);
  void inject_traffic(Shard& sh);
  void route_and_allocate(Shard& sh);
  /// Mechanism update window plus (when enabled) the ECtN overhead-monitor
  /// scan and the telemetry update count, for this shard's router range.
  void update_mechanism(Shard& sh);

  // --- queue helpers (flat queue index q)
  [[nodiscard]] std::int32_t queue_index(RouterId r, PortIndex in_port,
                                         VcIndex vc) const {
    return (r * radix_ + in_port) * vmax_ + vc;
  }
  void push_queue(Shard& sh, std::int32_t q, std::int32_t packet);
  std::int32_t pop_queue(Shard& sh, std::int32_t q);
  void on_new_head(Shard& sh, std::int32_t q);

  // --- active-set maintenance (queue occupancy bits + due-link heap)
  void activate_queue(Shard& sh, std::int32_t q);
  void deactivate_queue(Shard& sh, std::int32_t q);
  [[nodiscard]] static std::uint64_t link_key(Cycle arrival,
                                              std::int32_t link) {
    return (static_cast<std::uint64_t>(arrival) << kLinkBits) |
           static_cast<std::uint64_t>(link);
  }
  void link_heap_push(Shard& sh, std::uint64_t key);
  std::uint64_t link_heap_pop(Shard& sh);
  /// Appends `ev` to link `flat`'s in-flight ring, registering the ring in
  /// the shard's due-link heap when it goes non-empty.
  void ring_insert(Shard& sh, std::int32_t flat, const LinkEvent& ev);

  // --- sharded execution
  void worker_loop(std::int32_t shard_index);
  void run_parallel(Cycle cycles);
  /// One cycle of shard `sh`, barrier-aligned with every other shard.
  void cycle_parallel(Shard& sh);
  /// Applies every message addressed to `sh` (source shards in ascending
  /// order, FIFO within each), then refreshes this shard's slice of the
  /// remote-occupancy snapshot.
  void merge_inboxes(Shard& sh);
  void push_msg(Shard& sh, std::int32_t dst, const ShardMessage& msg);
  /// Pool front-end: the serial engine uses the growable pool free list;
  /// sharded engines draw from the shard's private id range (-1 when the
  /// range is exhausted — the injection is then refused deterministically).
  [[nodiscard]] std::int32_t allocate_packet(Shard& sh);
  void release_packet(Shard& sh, std::int32_t packet);
  /// True when the coming cycle is a mechanism (or monitor) update cycle;
  /// pure function of shared immutable config plus now_, so every shard
  /// agrees on the barrier schedule.
  [[nodiscard]] bool mechanism_update_due() const;
  /// The ECtN overhead monitor's own schedule (API-enabled, serial only).
  [[nodiscard]] bool monitor_update_due() const;

  // --- observability (every call site is gated behind telemetry_on_ /
  // trace_on_ / profile_on_, so disabled runs take predicted-false branches
  // only — the bit-exactness and zero-alloc invariants hold with the layer
  // compiled in)
  /// Gauge scan (queue occupancy, counter values, down links) + frame
  /// commit at the end of a sample period. Cold path, off the inner loops.
  void flush_telemetry();
  /// step() body with steady_clock stamps around each phase.
  void step_profiled();
  /// Serial step: the exact pre-sharding cycle sequence against shard 0.
  void step_serial();
  /// Misroute attribution shared by sink and tracer.
  void note_misroute(RouterId r, std::int32_t packet,
                     telemetry::MisrouteCause cause) {
    if (telemetry_on_) sink_.count_misroute(r, cause);
    if (trace_on_) {
      tracer_.record_hop(now_, packet, r,
                         telemetry::TraceEvent::kRouteDecision,
                         static_cast<std::uint8_t>(cause));
    }
  }

  // --- routing
  void decide_injection(Shard& sh, RouterId r, std::int32_t packet);
  [[nodiscard]] PortIndex route_output(RouterId r, std::int32_t packet) const;
  /// route_output plus fault-fallback attribution: when telemetry is on and
  /// the chosen output differs from the healthy-path preference, the
  /// divergence is counted as a kFaultFallback misroute.
  [[nodiscard]] PortIndex routed_output(RouterId r, std::int32_t packet);
  void maybe_local_detour(Shard& sh, RouterId r, std::int32_t q);
  void maybe_transit_misroute(Shard& sh, RouterId r, std::int32_t q,
                              std::int32_t packet);
  void apply_global_misroute(std::int32_t packet, const NonminCandidate& cand);

  // --- state probes (the routing::EngineProbe surface the mechanism reads
  // engine state through)
  [[nodiscard]] std::int32_t occupancy_phits(RouterId r,
                                             PortIndex out) const override;
  [[nodiscard]] std::int32_t port_capacity_phits(PortIndex out) const override;
  /// occupancy_phits through the cycle-start snapshot when `r` belongs to
  /// another shard (live credit state of a remote router is unreadable
  /// mid-cycle); the live value — serial behavior — otherwise.
  [[nodiscard]] std::int32_t probe_occupancy_phits(std::int32_t shard,
                                                   RouterId r,
                                                   PortIndex out) const override;
  /// Free credits on the VC a packet in state `vc_state` would take on
  /// (r, out) — OLM's blocked test.
  [[nodiscard]] std::int32_t free_credits(RouterId r, PortIndex out,
                                          std::int8_t vc_state) const override;
  [[nodiscard]] std::int32_t fault_extra_latency(RouterId r,
                                                 PortIndex out) const override;
  [[nodiscard]] bool fault_overlay() const override { return fault_on_; }
  /// Configured VC count of `out`'s port class.
  [[nodiscard]] std::int32_t class_vcs(PortIndex out) const {
    if (out >= fwd_) return params_.router.vcs_injection;
    return topo_.port_class(out) == PortClass::kLocalClass
               ? params_.router.vcs_local
               : params_.router.vcs_global;
  }
  /// Downstream VC for `packet` taking `out` at `r`: the topology's VC
  /// class clamped to the port class's configured VC count.
  [[nodiscard]] VcIndex vc_for(RouterId r, PortIndex out,
                               std::int32_t packet) const;
  /// HopEstimate in cycles under this run's link latencies.
  [[nodiscard]] Cycle hops_to_latency(const HopEstimate& est) const {
    return static_cast<Cycle>(est.local_hops) * params_.link.local_latency +
           static_cast<Cycle>(est.global_hops) * params_.link.global_latency;
  }
  [[nodiscard]] std::int32_t flat_port(RouterId r, PortIndex port) const {
    return r * radix_ + port;
  }

  void depart(Shard& sh, RouterId r, const AllocGrant& grant);
  void deliver(Shard& sh, RouterId r, std::int32_t packet);

  // --- immutable shape (topo_owner_ must precede every member that reads
  // the topology during construction)
  SimParams params_;
  std::unique_ptr<const Topology> topo_owner_;
  const Topology& topo_;
  std::int32_t radix_ = 0;      // input/output ports per router
  std::int32_t fwd_ = 0;        // forward (link) ports per router
  std::int32_t vmax_ = 0;       // max VCs across port classes
  std::int32_t psize_ = 0;      // packet size in phits

  // --- per-queue flat state (size routers * radix * vmax); a queue's
  // slots/size/head belong to its router's shard, its credit counter
  // (q_free_) to the upstream shard that spends the credits
  std::vector<std::int32_t> q_offset_;   // slab offset
  std::vector<std::int32_t> q_cap_;      // capacity in packets (0 = unused vc)
  std::vector<std::int32_t> q_head_;
  std::vector<std::int32_t> q_size_;
  std::vector<std::int32_t> q_free_;     // credits: cap - size - in-flight
  std::vector<std::int16_t> q_counted_;  // port counted in contention counters
  std::vector<std::int16_t> q_request_;  // port requested from the allocator
  std::vector<std::int16_t> q_wait_;     // bounded head-wait (head_wait.hpp)
  std::vector<std::int32_t> slab_;       // ring storage for all queues

  // --- per-output flat state (size routers * radix)
  std::vector<Cycle> out_busy_until_;
  std::vector<std::int32_t> down_queue_base_;  // downstream (router,port) base
  std::vector<std::int32_t> link_delay_;       // latency + pipeline

  // --- routers
  std::vector<SeparableAllocator> allocators_;

  // --- active sets: queue-occupancy bits (bit ip*vmax+vc of router r's
  // word block; ascending-bit iteration == the dense scan order). The
  // router summary mask lives in each shard (Shard::router_active).
  // Maintained by push_queue/pop_queue only.
  std::int32_t queue_words_per_router_ = 0;
  std::vector<std::uint64_t> queue_active_;   // routers * words_per_router

  // --- packets & per-link in-flight rings (fixed capacity: a link carries
  // at most delay/packet_size + 2 packets at once); a ring belongs to the
  // downstream router's shard
  PacketPool pool_;
  std::vector<LinkEvent> ring_slab_;
  std::vector<std::int32_t> ring_offset_;  // per (router, out port)
  std::vector<std::int32_t> ring_cap_;
  std::vector<std::int32_t> ring_head_;
  std::vector<std::int32_t> ring_count_;

  // --- sharded execution (n_shards_ == 1: shards_[0] spans everything and
  // the tables below stay empty)
  std::int32_t n_shards_ = 1;
  std::vector<Shard> shards_;
  std::vector<std::int32_t> shard_of_router_;  // size routers
  // Owner of each queue's credit counter, per flat input port
  // (routers * radix): the shard of the router upstream of that queue.
  std::vector<std::int32_t> credit_owner_;
  // Owner of each link's in-flight ring, per flat output port: the shard of
  // the downstream router.
  std::vector<std::int32_t> link_owner_;
  // Packet-id range bounds per shard (n_shards + 1 entries).
  std::vector<std::int32_t> shard_id_base_;
  // Cycle-start occupancy snapshot (phits) per flat forward port, refreshed
  // by each port's owner at the merge point; read by the mechanism's remote
  // probes (wants_remote_probes: UGAL-G, PB). Only allocated when such
  // probes exist (snap_on_).
  bool snap_on_ = false;
  std::vector<std::int32_t> occ_snap_;
  // Worker dispatch: workers park on cv_ between run() calls (no spinning
  // while the simulator is idle) and spin only on the intra-cycle barrier.
  std::unique_ptr<SpinBarrier> barrier_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_ = 0;        // bumped per dispatch, guarded by mu_
  std::int32_t done_count_ = 0;    // workers finished this dispatch
  Cycle pending_cycles_ = 0;
  bool stop_ = false;
  // Next-cycle phase schedule, written by shard 0 in its exclusive window
  // (between the last two barriers of a cycle) and read by every shard
  // after the barrier — keeps all shards' barrier counts aligned without
  // racing on fault_next_event_.
  bool fault_cycle_ = false;
  bool mech_cycle_ = false;
  static std::atomic<std::int32_t> jitter_us_;
  // Merged-view caches for the const accessors (threads > 1 only).
  mutable Metrics merged_metrics_;
  mutable Totals merged_totals_;
  mutable std::vector<Delivery> merged_deliveries_;

  // --- routing mechanism (src/routing/factory.hpp picks the instance; the
  // capability flags are cached so disabled decision paths cost one
  // predicted branch)
  std::unique_ptr<routing::RoutingMechanism> routing_;
  bool inject_decides_ = false;
  bool transit_decides_ = false;
  bool throttle_on_ = false;
  EctnOverheadMonitor ectn_monitor_;
  bool ectn_monitor_enabled_ = false;
  std::int32_t ectn_bits_per_counter_ = 4;
  std::vector<std::int16_t> ectn_scratch_;

  // --- fault overlay (members inert when fault_on_ is false; the engine
  // then takes no fault branches and results are bit-exact with the
  // pre-overlay engine)
  bool fault_on_ = false;
  FaultModel fault_;
  LinkHealthMap health_;
  Cycle fault_next_event_ = 0;
  std::int32_t hop_cap_ = 0;

  // --- observability (members inert unless enabled; the engine then takes
  // no telemetry/trace/profile branches and results are bit-exact with
  // builds that predate the layer — ARCHITECTURE.md invariant 11)
  bool telemetry_on_ = false;
  bool trace_on_ = false;
  bool profile_on_ = false;
  Cycle telemetry_next_sample_ = 0;
  telemetry::TelemetrySink sink_;
  telemetry::PacketTracer tracer_;
  telemetry::PhaseProfiler profiler_;

  // --- time & measurement
  Cycle now_ = 0;
  Cycle measure_start_ = 0;
  bool log_deliveries_ = false;
};

}  // namespace dfsim
