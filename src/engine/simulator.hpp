// Topology-generic cycle-driven simulator with flat (structure-of-arrays)
// state. The topology (dragonfly, flattened butterfly, torus — see
// topo/topology.hpp) is a plugin: the engine owns queues, credits, links,
// allocation, contention counters, metrics, delivery logging, and trace
// hooks; the Topology instance owns wiring, minimal routing, the VC
// deadlock schedule, and the nonminimal-candidate machinery.
//
// Model summary
//  - Packet granularity, virtual cut-through-ish: a packet occupies its link
//    for packet_size cycles and arrives whole after link latency + router
//    pipeline + serialization.
//  - Input-queued routers: per (port, VC) fixed-capacity rings over one
//    shared slab; credits are tracked as free slots (reserved at grant time,
//    returned when the packet moves on downstream).
//  - A separable input-first allocator arbitrates the crossbar each cycle;
//    the router frequency speedup of Table I is modeled as extra allocator
//    iterations per cycle.
//  - Contention counters track, per output port, how many packet heads'
//    *minimal* route uses that port — deliberately independent of the actual
//    routing decision (the property behind the paper's Figure 9).
//  - Global misrouting is decided at injection (CB/UGAL/PB/VAL) or in
//    transit (OLM/CB, where the topology's in-transit policy allows);
//    opportunistic local misrouting diverts a blocked head one extra local
//    hop on topologies that expose detour ports.
//
// After warmup the steady-state step performs zero heap allocations: packets
// come from a pooled free list, queues and scratch are preallocated, and the
// event calendar reuses its buckets. `allocation_events()` exposes every
// growth event so tests can verify this.
//
// Active-set stepping: the per-cycle phases iterate only non-empty state.
// Occupied queues are tracked as per-router bitmask words plus a router
// summary mask (set in push_queue, cleared when a queue drains), so
// route_and_allocate costs O(active queues) instead of
// O(routers * radix * vcs); links with packets in flight live in a binary
// min-heap keyed by (front arrival, link id), so deliver_arrivals costs
// O(due links * log links) instead of a full link scan. Both structures are
// exact mirrors of the dense state (debug_check_active_state() cross-checks
// them against a brute-force scan) and preserve the dense scan's iteration
// order — bit scans walk queues in ascending (port, vc) order and the heap
// pops same-cycle arrivals in ascending link order — which keeps every RNG
// draw site in the original sequence. Refactors of this file must keep the
// 18 goldens in tests/test_engine_equivalence.cpp bit-exact (see
// ARCHITECTURE.md, "Bit-exactness rule").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/contention_counters.hpp"
#include "core/ectn_state.hpp"
#include "core/triggers.hpp"
#include "engine/packet_pool.hpp"
#include "fault/fault_model.hpp"
#include "router/allocator.hpp"
#include "sim/config.hpp"
#include "telemetry/packet_trace.hpp"
#include "telemetry/phase_profiler.hpp"
#include "telemetry/telemetry_sink.hpp"
#include "topo/topology.hpp"
#include "traffic/model.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim {

class Simulator {
 public:
  struct Delivery {
    Cycle birth = 0;
    Cycle latency = 0;
    bool misrouted = false;       // globally misrouted
    bool minimal_path = false;    // no global and no local misroute
  };

  struct Metrics {
    std::int64_t delivered = 0;
    std::int64_t delivered_phits = 0;
    double latency_sum = 0.0;
    std::int64_t misrouted = 0;       // global misroutes among delivered
    std::int64_t local_misrouted = 0;
    std::int64_t minimal_path = 0;
    std::int64_t generated = 0;
    std::int64_t refused = 0;  // generation attempts dropped at a full queue
    // Fault-overlay accounting; all stay 0 while faults are disabled.
    std::int64_t dropped = 0;        // in flight on a link when it went down
    std::int64_t undeliverable = 0;  // dropped by the hop-cap livelock guard
    std::int64_t dead_link_hops = 0; // departures onto a down link (hard
                                     // invariant: must remain 0)
    LatencyHistogram latency_hist;  // log2-bucketed, for p50/p95/p99

    [[nodiscard]] double mean_latency() const {
      return delivered > 0 ? latency_sum / static_cast<double>(delivered) : 0.0;
    }
    [[nodiscard]] double misrouted_fraction() const {
      return delivered > 0
                 ? static_cast<double>(misrouted) / static_cast<double>(delivered)
                 : 0.0;
    }
    [[nodiscard]] double minimal_path_fraction() const {
      return delivered > 0 ? static_cast<double>(minimal_path) /
                                 static_cast<double>(delivered)
                           : 0.0;
    }
  };

  /// Builds the topology `params.topology` selects via topo/factory.hpp.
  explicit Simulator(const SimParams& params);
  /// Runs on a caller-provided topology (tests, custom instances).
  Simulator(const SimParams& params, std::unique_ptr<const Topology> topology);

  void step();
  void run(Cycle cycles);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] const SimParams& params() const { return params_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Resets measurement counters; metrics() accumulates from this point.
  void begin_measurement();
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] Cycle measured_cycles() const { return now_ - measure_start_; }

  /// Lifetime (never reset) packet accounting for conservation checks:
  /// generated - refused == delivered + dropped + undeliverable +
  /// packets_in_network() holds at every cycle.
  struct Totals {
    std::int64_t generated = 0;
    std::int64_t refused = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t undeliverable = 0;
  };
  [[nodiscard]] const Totals& lifetime_totals() const { return totals_; }
  /// Packets currently held in queues or in flight on links.
  [[nodiscard]] std::int64_t packets_in_network() const {
    return static_cast<std::int64_t>(pool_.in_use());
  }
  /// Unaccounted packets (0 when conservation holds exactly).
  [[nodiscard]] std::int64_t conservation_error() const {
    return totals_.generated - totals_.refused -
           (totals_.delivered + totals_.dropped + totals_.undeliverable +
            packets_in_network());
  }

  /// Accepted load in phits/node/cycle over the measurement window; 0 while
  /// the window is empty (guards the division right after
  /// begin_measurement()).
  [[nodiscard]] double throughput() const;
  /// Offered load actually generated (phits/node/cycle) over the window;
  /// 0 while the window is empty.
  [[nodiscard]] double generated_load() const;
  /// Packets waiting in injection queues, per node.
  [[nodiscard]] double backlog_per_node() const;

  /// Swaps the traffic pattern mid-run (transient experiments).
  void set_traffic(const TrafficParams& traffic);
  [[nodiscard]] const TrafficModel& traffic_model() const { return traffic_; }

  /// Records every subsequent injection attempt as a (cycle, src, dst)
  /// trace; replay it with TrafficKind::kTrace + traffic.trace_path (see
  /// traffic/trace.hpp for the format). When recording starts at
  /// construction, replay under the same SimParams and seed reproduces the
  /// run bit-exactly: the traffic model draws from its own RNG, so the
  /// routing RNG stream is unchanged. Recording after a warmup still
  /// replays deterministically, but into a cold network (cycles are
  /// re-based to the recording start and the warmup traffic is not in the
  /// trace), so metrics need not match the recording run.
  void start_trace_recording(std::size_t reserve_records = 1u << 16);
  void write_recorded_trace(const std::string& path) const {
    traffic_.write_recorded(path);
  }

  /// Per-delivery records for birth-bucketed transient analysis.
  void enable_delivery_log();
  [[nodiscard]] const std::vector<Delivery>& delivery_log() const {
    return deliveries_;
  }

  /// Live ECtN broadcast-overhead measurement (Section VI-B ablation).
  /// Requires a topology with supports_ectn().
  void enable_ectn_monitor(std::int32_t async_mult, std::int32_t urgent_delta);
  [[nodiscard]] const EctnOverheadMonitor& ectn_monitor() const {
    return ectn_monitor_;
  }

  /// Spatial telemetry frames (params.telemetry.enabled): per-router /
  /// per-link counters sampled every telemetry.sample_period cycles. See
  /// src/telemetry/telemetry_sink.hpp and telemetry/heatmap.hpp.
  [[nodiscard]] bool telemetry_enabled() const { return telemetry_on_; }
  [[nodiscard]] const telemetry::TelemetrySink& telemetry_sink() const {
    return sink_;
  }

  /// Packet-lifecycle tracing (params.trace.enabled): deterministically
  /// sampled per-packet event records, exported via
  /// telemetry/packet_trace.hpp's binary and Chrome trace-event writers.
  [[nodiscard]] bool trace_enabled() const { return trace_on_; }
  [[nodiscard]] const telemetry::PacketTracer& packet_tracer() const {
    return tracer_;
  }

  /// Per-phase wall-time profiling (dfsim_run perf --phases). API-enabled
  /// like the ECtN monitor: wall time never affects results, so there is no
  /// config key and the config hash is untouched.
  void enable_phase_profiler() {
    profile_on_ = true;
    profiler_.reset();
  }
  [[nodiscard]] const telemetry::PhaseProfiler& phase_profiler() const {
    return profiler_;
  }

  /// Growth/allocation events since construction (pool growth, calendar or
  /// log growth). Constant across steps == steady state allocates nothing.
  [[nodiscard]] std::int64_t allocation_events() const;
  /// Packet-pool heap growths alone (0 == the reserve bound held).
  [[nodiscard]] std::int64_t pool_grow_events() const {
    return pool_.grow_events;
  }

  /// Debug cross-check of the active-set structures against a brute-force
  /// scan of the dense state: every queue-occupancy bit matches q_size, the
  /// router summary mask matches the queue bits, the due-link heap holds
  /// exactly one well-formed entry per non-empty link ring, and the packet
  /// pool population equals the packets sitting in queues plus rings.
  /// O(routers * radix * vcs) and may allocate — tests only, not hot path.
  [[nodiscard]] bool debug_check_active_state() const;

 private:
  struct LinkEvent {
    Cycle arrival = 0;
    std::int32_t packet = kInvalidPacket;
    std::int32_t down_queue = -1;
  };

  /// Link-id field width in the due-link heap key; the remaining 40 high
  /// bits carry the arrival cycle (bounds: < 2^24 links, < 2^40 cycles —
  /// both orders of magnitude past paper scale and any practical run).
  static constexpr int kLinkBits = 24;

  // --- construction helpers
  void build_layout();

  // --- fault overlay
  /// Refreshes the health map at a fault-event cycle, drops in-flight
  /// packets on newly-dead links (credits returned, counted as dropped),
  /// rebuilds the due-link heap, and schedules the next event.
  void advance_faults();

  // --- per-cycle phases
  void deliver_arrivals();
  void inject_traffic();
  void route_and_allocate();
  void update_ectn();

  // --- queue helpers (flat queue index q)
  [[nodiscard]] std::int32_t queue_index(RouterId r, PortIndex in_port,
                                         VcIndex vc) const {
    return (r * radix_ + in_port) * vmax_ + vc;
  }
  void push_queue(std::int32_t q, std::int32_t packet);
  std::int32_t pop_queue(std::int32_t q);
  void on_new_head(std::int32_t q);

  // --- active-set maintenance (queue occupancy bits + due-link heap)
  void activate_queue(std::int32_t q);
  void deactivate_queue(std::int32_t q);
  [[nodiscard]] static std::uint64_t link_key(Cycle arrival,
                                              std::int32_t link) {
    return (static_cast<std::uint64_t>(arrival) << kLinkBits) |
           static_cast<std::uint64_t>(link);
  }
  void link_heap_push(std::uint64_t key);
  std::uint64_t link_heap_pop();

  // --- observability (every call site is gated behind telemetry_on_ /
  // trace_on_ / profile_on_, so disabled runs take predicted-false branches
  // only — the bit-exactness and zero-alloc invariants hold with the layer
  // compiled in)
  /// Gauge scan (queue occupancy, counter values, down links) + frame
  /// commit at the end of a sample period. Cold path, off the inner loops.
  void flush_telemetry();
  /// step() body with steady_clock stamps around each phase.
  void step_profiled();
  /// Misroute attribution shared by sink and tracer.
  void note_misroute(RouterId r, std::int32_t packet,
                     telemetry::MisrouteCause cause) {
    if (telemetry_on_) sink_.count_misroute(r, cause);
    if (trace_on_) {
      tracer_.record_hop(now_, packet, r,
                         telemetry::TraceEvent::kRouteDecision,
                         static_cast<std::uint8_t>(cause));
    }
  }

  // --- routing
  void decide_injection(RouterId r, std::int32_t packet);
  [[nodiscard]] PortIndex route_output(RouterId r, std::int32_t packet) const;
  /// route_output plus fault-fallback attribution: when telemetry is on and
  /// the chosen output differs from the healthy-path preference, the
  /// divergence is counted as a kFaultFallback misroute.
  [[nodiscard]] PortIndex routed_output(RouterId r, std::int32_t packet);
  void maybe_local_detour(RouterId r, std::int32_t q);
  void maybe_transit_misroute(RouterId r, std::int32_t q, std::int32_t packet);
  void apply_global_misroute(std::int32_t packet, const NonminCandidate& cand);
  /// Scored candidate sampling (counters, optional ECtN snapshot, optional
  /// local occupancy); false when no candidate was drawn.
  [[nodiscard]] bool pick_misroute_channel(RouterId r, NodeId dst,
                                           bool use_snapshot,
                                           bool use_occupancy,
                                           NonminCandidate& best);
  [[nodiscard]] bool ugal_prefers_misroute(RouterId r, std::int32_t packet,
                                           const NonminCandidate& cand,
                                           bool global_info);

  // --- state probes
  [[nodiscard]] std::int32_t occupancy_phits(RouterId r, PortIndex out) const;
  [[nodiscard]] std::int32_t port_capacity_phits(PortIndex out) const;
  /// Occupancy-fraction credit trigger (OLM/Hybrid/PB and local detours).
  [[nodiscard]] bool credit_fires(RouterId r, PortIndex out,
                                  double fraction) const {
    return CreditOccupancyTrigger{fraction}.fires(occupancy_phits(r, out),
                                                  port_capacity_phits(out));
  }
  /// Configured VC count of `out`'s port class.
  [[nodiscard]] std::int32_t class_vcs(PortIndex out) const {
    if (out >= fwd_) return params_.router.vcs_injection;
    return topo_.port_class(out) == PortClass::kLocalClass
               ? params_.router.vcs_local
               : params_.router.vcs_global;
  }
  /// Downstream VC for `packet` taking `out` at `r`: the topology's VC
  /// class clamped to the port class's configured VC count.
  [[nodiscard]] VcIndex vc_for(RouterId r, PortIndex out,
                               std::int32_t packet) const;
  /// HopEstimate in cycles under this run's link latencies.
  [[nodiscard]] Cycle hops_to_latency(const HopEstimate& est) const {
    return static_cast<Cycle>(est.local_hops) * params_.link.local_latency +
           static_cast<Cycle>(est.global_hops) * params_.link.global_latency;
  }
  [[nodiscard]] std::int32_t flat_port(RouterId r, PortIndex port) const {
    return r * radix_ + port;
  }

  void depart(RouterId r, const AllocGrant& grant);
  void deliver(RouterId r, std::int32_t packet);

  // --- immutable shape (topo_owner_ must precede every member that reads
  // the topology during construction)
  SimParams params_;
  std::unique_ptr<const Topology> topo_owner_;
  const Topology& topo_;
  std::int32_t radix_ = 0;      // input/output ports per router
  std::int32_t fwd_ = 0;        // forward (link) ports per router
  std::int32_t vmax_ = 0;       // max VCs across port classes
  std::int32_t psize_ = 0;      // packet size in phits

  // --- per-queue flat state (size routers * radix * vmax)
  std::vector<std::int32_t> q_offset_;   // slab offset
  std::vector<std::int32_t> q_cap_;      // capacity in packets (0 = unused vc)
  std::vector<std::int32_t> q_head_;
  std::vector<std::int32_t> q_size_;
  std::vector<std::int32_t> q_free_;     // credits: cap - size - in-flight
  std::vector<std::int16_t> q_counted_;  // port counted in contention counters
  std::vector<std::int16_t> q_request_;  // port requested from the allocator
  std::vector<std::int16_t> q_wait_;     // bounded head-wait (head_wait.hpp)
  std::vector<std::int32_t> slab_;       // ring storage for all queues

  // --- per-output flat state (size routers * radix)
  std::vector<Cycle> out_busy_until_;
  std::vector<std::int32_t> down_queue_base_;  // downstream (router,port) base
  std::vector<std::int32_t> link_delay_;       // latency + pipeline

  // --- routers
  ContentionCounters counters_;  // flat over routers * radix output ports
  std::vector<SeparableAllocator> allocators_;
  AllocRequestBatch request_batch_;  // per-router sparse requests (reused)

  // --- active sets: queue-occupancy bits (bit ip*vmax+vc of router r's
  // word block; ascending-bit iteration == the dense scan order) and the
  // router summary mask. Maintained by push_queue/pop_queue only.
  std::int32_t queue_words_per_router_ = 0;
  std::vector<std::uint64_t> queue_active_;   // routers * words_per_router
  std::vector<std::uint64_t> router_active_;  // ceil(routers / 64)

  // --- packets & per-link in-flight rings (fixed capacity: a link carries
  // at most delay/packet_size + 2 packets at once)
  PacketPool pool_;
  std::vector<LinkEvent> ring_slab_;
  std::vector<std::int32_t> ring_offset_;  // per (router, out port)
  std::vector<std::int32_t> ring_cap_;
  std::vector<std::int32_t> ring_head_;
  std::vector<std::int32_t> ring_count_;
  // Due-link min-heap: one (front arrival, link) key per non-empty ring.
  // Capacity is structural (<= one entry per link), so no growth after
  // construction; ties on arrival pop in ascending link order, matching
  // the old full scan's iteration order exactly.
  std::vector<std::uint64_t> link_heap_;

  // --- mechanisms
  ContentionThresholdTrigger base_trigger_;
  ContentionThresholdTrigger hybrid_trigger_;
  EctnSnapshot ectn_;
  EctnOverheadMonitor ectn_monitor_;
  bool ectn_monitor_enabled_ = false;
  std::int32_t ectn_bits_per_counter_ = 4;
  std::vector<std::int16_t> ectn_scratch_;

  // --- fault overlay (members inert when fault_on_ is false; the engine
  // then takes no fault branches and results are bit-exact with the
  // pre-overlay engine)
  bool fault_on_ = false;
  FaultModel fault_;
  LinkHealthMap health_;
  Cycle fault_next_event_ = 0;
  std::int32_t hop_cap_ = 0;

  // --- observability (members inert unless enabled; the engine then takes
  // no telemetry/trace/profile branches and results are bit-exact with
  // builds that predate the layer — ARCHITECTURE.md invariant 11)
  bool telemetry_on_ = false;
  bool trace_on_ = false;
  bool profile_on_ = false;
  Cycle telemetry_next_sample_ = 0;
  telemetry::TelemetrySink sink_;
  telemetry::PacketTracer tracer_;
  telemetry::PhaseProfiler profiler_;

  // --- time, traffic, metrics
  Cycle now_ = 0;
  Rng rng_;  // routing decisions only; traffic draws live in traffic_
  TrafficModel traffic_;
  Metrics metrics_;
  Totals totals_;
  Cycle measure_start_ = 0;
  bool log_deliveries_ = false;
  std::vector<Delivery> deliveries_;
  std::int64_t log_growth_ = 0;
};

}  // namespace dfsim
