#include "engine/sweep.hpp"

#include <atomic>
#include <thread>

#include "util/cli.hpp"

namespace dfsim {

std::vector<SteadyResult> run_sweep(const std::vector<SweepPoint>& points,
                                    int threads) {
  std::vector<SteadyResult> results(points.size());
  if (points.empty()) return results;

  if (threads <= 0) {
    threads = static_cast<int>(
        CliOptions::env_int("DFSIM_THREADS",
                            static_cast<std::int64_t>(
                                std::thread::hardware_concurrency())));
  }
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(points.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      results[i] = run_steady(points[i].params, points[i].options);
    }
  };

  if (threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace dfsim
