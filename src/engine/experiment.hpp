// Steady-state and transient experiment drivers over the Simulator, plus the
// result structs every figure bench consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/simulator.hpp"
#include "sim/config.hpp"
#include "util/types.hpp"

namespace dfsim {

struct SteadyOptions {
  Cycle warmup = 2000;
  Cycle measure = 3000;
  std::int32_t reps = 1;
  /// No-progress watchdog: a rep that goes `progress_window` consecutive
  /// cycles without a single delivery while packets sit in the network
  /// (deadlock / total blackout under a fault schedule) stops early and the
  /// result is flagged timed_out instead of hanging ctest/CI. Deterministic
  /// (cycle-based), and chunked stepping is bit-exact with one long run, so
  /// healthy results are unchanged for any window. <= 0 disables.
  Cycle progress_window = 50000;
  /// Optional wall-clock cap per rep in seconds; 0 disables. CI backstop
  /// only — tripping it makes results machine-dependent.
  double wall_limit_s = 0.0;
  /// Optional progress heartbeat, invoked after every watchdog chunk with
  /// the sim's current cycle, lifetime deliveries, and wall seconds elapsed
  /// in the current guarded run. Purely observational — results are
  /// bit-exact with and without it. Null disables.
  std::function<void(Cycle, std::int64_t, double)> heartbeat;
};

struct SteadyResult {
  double latency_avg = 0.0;           // cycles, delivered packets
  // Tail latency from the log2-bucketed histogram (util/histogram.hpp) —
  // mean-only latency hides the tails skewed/bursty workloads create.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double throughput = 0.0;            // accepted phits/node/cycle
  double misrouted_fraction = 0.0;    // globally misrouted share
  double local_misrouted_fraction = 0.0;
  double minimal_path_fraction = 0.0; // delivered fully minimal
  double backlog_per_node = 0.0;      // injection-queue packets per node
  double generated_load = 0.0;        // offered load actually generated
  /// Average count of delivered packets whose latency fell at or beyond the
  /// histogram's tracked range (LatencyHistogram::overflow) — nonzero means
  /// the p50/p95/p99 columns are saturated lower bounds, not estimates.
  double latency_overflow = 0.0;
  // Fault-overlay columns (all 0 for healthy runs).
  double dropped_pct = 0.0;        // in-flight losses, % of accepted packets
  double undeliverable_pct = 0.0;  // hop-cap drops, % of accepted packets
  double dead_traversals = 0.0;    // departures onto down links (must be 0)
  double conservation_error = 0.0; // unaccounted packets (must be 0)
  double timed_out = 0.0;          // share of reps stopped by the watchdog
};

/// Runs warmup + measurement (averaged over `reps` seeds).
[[nodiscard]] SteadyResult run_steady(const SimParams& params,
                                      const SteadyOptions& options);

// ---------------------------------------------------------------------------
// Transient experiments (Figures 7-9): traffic switches `before` -> `after`
// at t=0; deliveries are bucketed by *birth* cycle relative to the switch.

struct TransientOptions {
  TrafficParams before;
  TrafficParams after;
  Cycle warmup = 2000;
  Cycle pre = 50;    // observed cycles before the switch
  Cycle post = 250;  // observed cycles after the switch
  std::int32_t reps = 1;
  /// Extra cycles simulated past `post` so late-born packets still deliver
  /// into their birth buckets.
  Cycle drain = 2000;
  /// No-progress watchdog (see SteadyOptions::progress_window).
  Cycle progress_window = 50000;
  double wall_limit_s = 0.0;
  /// Progress heartbeat (see SteadyOptions::heartbeat).
  std::function<void(Cycle, std::int64_t, double)> heartbeat;
};

class TransientResult {
 public:
  TransientResult(Cycle pre, Cycle post);

  /// Mean latency of packets born in [t - window/2, t + window/2).
  [[nodiscard]] double latency_at(Cycle t, Cycle window) const;
  /// p99 latency of packets born in the same window, read from per-interval
  /// log2-bucketed histograms — the transient tail spike around a traffic
  /// switch is much larger than the mean spike and invisible without it.
  [[nodiscard]] double latency_p99_at(Cycle t, Cycle window) const;
  /// Percentage of globally misrouted packets born in the same window.
  [[nodiscard]] double misrouted_pct_at(Cycle t, Cycle window) const;

  void record(Cycle birth_rel, Cycle latency, bool misrouted);

  [[nodiscard]] Cycle pre() const { return pre_; }
  [[nodiscard]] Cycle post() const { return post_; }

  /// True when any rep was stopped early by the no-progress watchdog.
  [[nodiscard]] bool timed_out() const { return timed_out_; }
  void mark_timed_out() { timed_out_ = true; }

 private:
  [[nodiscard]] std::size_t index(Cycle t) const {
    return static_cast<std::size_t>(t + pre_);
  }

  Cycle pre_;
  Cycle post_;
  bool timed_out_ = false;
  std::vector<std::int64_t> count_;
  std::vector<std::int64_t> misrouted_;
  std::vector<double> latency_sum_;
  std::vector<LatencyHistogram> hist_;  // per birth-cycle bucket
};

[[nodiscard]] TransientResult run_transient(const SimParams& params,
                                            const TransientOptions& options);

}  // namespace dfsim
