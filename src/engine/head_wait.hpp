// Head-of-queue wait bookkeeping for the engine's blocked-head re-evaluation.
//
// A stalled queue head re-considers in-transit misrouting / local detours
// once it has waited kReEvalWait cycles, and every kReEvalPeriod cycles
// after that. The counter used to be a bare int16_t incremented every
// stalled cycle: past 32767 cycles it wrapped negative and
// `(wait - kReEvalWait) % kReEvalPeriod` went negative, permanently
// disabling re-evaluation under deep saturation. advance_head_wait wraps the
// counter back to kReEvalWait after one full period instead — the observable
// fire cadence (first at kReEvalWait, then every kReEvalPeriod cycles) is
// bit-identical to an unbounded counter, for any stall length.
#pragma once

#include <cstdint>

namespace dfsim {

constexpr std::int16_t kReEvalWait = 4;   // head wait before re-deciding
constexpr std::int16_t kReEvalPeriod = 8; // re-decide cadence after that

/// True when a head that has waited `wait` cycles re-evaluates this cycle.
[[nodiscard]] constexpr bool head_wait_due(std::int16_t wait) {
  return wait >= kReEvalWait && (wait - kReEvalWait) % kReEvalPeriod == 0;
}

/// Advances the wait counter by one stalled cycle, wrapping within
/// [kReEvalWait, kReEvalWait + kReEvalPeriod) once past the first window so
/// the counter is bounded (no int16_t overflow) while firing on exactly the
/// same cycles as an unbounded counter.
[[nodiscard]] constexpr std::int16_t advance_head_wait(std::int16_t wait) {
  const auto next = static_cast<std::int16_t>(wait + 1);
  return next >= kReEvalWait + kReEvalPeriod ? kReEvalWait : next;
}

}  // namespace dfsim
