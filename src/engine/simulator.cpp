#include "engine/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <functional>
#include <stdexcept>

#include "engine/head_wait.hpp"
#include "routing/factory.hpp"
#include "topo/factory.hpp"

namespace dfsim {

std::atomic<std::int32_t> Simulator::jitter_us_{0};

void Simulator::debug_set_shard_jitter(std::int32_t us) {
  jitter_us_.store(us, std::memory_order_relaxed);
}

Simulator::Simulator(const SimParams& params)
    : Simulator(params, make_topology(params)) {}

Simulator::Simulator(const SimParams& params,
                     std::unique_ptr<const Topology> topology)
    : params_(params),
      topo_owner_(std::move(topology)),
      topo_(*topo_owner_) {
  radix_ = topo_.radix();
  fwd_ = topo_.forward_ports();
  vmax_ = std::max({params_.router.vcs_local, params_.router.vcs_global,
                    params_.router.vcs_injection});
  psize_ = std::max(1, params_.packet_size_phits);

  if (params_.engine.threads < 1) {
    throw std::invalid_argument("engine.threads must be >= 1");
  }
  // More shards than routers would leave some empty; clamp instead.
  n_shards_ = std::min(params_.engine.threads, topo_.routers());
  if (n_shards_ > 1) {
    if (params_.telemetry.enabled) {
      throw std::invalid_argument(
          "telemetry requires engine.threads = 1 (sink counters are not "
          "sharded)");
    }
    if (params_.trace.enabled) {
      throw std::invalid_argument(
          "packet tracing requires engine.threads = 1");
    }
  }

  if (params_.fault.enabled) {
    // Built before build_layout: ring capacities must cover the extra
    // in-flight time degraded links impose.
    fault_on_ = true;
    fault_ = FaultModel(params_.fault, topo_, params_.seed);
    health_.init(topo_.routers(), radix_);
    hop_cap_ = std::max(1, params_.fault.hop_cap);
    fault_next_event_ = params_.fault.onset;
    // The simulator holds exclusive ownership of the topology instance
    // (stored const for the hot path); attaching the health overlay is the
    // one sanctioned mutation, and only happens when faults are enabled.
    const_cast<Topology&>(topo_).attach_link_health(&health_);
  }

  // After the fault block (fault_overlay() must already answer truthfully),
  // before build_shards (snap_on_ reads wants_remote_probes()).
  routing_ = routing::make_mechanism(params_, topo_, *this);
  inject_decides_ = routing_->decides_at_injection();
  transit_decides_ = routing_->decides_in_transit();
  throttle_on_ = routing_->throttles_injection();

  build_layout();
  build_shards();

  if (params_.telemetry.enabled) {
    telemetry_on_ = true;
    sink_.configure(topo_.routers(), radix_, fwd_,
                    std::max<Cycle>(1, params_.telemetry.sample_period),
                    std::max<std::int32_t>(1, params_.telemetry.max_samples));
    // First frame closes at the end of the first sample period.
    telemetry_next_sample_ = sink_.sample_period() - 1;
  }
  if (params_.trace.enabled) {
    // Sized to the pool's structural bound (set by build_layout's reserve):
    // every live packet id indexes the tracer's slot map directly.
    trace_on_ = true;
    tracer_.configure(params_.trace, params_.seed,
                      slab_.size() + ring_slab_.size());
  }

  ectn_bits_per_counter_ = bits_for_value(params_.routing.counter_saturation);
  ectn_scratch_.assign(
      static_cast<std::size_t>(std::max<std::int32_t>(
          1, topo_.ectn_router_slots())),
      0);
}

Simulator::~Simulator() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Simulator::build_layout() {
  const std::int32_t routers = topo_.routers();
  const auto n_q = static_cast<std::size_t>(routers) *
                   static_cast<std::size_t>(radix_) *
                   static_cast<std::size_t>(vmax_);

  q_offset_.assign(n_q, 0);
  q_cap_.assign(n_q, 0);
  q_head_.assign(n_q, 0);
  q_size_.assign(n_q, 0);
  q_free_.assign(n_q, 0);
  q_counted_.assign(n_q, -1);
  q_request_.assign(n_q, -1);
  q_wait_.assign(n_q, 0);

  const std::int32_t cap_local =
      std::max(1, params_.router.buf_local_phits / psize_);
  const std::int32_t cap_global =
      std::max(1, params_.router.buf_global_phits / psize_);
  const std::int32_t cap_inj = params_.router.injection_queue_packets;

  std::int32_t offset = 0;
  for (RouterId r = 0; r < routers; ++r) {
    for (PortIndex ip = 0; ip < radix_; ++ip) {
      for (VcIndex vc = 0; vc < vmax_; ++vc) {
        const std::int32_t q = queue_index(r, ip, vc);
        std::int32_t cap = 0;
        if (ip >= fwd_) {
          if (vc < params_.router.vcs_injection) cap = cap_inj;
        } else if (topo_.port_class(ip) == PortClass::kLocalClass) {
          if (vc < params_.router.vcs_local) cap = cap_local;
        } else {
          if (vc < params_.router.vcs_global) cap = cap_global;
        }
        q_offset_[static_cast<std::size_t>(q)] = offset;
        q_cap_[static_cast<std::size_t>(q)] = cap;
        q_free_[static_cast<std::size_t>(q)] = cap;
        offset += cap;
      }
    }
  }
  slab_.assign(static_cast<std::size_t>(offset), kInvalidPacket);

  // Output-side tables.
  const auto n_out = static_cast<std::size_t>(routers) *
                     static_cast<std::size_t>(radix_);
  out_busy_until_.assign(n_out, 0);
  down_queue_base_.assign(n_out, -1);
  link_delay_.assign(n_out, 0);
  for (RouterId r = 0; r < routers; ++r) {
    for (PortIndex port = 0; port < fwd_; ++port) {
      const std::size_t idx = static_cast<std::size_t>(flat_port(r, port));
      const RouterId peer = topo_.peer(r, port);
      const PortIndex peer_port = topo_.peer_port(r, port);
      down_queue_base_[idx] = queue_index(peer, peer_port, 0);
      const std::int32_t lat =
          topo_.port_class(port) == PortClass::kLocalClass
              ? params_.link.local_latency
              : params_.link.global_latency;
      link_delay_[idx] = params_.router.pipeline_cycles + lat + psize_;
    }
  }

  // Allocators.
  allocators_.reserve(static_cast<std::size_t>(routers));
  for (RouterId r = 0; r < routers; ++r) {
    allocators_.emplace_back(radix_, radix_, vmax_);
    if (params_.router.through_priority) {
      allocators_.back().set_through_priority(fwd_);
    }
  }

  // Active-set masks: all queues empty at construction. The router summary
  // masks are per shard (build_shards).
  queue_words_per_router_ = (radix_ * vmax_ + 63) / 64;
  queue_active_.assign(static_cast<std::size_t>(routers) *
                           static_cast<std::size_t>(queue_words_per_router_),
                       0);

  // Per-link in-flight rings: sends on a link are spaced >= psize cycles
  // apart and stay on it for link_delay cycles, so delay/psize + 2 slots is
  // a strict capacity bound.
  ring_offset_.assign(n_out, 0);
  ring_cap_.assign(n_out, 0);
  ring_head_.assign(n_out, 0);
  ring_count_.assign(n_out, 0);
  std::int32_t ring_total = 0;
  for (RouterId r = 0; r < routers; ++r) {
    for (PortIndex port = 0; port < fwd_; ++port) {
      const std::size_t idx = static_cast<std::size_t>(flat_port(r, port));
      // Degraded links hold packets up to max_extra_latency longer.
      const std::int32_t extra = fault_on_ ? fault_.max_extra_latency() : 0;
      const std::int32_t cap = (link_delay_[idx] + extra) / psize_ + 2;
      ring_offset_[idx] = ring_total;
      ring_cap_[idx] = cap;
      ring_total += cap;
    }
  }
  ring_slab_.assign(static_cast<std::size_t>(ring_total), LinkEvent{});

  // Due-link heap keys must be able to carry every link id.
  assert(n_out < (std::size_t{1} << kLinkBits));

  // Preallocate the packet pool to its structural upper bound: every packet
  // is either in some queue slot or on some link ring.
  pool_.reserve(slab_.size() + static_cast<std::size_t>(ring_total));
}

void Simulator::build_shards() {
  const std::int32_t routers = topo_.routers();
  const std::int32_t conc = topo_.concentration();
  const auto n_out = static_cast<std::size_t>(routers) *
                     static_cast<std::size_t>(radix_);

  if (n_shards_ > 1) {
    shard_of_router_.assign(static_cast<std::size_t>(routers), 0);
    // Snapshot-based remote probes exist only for mechanisms that declare
    // them (the idealized-global estimate and Piggyback's remote link-state
    // flag).
    snap_on_ = routing_->wants_remote_probes();
    if (snap_on_) occ_snap_.assign(n_out, 0);
  }

  shards_.reserve(static_cast<std::size_t>(n_shards_));
  for (std::int32_t i = 0; i < n_shards_; ++i) {
    // Contiguous balanced ranges; boundaries need not be 64-aligned because
    // each shard's summary mask is indexed by (r - r_lo).
    const auto r_lo = static_cast<RouterId>(
        static_cast<std::int64_t>(routers) * i / n_shards_);
    const auto r_hi = static_cast<RouterId>(
        static_cast<std::int64_t>(routers) * (i + 1) / n_shards_);
    Shard sh;
    sh.index = i;
    sh.r_lo = r_lo;
    sh.r_hi = r_hi;
    sh.n_lo = r_lo * conc;
    sh.n_hi = r_hi * conc;
    // Shard 0 draws the raw seed: with one shard both streams ARE the
    // serial streams, which is what keeps threads = 1 bit-exact.
    const std::uint64_t seed =
        params_.seed + kShardSeedStride * static_cast<std::uint64_t>(i);
    sh.rng = Rng(seed);
    sh.traffic = std::make_unique<TrafficModel>(
        params_.traffic, topo_.traffic_info(), params_.packet_size_phits,
        seed);
    if (n_shards_ > 1) {
      sh.traffic->restrict_nodes(sh.n_lo, sh.n_hi);
      for (RouterId r = r_lo; r < r_hi; ++r) {
        shard_of_router_[static_cast<std::size_t>(r)] = i;
      }
    }
    sh.request_batch.reserve(radix_, vmax_);
    sh.router_active.assign(
        static_cast<std::size_t>((r_hi - r_lo + 63) / 64), 0);
    shards_.push_back(std::move(sh));
  }

  if (n_shards_ == 1) {
    // Due-link heap: at most one entry per link, so this reserve is a hard
    // structural bound and the heap never allocates after construction.
    shards_[0].link_heap.reserve(n_out);
    return;
  }

  // Ownership tables, derived from the wiring rather than topology
  // symmetry assumptions: the credit counter of queue block (r, ip) belongs
  // to whichever shard departs packets into it (the upstream router), and a
  // link's in-flight ring belongs to the downstream router's shard.
  credit_owner_.assign(n_out, 0);
  link_owner_.assign(n_out, 0);
  for (RouterId r = 0; r < routers; ++r) {
    const std::int32_t own = shard_of_router_[static_cast<std::size_t>(r)];
    for (PortIndex ip = 0; ip < radix_; ++ip) {
      credit_owner_[static_cast<std::size_t>(flat_port(r, ip))] = own;
    }
  }
  for (RouterId r = 0; r < routers; ++r) {
    const std::int32_t own = shard_of_router_[static_cast<std::size_t>(r)];
    for (PortIndex out = 0; out < fwd_; ++out) {
      const std::size_t flat = static_cast<std::size_t>(flat_port(r, out));
      const std::int32_t down_port = down_queue_base_[flat] / vmax_;
      credit_owner_[static_cast<std::size_t>(down_port)] = own;
      link_owner_[flat] = shard_of_router_[static_cast<std::size_t>(
          down_queue_base_[flat] / (radix_ * vmax_))];
    }
  }

  // Per-shard due-link heap reserves (one slot per owned link).
  std::vector<std::size_t> owned_links(static_cast<std::size_t>(n_shards_), 0);
  for (std::size_t l = 0; l < n_out; ++l) {
    if (ring_cap_[l] > 0) {
      ++owned_links[static_cast<std::size_t>(link_owner_[l])];
    }
  }

  // Sharded packet-id ranges: the pool arrays are sized once to the
  // structural bound (they must never reallocate under worker references),
  // and each shard gets the ids backing its own queue slots and owned link
  // rings — exactly enough that the shard can never hold more packets than
  // ids. The free lists are filled descending so pop_back hands out
  // ascending ids, and each id returns to its range owner via kFreeId.
  const std::size_t total = slab_.size() + ring_slab_.size();
  pool_.resize_slots(total);
  std::vector<std::int64_t> share(static_cast<std::size_t>(n_shards_), 0);
  for (std::int32_t i = 0; i < n_shards_; ++i) {
    const Shard& sh = shards_[static_cast<std::size_t>(i)];
    const std::int64_t slab_lo =
        q_offset_[static_cast<std::size_t>(queue_index(sh.r_lo, 0, 0))];
    const std::int64_t slab_hi =
        sh.r_hi < routers
            ? q_offset_[static_cast<std::size_t>(queue_index(sh.r_hi, 0, 0))]
            : static_cast<std::int64_t>(slab_.size());
    share[static_cast<std::size_t>(i)] = slab_hi - slab_lo;
  }
  for (std::size_t l = 0; l < n_out; ++l) {
    share[static_cast<std::size_t>(link_owner_[l])] += ring_cap_[l];
  }
  shard_id_base_.assign(static_cast<std::size_t>(n_shards_) + 1, 0);
  for (std::int32_t i = 0; i < n_shards_; ++i) {
    shard_id_base_[static_cast<std::size_t>(i) + 1] =
        shard_id_base_[static_cast<std::size_t>(i)] +
        static_cast<std::int32_t>(share[static_cast<std::size_t>(i)]);
  }
  assert(static_cast<std::size_t>(shard_id_base_.back()) == total);

  for (std::int32_t i = 0; i < n_shards_; ++i) {
    Shard& sh = shards_[static_cast<std::size_t>(i)];
    const std::int32_t lo = shard_id_base_[static_cast<std::size_t>(i)];
    const std::int32_t hi = shard_id_base_[static_cast<std::size_t>(i) + 1];
    sh.free_ids.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int32_t id = hi - 1; id >= lo; --id) sh.free_ids.push_back(id);
    sh.link_heap.reserve(owned_links[static_cast<std::size_t>(i)]);
    sh.outbox.resize(static_cast<std::size_t>(n_shards_));
    for (auto& box : sh.outbox) box.reserve(64);
  }

  barrier_ = std::make_unique<SpinBarrier>(n_shards_);
  workers_.reserve(static_cast<std::size_t>(n_shards_) - 1);
  for (std::int32_t i = 1; i < n_shards_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

// ---------------------------------------------------------------------------
// Queue primitives

void Simulator::activate_queue(Shard& sh, std::int32_t q) {
  const RouterId r = q / (radix_ * vmax_);
  const std::int32_t bit = q - r * radix_ * vmax_;
  queue_active_[static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(queue_words_per_router_) +
                static_cast<std::size_t>(bit >> 6)] |=
      std::uint64_t{1} << (bit & 63);
  const std::int32_t rl = r - sh.r_lo;
  sh.router_active[static_cast<std::size_t>(rl >> 6)] |= std::uint64_t{1}
                                                         << (rl & 63);
}

void Simulator::deactivate_queue(Shard& sh, std::int32_t q) {
  const RouterId r = q / (radix_ * vmax_);
  const std::int32_t bit = q - r * radix_ * vmax_;
  const std::size_t base = static_cast<std::size_t>(r) *
                           static_cast<std::size_t>(queue_words_per_router_);
  queue_active_[base + static_cast<std::size_t>(bit >> 6)] &=
      ~(std::uint64_t{1} << (bit & 63));
  std::uint64_t any = 0;
  for (std::int32_t w = 0; w < queue_words_per_router_; ++w) {
    any |= queue_active_[base + static_cast<std::size_t>(w)];
  }
  if (any == 0) {
    const std::int32_t rl = r - sh.r_lo;
    sh.router_active[static_cast<std::size_t>(rl >> 6)] &=
        ~(std::uint64_t{1} << (rl & 63));
  }
}

void Simulator::push_queue(Shard& sh, std::int32_t q, std::int32_t packet) {
  const auto qi = static_cast<std::size_t>(q);
  assert(q_size_[qi] < q_cap_[qi]);
  const std::int32_t slot =
      q_offset_[qi] + (q_head_[qi] + q_size_[qi]) % q_cap_[qi];
  slab_[static_cast<std::size_t>(slot)] = packet;
  if (++q_size_[qi] == 1) {
    activate_queue(sh, q);
    on_new_head(sh, q);
  }
}

std::int32_t Simulator::pop_queue(Shard& sh, std::int32_t q) {
  const auto qi = static_cast<std::size_t>(q);
  assert(q_size_[qi] > 0);
  const std::int32_t packet =
      slab_[static_cast<std::size_t>(q_offset_[qi] + q_head_[qi])];
  q_head_[qi] = (q_head_[qi] + 1) % q_cap_[qi];
  --q_size_[qi];
  if (n_shards_ == 1) {
    ++q_free_[qi];
  } else {
    // The credit belongs to the upstream shard; return it through the
    // inbox when that is someone else (applied at their next merge — the
    // one-cycle credit delay documented in ARCHITECTURE.md).
    const std::int32_t owner = credit_owner_[static_cast<std::size_t>(
        q / vmax_)];
    if (owner == sh.index) {
      ++q_free_[qi];
    } else {
      ShardMessage m;
      m.kind = ShardMessage::Kind::kCredit;
      m.queue = q;
      push_msg(sh, owner, m);
    }
  }
  if (q_size_[qi] > 0) {
    on_new_head(sh, q);
  } else {
    deactivate_queue(sh, q);
  }
  return packet;
}

void Simulator::on_new_head(Shard& sh, std::int32_t q) {
  const auto qi = static_cast<std::size_t>(q);
  const RouterId r = q / (radix_ * vmax_);
  const PortIndex ip = (q / vmax_) % radix_;
  const std::int32_t packet =
      slab_[static_cast<std::size_t>(q_offset_[qi] + q_head_[qi])];
  const auto pi = static_cast<std::size_t>(packet);

  // Valiant phase ending on arrival at the intermediate router (candidates
  // with via_port < 0; dragonfly phases end on the global hop instead).
  if ((pool_.flags[pi] & PacketPool::kPhase0) && pool_.via_port[pi] < 0 &&
      pool_.target_router[pi] == r) {
    pool_.flags[pi] &= static_cast<std::uint8_t>(~PacketPool::kPhase0);
    pool_.target_router[pi] = topo_.router_of_node(pool_.dst[pi]);
    pool_.g_hops[pi] = topo_.phase_end_state(pool_.g_hops[pi]);
  }

  if (trace_on_) {
    tracer_.record_hop(now_, packet, r, telemetry::TraceEvent::kQueueHead,
                       static_cast<std::uint8_t>(ip));
  }

  if (ip >= fwd_ &&
      !(pool_.flags[pi] & PacketPool::kRouted)) {
    decide_injection(sh, r, packet);
  }
  maybe_transit_misroute(sh, r, q, packet);

  const PortIndex counted = topo_.minimal_output(r, pool_.dst[pi]);
  q_counted_[qi] = static_cast<std::int16_t>(counted);
  q_request_[qi] = static_cast<std::int16_t>(routed_output(r, packet));
  q_wait_[qi] = 0;
  routing_->on_head(flat_port(r, counted));
}

// ---------------------------------------------------------------------------
// Routing decisions

PortIndex Simulator::route_output(RouterId r, std::int32_t packet) const {
  const auto pi = static_cast<std::size_t>(packet);
  PortIndex out;
  RouterId target;
  if (pool_.flags[pi] & PacketPool::kPhase0) {
    target = pool_.target_router[pi];
    out = r == target ? static_cast<PortIndex>(pool_.via_port[pi])
                      : topo_.route_toward(r, target);
  } else {
    target = topo_.router_of_node(pool_.dst[pi]);
    out = topo_.minimal_output(r, pool_.dst[pi]);
  }
  if (fault_on_ && out >= 0 && out < fwd_ && !health_.link_up(r, out)) {
    // Preferred link is down: deterministic topology fallback (no RNG — a
    // blocked head may re-evaluate this every cycle). kInvalidPort when
    // every forward link of `r` is down.
    out = topo_.fallback_output(r, target, out);
  }
  return out;
}

PortIndex Simulator::routed_output(RouterId r, std::int32_t packet) {
  const PortIndex out = route_output(r, packet);
  if (telemetry_on_ && fault_on_ && out >= 0) {
    // Re-derive the healthy-path preference; route_output only diverges
    // from it when it fell back around a dead link.
    const auto pi = static_cast<std::size_t>(packet);
    PortIndex pref;
    if (pool_.flags[pi] & PacketPool::kPhase0) {
      const RouterId target = pool_.target_router[pi];
      pref = r == target ? static_cast<PortIndex>(pool_.via_port[pi])
                         : topo_.route_toward(r, target);
    } else {
      pref = topo_.minimal_output(r, pool_.dst[pi]);
    }
    if (pref != out) {
      sink_.count_misroute(r, telemetry::MisrouteCause::kFaultFallback);
    }
  }
  return out;
}

std::int32_t Simulator::occupancy_phits(RouterId r, PortIndex out) const {
  if (out >= fwd_) return 0;  // ejection: modeled as an ideal sink
  const std::int32_t base =
      down_queue_base_[static_cast<std::size_t>(flat_port(r, out))];
  std::int32_t occupied = 0;
  for (VcIndex vc = 0; vc < vmax_; ++vc) {
    const auto qi = static_cast<std::size_t>(base + vc);
    occupied += q_cap_[qi] - q_free_[qi];
  }
  return occupied * psize_;
}

std::int32_t Simulator::probe_occupancy_phits(std::int32_t shard, RouterId r,
                                              PortIndex out) const {
  // Remote routers' live credit state is owned by another shard; the
  // cycle-start snapshot (refreshed at each owner's merge point) stands in
  // for it. With one shard every router is local, so this is exactly
  // occupancy_phits and the serial draw sequence is untouched.
  const Shard& sh = shards_[static_cast<std::size_t>(shard)];
  if (snap_on_ && (r < sh.r_lo || r >= sh.r_hi)) {
    if (out >= fwd_) return 0;
    return occ_snap_[static_cast<std::size_t>(flat_port(r, out))];
  }
  return occupancy_phits(r, out);
}

std::int32_t Simulator::free_credits(RouterId r, PortIndex out,
                                     std::int8_t vc_state) const {
  // The VC a non-phase-0 packet in hop state `vc_state` would take on
  // (r, out), clamped like vc_for; OLM's exact-blocked test reads this.
  const VcIndex cls = topo_.vc_class(r, out, vc_state, false);
  const VcIndex vcn = std::min<VcIndex>(cls, class_vcs(out) - 1);
  const std::int32_t down =
      down_queue_base_[static_cast<std::size_t>(flat_port(r, out))] + vcn;
  return q_free_[static_cast<std::size_t>(down)];
}

std::int32_t Simulator::fault_extra_latency(RouterId r, PortIndex out) const {
  if (!fault_on_) return 0;
  return health_.extra_latency(r, out);
}

std::int32_t Simulator::port_capacity_phits(PortIndex out) const {
  // Reference capacity for occupancy-fraction triggers: a single VC buffer.
  // Traffic on a link concentrates in its hop-class VC, so fractions of the
  // all-VC capacity would almost never be reached.
  if (out >= fwd_) return psize_;
  if (topo_.port_class(out) == PortClass::kLocalClass) {
    return std::max(psize_, params_.router.buf_local_phits);
  }
  return std::max(psize_, params_.router.buf_global_phits);
}

VcIndex Simulator::vc_for(RouterId r, PortIndex out,
                          std::int32_t packet) const {
  const auto pi = static_cast<std::size_t>(packet);
  const VcIndex cls =
      topo_.vc_class(r, out, pool_.g_hops[pi],
                     (pool_.flags[pi] & PacketPool::kPhase0) != 0);
  return std::min<VcIndex>(cls, class_vcs(out) - 1);
}

void Simulator::apply_global_misroute(std::int32_t packet,
                                      const NonminCandidate& cand) {
  const auto pi = static_cast<std::size_t>(packet);
  pool_.flags[pi] |= PacketPool::kMisGlobal | PacketPool::kPhase0;
  pool_.target_router[pi] = cand.inter;
  pool_.via_port[pi] = static_cast<std::int16_t>(cand.via_port);
}

void Simulator::decide_injection(Shard& sh, RouterId r, std::int32_t packet) {
  const auto pi = static_cast<std::size_t>(packet);
  pool_.flags[pi] |= PacketPool::kRouted;
  const NodeId d = pool_.dst[pi];
  pool_.target_router[pi] = topo_.router_of_node(d);

  if (!inject_decides_ || (pool_.flags[pi] & PacketPool::kInorder)) return;
  if (topo_.min_channel(r, d) < 0) return;  // no nonminimal option applies

  const routing::Decision dec =
      routing_->decide_injection(sh.rng, now_, sh.index, r, d);
  if (dec.misroute) {
    apply_global_misroute(packet, dec.cand);
    note_misroute(r, packet, dec.cause);
  }
}

void Simulator::maybe_transit_misroute(Shard& sh, RouterId r, std::int32_t q,
                                       std::int32_t packet) {
  // In-transit mechanisms re-decide at injection and wherever the
  // topology's in-transit policy still allows it, so backlogged
  // minimal-committed packets can divert when the counters are hot.
  if (!transit_decides_) return;
  const auto pi = static_cast<std::size_t>(packet);
  const std::uint8_t flags = pool_.flags[pi];
  if (flags & (PacketPool::kMisGlobal | PacketPool::kInorder)) return;
  if (!topo_.can_misroute_in_transit(
          r, topo_.router_of_node(pool_.src[pi]), pool_.g_hops[pi])) {
    return;
  }
  const NodeId d = pool_.dst[pi];
  const std::int32_t min_ch = topo_.min_channel(r, d);
  if (min_ch < 0) return;

  const PortIndex mp = topo_.minimal_output(r, d);
  const routing::Decision dec = routing_->decide_transit(
      sh.rng, sh.index, r, d, pool_.g_hops[pi], mp, min_ch);
  if (!dec.misroute) return;
  apply_global_misroute(packet, dec.cand);
  q_request_[static_cast<std::size_t>(q)] =
      static_cast<std::int16_t>(routed_output(r, packet));
  if (telemetry_on_ || trace_on_) {
    note_misroute(r, packet,
                  r == topo_.router_of_node(pool_.src[pi])
                      ? telemetry::MisrouteCause::kTrigger
                      : telemetry::MisrouteCause::kInTransit);
  }
}

void Simulator::maybe_local_detour(Shard& sh, RouterId r, std::int32_t q) {
  if (!params_.routing.allow_local_misroute || !transit_decides_) return;
  const std::int32_t locals = topo_.local_detour_ports(r);
  const auto qi = static_cast<std::size_t>(q);
  const PortIndex rp = q_request_[qi];
  if (rp < 0 || rp >= locals) return;  // detour-eligible hops only
  const std::int32_t packet =
      slab_[static_cast<std::size_t>(q_offset_[qi] + q_head_[qi])];
  const auto pi = static_cast<std::size_t>(packet);
  if (pool_.flags[pi] & (PacketPool::kDetoured | PacketPool::kInorder)) return;

  if (!routing_->local_detour_fires(sh.rng, sh.index, r, rp)) return;
  Rng& rng = sh.rng;

  // Pick a random alternative local port with a free link and credits.
  for (std::int32_t attempt = 0; attempt < 4; ++attempt) {
    const auto ap = static_cast<PortIndex>(
        rng.next_below(static_cast<std::uint64_t>(locals)));
    if (ap == rp) continue;
    if (fault_on_ && !health_.link_up(r, ap)) continue;
    const std::size_t flat = static_cast<std::size_t>(flat_port(r, ap));
    if (out_busy_until_[flat] > now_) continue;
    const VcIndex vcn = vc_for(r, ap, packet);
    if (q_free_[static_cast<std::size_t>(down_queue_base_[flat] + vcn)] <= 1) {
      continue;  // require slack so detours do not fill the last slot
    }
    q_request_[qi] = static_cast<std::int16_t>(ap);
    pool_.flags[pi] |= PacketPool::kMisLocal | PacketPool::kDetoured;
    note_misroute(r, packet, telemetry::MisrouteCause::kLocalDetour);
    return;
  }
}

// ---------------------------------------------------------------------------
// Per-cycle phases

void Simulator::link_heap_push(Shard& sh, std::uint64_t key) {
  // dfsim-check: allow(CHK-ALLOC): reserved to the distinct-link bound
  sh.link_heap.push_back(key);
  std::push_heap(sh.link_heap.begin(), sh.link_heap.end(),
                 std::greater<std::uint64_t>{});
}

std::uint64_t Simulator::link_heap_pop(Shard& sh) {
  std::pop_heap(sh.link_heap.begin(), sh.link_heap.end(),
                std::greater<std::uint64_t>{});
  const std::uint64_t key = sh.link_heap.back();
  sh.link_heap.pop_back();
  return key;
}

void Simulator::ring_insert(Shard& sh, std::int32_t flat,
                            const LinkEvent& ev) {
  const auto l = static_cast<std::size_t>(flat);
  assert(ring_count_[l] < ring_cap_[l]);
  const std::int32_t slot =
      ring_offset_[l] + (ring_head_[l] + ring_count_[l]) % ring_cap_[l];
  ring_slab_[static_cast<std::size_t>(slot)] = ev;
  // A ring going non-empty registers its (only possible due) front entry in
  // the due-link heap; rings already in flight keep their existing key.
  if (ring_count_[l]++ == 0) {
    link_heap_push(sh, link_key(ev.arrival, flat));
  }
}

void Simulator::deliver_arrivals(Shard& sh) {
  // Per-link FIFO rings: arrivals on a link are strictly increasing and
  // spaced >= psize cycles, so only the front entry can be due and each
  // ring contributes one heap key. Idle links cost nothing; same-cycle
  // arrivals pop in ascending link order (the key's low bits), matching
  // the pre-active-set full scan bit-exactly.
  while (!sh.link_heap.empty()) {
    const std::uint64_t top = sh.link_heap.front();
    if (static_cast<Cycle>(top >> kLinkBits) != now_) {
      assert(static_cast<Cycle>(top >> kLinkBits) > now_);
      break;
    }
    const auto l = static_cast<std::size_t>(
        top & ((std::uint64_t{1} << kLinkBits) - 1));
    (void)link_heap_pop(sh);
    const LinkEvent ev =
        ring_slab_[static_cast<std::size_t>(ring_offset_[l] + ring_head_[l])];
    assert(ev.arrival == now_);
    ring_head_[l] = (ring_head_[l] + 1) % ring_cap_[l];
    if (--ring_count_[l] > 0) {
      const LinkEvent& next = ring_slab_[static_cast<std::size_t>(
          ring_offset_[l] + ring_head_[l])];
      link_heap_push(sh, link_key(next.arrival, static_cast<std::int32_t>(l)));
    }
    if (trace_on_) {
      tracer_.record_hop(now_, ev.packet, ev.down_queue / (radix_ * vmax_),
                         telemetry::TraceEvent::kLinkArrive,
                         static_cast<std::uint8_t>((ev.down_queue / vmax_) %
                                                   radix_));
    }
    push_queue(sh, ev.down_queue, ev.packet);
  }
}

void Simulator::inject_traffic(Shard& sh) {
  // All pattern logic lives in the traffic model (pre-resolved tables, own
  // RNG); the engine just places whatever the model emits. Each shard's
  // model instance is restricted to the shard's terminals.
  Rng& rng = sh.rng;
  TrafficModel& traffic = *sh.traffic;
  traffic.begin_cycle(now_);
  Injection inj;
  while (traffic.next(inj)) {
    ++sh.metrics.generated;
    ++sh.totals.generated;

    const RouterId r = topo_.router_of_node(inj.src);
    if (throttle_on_ && !routing_->admit_injection(now_, r, inj.dst)) {
      // Source throttle (ARN variant): same accounting as a full queue.
      ++sh.metrics.refused;
      ++sh.totals.refused;
      if (telemetry_on_) sink_.count_refusal(r);
      continue;
    }
    const PortIndex ip = fwd_ + (inj.src % topo_.concentration());
    const std::int32_t q = queue_index(r, ip, 0);
    if (q_free_[static_cast<std::size_t>(q)] <= 0) {
      ++sh.metrics.refused;
      ++sh.totals.refused;
      if (telemetry_on_) sink_.count_refusal(r);
      continue;
    }

    const std::int32_t packet = allocate_packet(sh);
    if (packet < 0) {
      // Sharded id range exhausted (never happens serial: the pool grows).
      // Deterministic back-pressure, same accounting as a full queue.
      ++sh.metrics.refused;
      ++sh.totals.refused;
      continue;
    }
    pool_.reset_packet(packet);
    const auto pi = static_cast<std::size_t>(packet);
    pool_.src[pi] = inj.src;
    pool_.dst[pi] = inj.dst;
    pool_.birth[pi] = now_;
    if (telemetry_on_) sink_.count_injection(r);
    if (trace_on_) tracer_.on_inject(now_, packet, r, inj.dst);
    if (params_.traffic.inorder_fraction > 0.0 &&
        rng.next_bool(params_.traffic.inorder_fraction)) {
      pool_.flags[pi] |= PacketPool::kInorder;
    }
    --q_free_[static_cast<std::size_t>(q)];
    push_queue(sh, q, packet);
  }
}

void Simulator::route_and_allocate(Shard& sh) {
  // Active-set walk: routers with any occupied queue, then that router's
  // occupied queues in ascending (port, vc) bit order — exactly the dense
  // triple loop's visit order over non-empty queues, so head-wait
  // re-evaluation (and its RNG draws) happen in the original sequence.
  // Grants mutate only the router being processed (depart pops its own
  // input queues; departures land on link rings or outboxes, not queues),
  // so iterating over word copies is safe.
  const std::int32_t qwpr = queue_words_per_router_;
  for (std::size_t rw = 0; rw < sh.router_active.size(); ++rw) {
    std::uint64_t rbits = sh.router_active[rw];
    while (rbits != 0) {
      const int rbit = std::countr_zero(rbits);
      rbits &= rbits - 1;
      const auto r =
          sh.r_lo + static_cast<RouterId>(rw * 64 + static_cast<std::size_t>(
                                                        rbit));
      const std::size_t qbase =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(qwpr);
      const std::int32_t q0 = r * radix_ * vmax_;
      sh.request_batch.clear();
      for (std::int32_t w = 0; w < qwpr; ++w) {
        std::uint64_t qbits = queue_active_[qbase + static_cast<std::size_t>(w)];
        while (qbits != 0) {
          const int qbit = std::countr_zero(qbits);
          qbits &= qbits - 1;
          const std::int32_t local = w * 64 + qbit;
          const std::int32_t q = q0 + local;
          const auto qi = static_cast<std::size_t>(q);
          assert(q_size_[qi] > 0);

          if (head_wait_due(q_wait_[qi])) {
            // The head has been blocked for a while: re-evaluate in-transit
            // global misrouting and consider an opportunistic local detour.
            const std::int32_t packet = slab_[static_cast<std::size_t>(
                q_offset_[qi] + q_head_[qi])];
            maybe_transit_misroute(sh, r, q, packet);
            maybe_local_detour(sh, r, q);
          }
          q_wait_[qi] = advance_head_wait(q_wait_[qi]);

          PortIndex out = q_request_[qi];
          if (fault_on_ &&
              (out < 0 || (out < fwd_ && !health_.link_up(r, out)))) {
            // The requested link died (or no live option existed when the
            // head was last routed): re-route via the topology fallback.
            // Heads with no live output wait in place — a flap may revive
            // the link, and head-wait re-evaluation above still lets the
            // adaptive mechanisms divert the packet.
            const std::int32_t packet = slab_[static_cast<std::size_t>(
                q_offset_[qi] + q_head_[qi])];
            out = routed_output(r, packet);
            q_request_[qi] = static_cast<std::int16_t>(out);
            if (out < 0) continue;
          }
          const std::size_t flat = static_cast<std::size_t>(flat_port(r, out));
          if (out_busy_until_[flat] > now_) continue;
          if (out < fwd_) {
            const std::int32_t packet = slab_[static_cast<std::size_t>(
                q_offset_[qi] + q_head_[qi])];
            const VcIndex vcn = vc_for(r, out, packet);
            if (q_free_[static_cast<std::size_t>(down_queue_base_[flat] +
                                                 vcn)] <= 0) {
              if (telemetry_on_) sink_.count_credit_stall(r);
              continue;
            }
          }
          sh.request_batch.add(static_cast<PortIndex>(local / vmax_),
                               static_cast<VcIndex>(local % vmax_), out);
        }
      }
      if (sh.request_batch.empty()) continue;

      SeparableAllocator& alloc = allocators_[static_cast<std::size_t>(r)];
      alloc.begin_cycle();
      for (std::int32_t it = 0; it < params_.router.speedup; ++it) {
        if (alloc.iterate(sh.request_batch).empty() && it > 0) break;
      }
      for (const AllocGrant& grant : alloc.cycle_grants()) {
        depart(sh, r, grant);
      }
    }
  }
}

void Simulator::depart(Shard& sh, RouterId r, const AllocGrant& grant) {
  const std::int32_t q = queue_index(r, grant.in, grant.vc);
  const auto qi = static_cast<std::size_t>(q);
  const std::int16_t counted = q_counted_[qi];
  const std::int32_t packet = pop_queue(sh, q);
  routing_->on_tail_departure(flat_port(r, counted));

  const PortIndex out = grant.out;
  const std::size_t flat = static_cast<std::size_t>(flat_port(r, out));
  out_busy_until_[flat] = now_ + psize_;

  if (out >= fwd_) {
    deliver(sh, r, packet);
    return;
  }

  const auto pi = static_cast<std::size_t>(packet);
  if (fault_on_) {
    // Hard invariant (gated == 0): the request filter in route_and_allocate
    // never lets a head depart onto a down link.
    if (!health_.link_up(r, out)) ++sh.metrics.dead_link_hops;
    if (pool_.hops[pi] >= hop_cap_) {
      // Livelock guard: rerouted around faults past any plausible path
      // length; drop rather than circulate forever.
      ++sh.metrics.undeliverable;
      ++sh.totals.undeliverable;
      if (telemetry_on_) sink_.count_undeliverable();
      if (trace_on_) {
        tracer_.close(now_, packet, r, telemetry::TraceEvent::kDrop);
      }
      release_packet(sh, packet);
      return;
    }
    pool_.hops[pi] = static_cast<std::uint16_t>(pool_.hops[pi] + 1);
  }
  if (telemetry_on_) {
    sink_.count_link_departure(static_cast<std::int32_t>(flat));
  }
  if (trace_on_) {
    tracer_.record_hop(now_, packet, r, telemetry::TraceEvent::kLinkDepart,
                       static_cast<std::uint8_t>(out));
  }
  const VcIndex vcn = vc_for(r, out, packet);  // pre-transition state
  const std::int32_t down = down_queue_base_[flat] + vcn;
  --q_free_[static_cast<std::size_t>(down)];

  const HopTransition hop = topo_.on_hop(r, out, pool_.g_hops[pi]);
  pool_.g_hops[pi] = hop.vc_state;
  if (hop.reset_detour) {
    pool_.flags[pi] &= static_cast<std::uint8_t>(~PacketPool::kDetoured);
  }
  if (hop.end_phase0 && (pool_.flags[pi] & PacketPool::kPhase0)) {
    pool_.flags[pi] &= static_cast<std::uint8_t>(~PacketPool::kPhase0);
    pool_.target_router[pi] = topo_.router_of_node(pool_.dst[pi]);
  }

  Cycle arrival = now_ + link_delay_[flat];
  if (fault_on_) arrival += health_.extra_latency(r, out);
  const auto lid = static_cast<std::int32_t>(flat);
  if (n_shards_ == 1 || link_owner_[flat] == sh.index) {
    ring_insert(sh, lid, LinkEvent{arrival, packet, down});
  } else {
    // The ring belongs to the downstream shard: hand the traversal over
    // through its inbox; it ring-inserts at its next merge point. Arrivals
    // are several cycles out, so the one-cycle handoff loses nothing.
    ShardMessage m;
    m.kind = ShardMessage::Kind::kLinkSend;
    m.link = lid;
    m.queue = down;
    m.packet = packet;
    m.arrival = arrival;
    push_msg(sh, link_owner_[flat], m);
  }
}

void Simulator::deliver(Shard& sh, RouterId r, std::int32_t packet) {
  const auto pi = static_cast<std::size_t>(packet);
  const Cycle latency =
      now_ + params_.router.pipeline_cycles + psize_ - pool_.birth[pi];
  const std::uint8_t flags = pool_.flags[pi];
  const bool mis_global = (flags & PacketPool::kMisGlobal) != 0;
  const bool mis_local = (flags & PacketPool::kMisLocal) != 0;

  ++sh.metrics.delivered;
  ++sh.totals.delivered;
  sh.metrics.delivered_phits += psize_;
  sh.metrics.latency_sum += static_cast<double>(latency);
  sh.metrics.latency_hist.add(latency);
  if (mis_global) ++sh.metrics.misrouted;
  if (mis_local) ++sh.metrics.local_misrouted;
  if (!mis_global && !mis_local) ++sh.metrics.minimal_path;

  if (log_deliveries_) {
    if (sh.deliveries.size() == sh.deliveries.capacity()) ++sh.log_growth;
    // dfsim-check: allow(CHK-ALLOC): growth is counted in log_growth
    sh.deliveries.push_back(Delivery{pool_.birth[pi], latency, mis_global,
                                     !mis_global && !mis_local});
  }
  if (telemetry_on_) sink_.count_delivery(r);
  if (trace_on_) {
    tracer_.close(now_, packet, r, telemetry::TraceEvent::kDeliver,
                  static_cast<std::uint32_t>(latency));
  }
  release_packet(sh, packet);
}

void Simulator::update_mechanism(Shard& sh) {
  const bool mech_due = routing_->update_due(now_);
  const bool monitor_due = ectn_monitor_enabled_ && monitor_update_due();
  if (!mech_due && !monitor_due) return;

  // The mechanism's update window: shards call it for their own router
  // ranges and may write only per-shard-disjoint state slices; the
  // surrounding barriers order the writes against every reader.
  if (mech_due) routing_->update(now_, sh.index, sh.r_lo, sh.r_hi);

  if (ectn_monitor_enabled_ && monitor_due) {
    // Broadcast-overhead measurement over the same counter gauges the ECtN
    // snapshot serializes (runs under any mechanism — Section VI-B compares
    // against non-ECtN baselines too). Serial engine only.
    const std::int32_t slots = topo_.ectn_router_slots();
    for (RouterId r = sh.r_lo; r < sh.r_hi; ++r) {
      for (std::int32_t i = 0; i < slots; ++i) {
        const EctnSlot slot = topo_.ectn_slot(r, i);
        ectn_scratch_[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
            routing_->counter_value(flat_port(r, slot.port)));
      }
      ectn_monitor_.on_update(r, ectn_scratch_.data());
    }
  }
  if (telemetry_on_) {
    for (RouterId r = sh.r_lo; r < sh.r_hi; ++r) sink_.count_ectn_update();
  }
}

// ---------------------------------------------------------------------------
// Fault overlay

void Simulator::advance_faults_serial() {
  health_.apply(fault_, now_);
  fault_next_event_ = fault_.next_event_after(now_);
}

void Simulator::purge_faulted_rings(Shard& sh) {
  // Drop in-flight packets on links that just went down: each drop returns
  // the reserved downstream credit and releases the packet, so conservation
  // (generated - refused == delivered + dropped + undeliverable +
  // in-network) keeps holding exactly. Sharded: each shard purges only the
  // rings it owns; credits whose upstream is remote ride the inbox and land
  // at the next merge.
  bool purged = false;
  for (const std::int32_t id : fault_.faulty_links()) {
    const auto l = static_cast<std::size_t>(id);
    if (n_shards_ > 1 && link_owner_[l] != sh.index) continue;
    if (ring_count_[l] == 0) continue;
    if (health_.link_up(id / radix_, id % radix_)) continue;
    while (ring_count_[l] > 0) {
      const LinkEvent& ev = ring_slab_[static_cast<std::size_t>(
          ring_offset_[l] + ring_head_[l])];
      if (n_shards_ == 1) {
        ++q_free_[static_cast<std::size_t>(ev.down_queue)];
      } else {
        const std::int32_t owner = credit_owner_[static_cast<std::size_t>(
            ev.down_queue / vmax_)];
        if (owner == sh.index) {
          ++q_free_[static_cast<std::size_t>(ev.down_queue)];
        } else {
          ShardMessage m;
          m.kind = ShardMessage::Kind::kCredit;
          m.queue = ev.down_queue;
          push_msg(sh, owner, m);
        }
      }
      ++sh.metrics.dropped;
      ++sh.totals.dropped;
      if (telemetry_on_) sink_.count_drop();
      if (trace_on_) {
        tracer_.close(now_, ev.packet,
                      static_cast<RouterId>(l / static_cast<std::size_t>(
                                                    radix_)),
                      telemetry::TraceEvent::kDrop);
      }
      release_packet(sh, ev.packet);
      ring_head_[l] = (ring_head_[l] + 1) % ring_cap_[l];
      --ring_count_[l];
    }
    purged = true;
  }
  if (!purged) return;

  // Rebuild the shard's due-link heap so the one-key-per-non-empty-ring
  // invariant survives the purge (ties keep popping in ascending link
  // order).
  sh.link_heap.clear();
  for (std::size_t l = 0; l < ring_count_.size(); ++l) {
    // Ownership first: every shard purges concurrently, so ring_count_ of a
    // link another shard owns may be mid-write — don't even read it.
    if (n_shards_ > 1 && link_owner_[l] != sh.index) continue;
    if (ring_count_[l] == 0) continue;
    const LinkEvent& front = ring_slab_[static_cast<std::size_t>(
        ring_offset_[l] + ring_head_[l])];
    link_heap_push(sh, link_key(front.arrival, static_cast<std::int32_t>(l)));
  }
}

// ---------------------------------------------------------------------------
// Sharded execution

void Simulator::push_msg(Shard& sh, std::int32_t dst,
                         const ShardMessage& msg) {
  std::vector<ShardMessage>& box = sh.outbox[static_cast<std::size_t>(dst)];
  if (box.size() == box.capacity()) ++sh.msg_growth;
  // dfsim-check: allow(CHK-ALLOC): growth is counted in msg_growth
  box.push_back(msg);
}

std::int32_t Simulator::allocate_packet(Shard& sh) {
  if (n_shards_ == 1) return pool_.allocate();
  if (sh.free_ids.empty()) return -1;
  const std::int32_t id = sh.free_ids.back();
  sh.free_ids.pop_back();
  ++sh.live;
  return id;
}

void Simulator::release_packet(Shard& sh, std::int32_t packet) {
  if (n_shards_ == 1) {
    pool_.release(packet);
    return;
  }
  // `live` is a per-shard delta (allocations minus releases, wherever the
  // id came from), so the sum over shards counts in-network packets
  // exactly even while an id rides an inbox back to its range owner.
  --sh.live;
  const auto it = std::upper_bound(shard_id_base_.begin(),
                                   shard_id_base_.end(), packet);
  const auto owner =
      static_cast<std::int32_t>(it - shard_id_base_.begin()) - 1;
  if (owner == sh.index) {
    // dfsim-check: allow(CHK-ALLOC): reserved to the shard id-range size
    sh.free_ids.push_back(packet);
  } else {
    ShardMessage m;
    m.kind = ShardMessage::Kind::kFreeId;
    m.packet = packet;
    push_msg(sh, owner, m);
  }
}

void Simulator::merge_inboxes(Shard& sh) {
  // Fixed merge order — ascending source shard, FIFO within each box — is
  // what makes a sharded run a pure function of (params, seed, shards).
  for (std::int32_t src = 0; src < n_shards_; ++src) {
    std::vector<ShardMessage>& box =
        shards_[static_cast<std::size_t>(src)].outbox[
            static_cast<std::size_t>(sh.index)];
    for (const ShardMessage& m : box) {
      switch (m.kind) {
        case ShardMessage::Kind::kLinkSend:
          ring_insert(sh, m.link, LinkEvent{m.arrival, m.packet, m.queue});
          break;
        case ShardMessage::Kind::kCredit:
          ++q_free_[static_cast<std::size_t>(m.queue)];
          break;
        case ShardMessage::Kind::kFreeId:
          // dfsim-check: allow(CHK-ALLOC): reserved to the shard id-range size
          sh.free_ids.push_back(m.packet);
          break;
      }
    }
    box.clear();
  }
  if (snap_on_) {
    // Publish this shard's forward-port occupancy (credits just applied)
    // for the remote probes of other shards this cycle.
    for (RouterId r = sh.r_lo; r < sh.r_hi; ++r) {
      for (PortIndex out = 0; out < fwd_; ++out) {
        occ_snap_[static_cast<std::size_t>(flat_port(r, out))] =
            occupancy_phits(r, out);
      }
    }
  }
}

bool Simulator::mechanism_update_due() const {
  return routing_->update_due(now_) ||
         (ectn_monitor_enabled_ && monitor_update_due());
}

bool Simulator::monitor_update_due() const {
  if (!topo_.supports_ectn()) return false;
  const Cycle period = params_.routing.ectn_update_period;
  return period > 0 && now_ % period == 0;
}

void Simulator::cycle_parallel(Shard& sh) {
  // Phase schedule for this cycle, published by shard 0 before the last
  // barrier of the previous cycle (or by run_parallel for the first), so
  // every shard executes the same barrier count.
  const bool fault_cycle = fault_cycle_;
  const bool mech_cycle = mech_cycle_;

  // Merge point: apply cross-shard events from the previous cycle. Every
  // shard is past its route phase (dispatch barrier or end-of-cycle
  // barrier), so outboxes addressed to us are quiescent.
  merge_inboxes(sh);

  if (fault_on_ && fault_cycle) {
    // The health map is global: one shard refreshes it while the rest wait.
    // The barrier also fences purge's outbox appends from the merges above.
    if (sh.index == 0) advance_faults_serial();
    barrier_->arrive_and_wait();
    purge_faulted_rings(sh);
  }

  barrier_->arrive_and_wait();  // merges/purges done; cycle phases begin
  deliver_arrivals(sh);
  inject_traffic(sh);
  if (mech_cycle) {
    // Mechanism update window: counters stop changing at the barrier above,
    // and no shard reads the refreshed state until the one below.
    barrier_->arrive_and_wait();
    update_mechanism(sh);
    barrier_->arrive_and_wait();
  }
  route_and_allocate(sh);

  barrier_->arrive_and_wait();  // route done everywhere; outboxes quiescent
  if (sh.index == 0) {
    ++now_;
    fault_cycle_ = fault_on_ && now_ == fault_next_event_;
    mech_cycle_ = mechanism_update_due();
  }
  barrier_->arrive_and_wait();  // now_ and the next schedule published
}

void Simulator::worker_loop(std::int32_t shard_index) {
  Shard& sh = shards_[static_cast<std::size_t>(shard_index)];
  std::uint64_t seen = 0;
  for (;;) {
    Cycle cycles = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      cycles = pending_cycles_;
    }
    const std::int32_t jitter = jitter_us_.load(std::memory_order_relaxed);
    if (jitter > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(jitter * shard_index));
    }
    for (Cycle i = 0; i < cycles; ++i) cycle_parallel(sh);
    std::lock_guard<std::mutex> lock(mu_);
    if (++done_count_ == n_shards_ - 1) cv_.notify_all();
  }
}

void Simulator::run_parallel(Cycle cycles) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_cycles_ = cycles;
    done_count_ = 0;
    // Initial phase schedule; subsequent cycles are published by shard 0.
    fault_cycle_ = fault_on_ && now_ == fault_next_event_;
    mech_cycle_ = mechanism_update_due();
    ++epoch_;
  }
  cv_.notify_all();
  Shard& sh = shards_[0];
  for (Cycle i = 0; i < cycles; ++i) cycle_parallel(sh);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_count_ == n_shards_ - 1; });
}

// ---------------------------------------------------------------------------
// Public driver

void Simulator::step_serial() {
  if (profile_on_) {
    step_profiled();
    return;
  }
  Shard& sh = shards_[0];
  if (fault_on_ && now_ == fault_next_event_) {
    advance_faults_serial();
    purge_faulted_rings(sh);
  }
  deliver_arrivals(sh);
  inject_traffic(sh);
  update_mechanism(sh);
  route_and_allocate(sh);
  if (telemetry_on_ && now_ == telemetry_next_sample_) flush_telemetry();
  ++now_;
}

void Simulator::step() {
  if (n_shards_ > 1) {
    run_parallel(1);
    return;
  }
  step_serial();
}

void Simulator::run(Cycle cycles) {
  if (cycles <= 0) return;
  if (n_shards_ > 1) {
    run_parallel(cycles);
    return;
  }
  for (Cycle i = 0; i < cycles; ++i) step_serial();
}

void Simulator::step_profiled() {
  // Same phase sequence as step_serial(), with steady_clock stamps between
  // phases. Timing never feeds back into simulation state, so a profiled
  // run stays bit-exact with an unprofiled one. Serial engine only.
  Shard& sh = shards_[0];
  using Clock = telemetry::PhaseProfiler::Clock;
  const Clock::time_point t0 = Clock::now();
  if (fault_on_ && now_ == fault_next_event_) {
    advance_faults_serial();
    purge_faulted_rings(sh);
  }
  const Clock::time_point t1 = Clock::now();
  profiler_.add(telemetry::Phase::kFaults, t0, t1);
  deliver_arrivals(sh);
  const Clock::time_point t2 = Clock::now();
  profiler_.add(telemetry::Phase::kDeliver, t1, t2);
  inject_traffic(sh);
  const Clock::time_point t3 = Clock::now();
  profiler_.add(telemetry::Phase::kInject, t2, t3);
  update_mechanism(sh);
  const Clock::time_point t4 = Clock::now();
  profiler_.add(telemetry::Phase::kEctn, t3, t4);
  route_and_allocate(sh);
  const Clock::time_point t5 = Clock::now();
  profiler_.add(telemetry::Phase::kRoute, t4, t5);
  if (telemetry_on_ && now_ == telemetry_next_sample_) flush_telemetry();
  profiler_.add(telemetry::Phase::kTelemetry, t5, Clock::now());
  profiler_.add_cycle();
  ++now_;
}

void Simulator::flush_telemetry() {
  const std::int32_t routers = topo_.routers();
  const std::int32_t queues_per_router = radix_ * vmax_;
  for (RouterId r = 0; r < routers; ++r) {
    std::int32_t occupied = 0;
    const std::int32_t q0 = r * queues_per_router;
    for (std::int32_t i = 0; i < queues_per_router; ++i) {
      occupied += q_size_[static_cast<std::size_t>(q0 + i)];
    }
    sink_.set_gauge_occupancy(r, occupied);
    for (PortIndex port = 0; port < fwd_; ++port) {
      const std::int32_t flat = flat_port(r, port);
      sink_.set_gauge_counter(flat, routing_->counter_value(flat));
    }
  }
  if (fault_on_) {
    std::int32_t down = 0;
    for (RouterId r = 0; r < routers; ++r) {
      for (PortIndex port = 0; port < fwd_; ++port) {
        if (!health_.link_up(r, port)) ++down;
      }
    }
    sink_.set_links_down(down);
  }
  sink_.commit_frame(now_);
  telemetry_next_sample_ = now_ + sink_.sample_period();
}

// ---------------------------------------------------------------------------
// Measurement & merged views

void Simulator::begin_measurement() {
  for (Shard& sh : shards_) sh.metrics = Metrics{};
  measure_start_ = now_;
}

const Simulator::Metrics& Simulator::metrics() const {
  if (n_shards_ == 1) return shards_[0].metrics;
  merged_metrics_ = Metrics{};
  for (const Shard& sh : shards_) {
    const Metrics& m = sh.metrics;
    merged_metrics_.delivered += m.delivered;
    merged_metrics_.delivered_phits += m.delivered_phits;
    merged_metrics_.latency_sum += m.latency_sum;
    merged_metrics_.misrouted += m.misrouted;
    merged_metrics_.local_misrouted += m.local_misrouted;
    merged_metrics_.minimal_path += m.minimal_path;
    merged_metrics_.generated += m.generated;
    merged_metrics_.refused += m.refused;
    merged_metrics_.dropped += m.dropped;
    merged_metrics_.undeliverable += m.undeliverable;
    merged_metrics_.dead_link_hops += m.dead_link_hops;
    merged_metrics_.latency_hist.merge(m.latency_hist);
  }
  return merged_metrics_;
}

const Simulator::Totals& Simulator::lifetime_totals() const {
  if (n_shards_ == 1) return shards_[0].totals;
  merged_totals_ = Totals{};
  for (const Shard& sh : shards_) {
    merged_totals_.generated += sh.totals.generated;
    merged_totals_.refused += sh.totals.refused;
    merged_totals_.delivered += sh.totals.delivered;
    merged_totals_.dropped += sh.totals.dropped;
    merged_totals_.undeliverable += sh.totals.undeliverable;
  }
  return merged_totals_;
}

std::int64_t Simulator::packets_in_network() const {
  if (n_shards_ == 1) return static_cast<std::int64_t>(pool_.in_use());
  std::int64_t live = 0;
  for (const Shard& sh : shards_) live += sh.live;
  return live;
}

const std::vector<Simulator::Delivery>& Simulator::delivery_log() const {
  if (n_shards_ == 1) return shards_[0].deliveries;
  merged_deliveries_.clear();
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.deliveries.size();
  merged_deliveries_.reserve(total);
  for (const Shard& sh : shards_) {
    merged_deliveries_.insert(merged_deliveries_.end(), sh.deliveries.begin(),
                              sh.deliveries.end());
  }
  return merged_deliveries_;
}

double Simulator::throughput() const {
  const Cycle cycles = measured_cycles();
  if (cycles <= 0) return 0.0;
  return static_cast<double>(metrics().delivered_phits) /
         (static_cast<double>(topo_.nodes()) * static_cast<double>(cycles));
}

double Simulator::generated_load() const {
  const Cycle cycles = measured_cycles();
  if (cycles <= 0) return 0.0;
  return static_cast<double>(metrics().generated) *
         static_cast<double>(psize_) /
         (static_cast<double>(topo_.nodes()) * static_cast<double>(cycles));
}

double Simulator::backlog_per_node() const {
  std::int64_t waiting = 0;
  for (RouterId r = 0; r < topo_.routers(); ++r) {
    for (std::int32_t i = 0; i < topo_.concentration(); ++i) {
      waiting += q_size_[static_cast<std::size_t>(
          queue_index(r, fwd_ + i, 0))];
    }
  }
  return static_cast<double>(waiting) / static_cast<double>(topo_.nodes());
}

void Simulator::set_traffic(const TrafficParams& traffic) {
  params_.traffic = traffic;
  for (Shard& sh : shards_) sh.traffic->reset_spec(traffic);
}

void Simulator::start_trace_recording(std::size_t reserve_records) {
  if (n_shards_ > 1) {
    throw std::invalid_argument(
        "trace recording requires engine.threads = 1 (a shard sees only its "
        "own sources)");
  }
  shards_[0].traffic->start_recording(reserve_records);
}

void Simulator::enable_delivery_log() {
  log_deliveries_ = true;
  for (Shard& sh : shards_) sh.deliveries.clear();
}

void Simulator::enable_ectn_monitor(std::int32_t async_mult,
                                    std::int32_t urgent_delta) {
  if (!topo_.supports_ectn()) {
    throw std::invalid_argument(
        "ECtN overhead monitor needs a topology with contention-broadcast "
        "support");
  }
  if (n_shards_ > 1) {
    throw std::invalid_argument(
        "ECtN overhead monitor requires engine.threads = 1");
  }
  const std::int32_t channels = topo_.ectn_channels();
  const std::int32_t id_bits = bits_for_value(channels - 1);
  ectn_monitor_.configure(topo_.routers(), topo_.ectn_router_slots(),
                          ectn_bits_per_counter_, id_bits, async_mult,
                          urgent_delta);
  ectn_monitor_enabled_ = true;
}

std::int64_t Simulator::allocation_events() const {
  std::int64_t events = pool_.grow_events;
  for (const Shard& sh : shards_) {
    events += sh.log_growth + sh.msg_growth +
              sh.traffic->record_growth_events();
  }
  return events;
}

bool Simulator::debug_check_active_state() const {
  const std::int32_t routers = topo_.routers();
  const std::int32_t qwpr = queue_words_per_router_;

  // (1) Queue-occupancy bits mirror q_size exactly; the owning shard's
  // router summary bit mirrors the OR of the router's queue words.
  std::int64_t queued_packets = 0;
  for (RouterId r = 0; r < routers; ++r) {
    const Shard& sh = shards_[static_cast<std::size_t>(
        n_shards_ == 1 ? 0 : shard_of_router_[static_cast<std::size_t>(r)])];
    const std::size_t qbase =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(qwpr);
    std::uint64_t any = 0;
    for (PortIndex ip = 0; ip < radix_; ++ip) {
      for (VcIndex vc = 0; vc < vmax_; ++vc) {
        const std::int32_t bit = ip * vmax_ + vc;
        const bool set =
            (queue_active_[qbase + static_cast<std::size_t>(bit >> 6)] >>
             (bit & 63)) & 1;
        const std::int32_t size =
            q_size_[static_cast<std::size_t>(queue_index(r, ip, vc))];
        if (set != (size > 0)) return false;
        queued_packets += size;
      }
    }
    for (std::int32_t w = 0; w < qwpr; ++w) {
      any |= queue_active_[qbase + static_cast<std::size_t>(w)];
    }
    const std::int32_t rl = r - sh.r_lo;
    const bool rset =
        (sh.router_active[static_cast<std::size_t>(rl >> 6)] >> (rl & 63)) & 1;
    if (rset != (any != 0)) return false;
  }

  // (2) Each shard's due-link heap holds exactly one entry per non-empty
  // ring it owns, keyed by that ring's front arrival, and every key is
  // still in the future or due this cycle.
  std::vector<std::vector<std::uint64_t>> keys(shards_.size());
  std::vector<std::size_t> nonempty(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    keys[s] = shards_[s].link_heap;
    std::sort(keys[s].begin(), keys[s].end());
  }
  std::int64_t inflight_packets = 0;
  for (std::size_t l = 0; l < ring_cap_.size(); ++l) {
    inflight_packets += ring_count_[l];
    if (ring_count_[l] == 0) continue;
    const auto owner = static_cast<std::size_t>(
        n_shards_ == 1 ? 0 : link_owner_[l]);
    ++nonempty[owner];
    // Fault overlay: nothing may remain in flight on a down link (purged at
    // the fault event, never re-entered by the allocator filter).
    if (fault_on_ &&
        !health_.link_up(
            static_cast<RouterId>(l / static_cast<std::size_t>(radix_)),
            static_cast<PortIndex>(l % static_cast<std::size_t>(radix_)))) {
      return false;
    }
    const LinkEvent& front =
        ring_slab_[static_cast<std::size_t>(ring_offset_[l] + ring_head_[l])];
    if (front.arrival < now_) return false;
    const std::uint64_t key =
        link_key(front.arrival, static_cast<std::int32_t>(l));
    if (!std::binary_search(keys[owner].begin(), keys[owner].end(), key)) {
      return false;
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (nonempty[s] != shards_[s].link_heap.size()) return false;
    if (!std::is_heap(shards_[s].link_heap.begin(),
                      shards_[s].link_heap.end(),
                      std::greater<std::uint64_t>{})) {
      return false;
    }
  }

  // (3) Pool accounting: every live packet sits in a queue, on a link, or
  // (sharded) in a kLinkSend handoff waiting in an outbox.
  std::int64_t pending_sends = 0;
  for (const Shard& sh : shards_) {
    for (const auto& box : sh.outbox) {
      for (const ShardMessage& m : box) {
        if (m.kind == ShardMessage::Kind::kLinkSend) ++pending_sends;
      }
    }
  }
  if (n_shards_ == 1) {
    if (pool_.in_use() !=
        static_cast<std::size_t>(queued_packets + inflight_packets)) {
      return false;
    }
  } else {
    if (packets_in_network() !=
        queued_packets + inflight_packets + pending_sends) {
      return false;
    }
  }

  // (4) Lifetime packet conservation, drops included.
  return conservation_error() == 0;
}

}  // namespace dfsim
