// Sense-reversing spin barrier for the sharded cycle loop. Shard counts are
// small (<= cores) and the phases between barriers are short, so spinning
// with a yield beats futex-based std::barrier wakeup latency here — and the
// plain acquire/release atomics are fully visible to TSan (the suppression
// file stays empty).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace dfsim {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::int32_t parties) : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all `parties` threads have arrived. The last arrival
  /// resets the count and releases the generation; everyone else spins on
  /// the generation word. The release/acquire pair on gen_ orders every
  /// write before the barrier with every read after it, in both directions.
  void arrive_and_wait() {
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
      return;
    }
    while (gen_.load(std::memory_order_acquire) == gen) {
      std::this_thread::yield();
    }
  }

 private:
  const std::int32_t parties_;
  std::atomic<std::int32_t> count_{0};
  std::atomic<std::uint64_t> gen_{0};
};

}  // namespace dfsim
