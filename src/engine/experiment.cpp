#include "engine/experiment.hpp"

namespace dfsim {

SteadyResult run_steady(const SimParams& params, const SteadyOptions& options) {
  const std::int32_t reps = options.reps < 1 ? 1 : options.reps;
  SteadyResult acc;
  // Tail quantiles are order statistics, not means: averaging per-rep p99s
  // is NOT the p99 of the combined sample (a single congested rep's tail
  // disappears into the average). The reps' histograms are merged and the
  // quantiles read once from the pooled distribution; the remaining metrics
  // are true means and keep the per-rep average.
  LatencyHistogram pooled;
  for (std::int32_t rep = 0; rep < reps; ++rep) {
    SimParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(rep) * 7919u;
    Simulator sim(p);
    sim.run(options.warmup);
    sim.begin_measurement();
    sim.run(options.measure);

    const Simulator::Metrics& m = sim.metrics();
    pooled.merge(m.latency_hist);
    acc.latency_avg += m.mean_latency();
    acc.throughput += sim.throughput();
    acc.misrouted_fraction += m.misrouted_fraction();
    acc.local_misrouted_fraction +=
        m.delivered > 0 ? static_cast<double>(m.local_misrouted) /
                              static_cast<double>(m.delivered)
                        : 0.0;
    acc.minimal_path_fraction += m.minimal_path_fraction();
    acc.backlog_per_node += sim.backlog_per_node();
    // metrics() was reset at begin_measurement, so `generated` covers the
    // measure window only; the accessor guards the zero-length-window case.
    acc.generated_load += sim.generated_load();
  }
  const auto n = static_cast<double>(reps);
  acc.latency_avg /= n;
  acc.latency_p50 = pooled.quantile(0.50);
  acc.latency_p95 = pooled.quantile(0.95);
  acc.latency_p99 = pooled.quantile(0.99);
  acc.throughput /= n;
  acc.misrouted_fraction /= n;
  acc.local_misrouted_fraction /= n;
  acc.minimal_path_fraction /= n;
  acc.backlog_per_node /= n;
  acc.generated_load /= n;
  acc.latency_overflow = static_cast<double>(pooled.overflow()) / n;
  return acc;
}

TransientResult::TransientResult(Cycle pre, Cycle post)
    : pre_(pre),
      post_(post),
      count_(static_cast<std::size_t>(pre + post), 0),
      misrouted_(static_cast<std::size_t>(pre + post), 0),
      latency_sum_(static_cast<std::size_t>(pre + post), 0.0) {}

void TransientResult::record(Cycle birth_rel, Cycle latency, bool misrouted) {
  if (birth_rel < -pre_ || birth_rel >= post_) return;
  const std::size_t i = index(birth_rel);
  ++count_[i];
  if (misrouted) ++misrouted_[i];
  latency_sum_[i] += static_cast<double>(latency);
}

double TransientResult::latency_at(Cycle t, Cycle window) const {
  const Cycle half = window / 2;
  const Cycle lo = std::max<Cycle>(-pre_, t - half);
  const Cycle hi = std::min<Cycle>(post_, t - half + std::max<Cycle>(1, window));
  std::int64_t n = 0;
  double sum = 0.0;
  for (Cycle c = lo; c < hi; ++c) {
    n += count_[index(c)];
    sum += latency_sum_[index(c)];
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TransientResult::misrouted_pct_at(Cycle t, Cycle window) const {
  const Cycle half = window / 2;
  const Cycle lo = std::max<Cycle>(-pre_, t - half);
  const Cycle hi = std::min<Cycle>(post_, t - half + std::max<Cycle>(1, window));
  std::int64_t n = 0;
  std::int64_t mis = 0;
  for (Cycle c = lo; c < hi; ++c) {
    n += count_[index(c)];
    mis += misrouted_[index(c)];
  }
  return n > 0 ? 100.0 * static_cast<double>(mis) / static_cast<double>(n)
               : 0.0;
}

TransientResult run_transient(const SimParams& params,
                              const TransientOptions& options) {
  TransientResult result(options.pre, options.post);
  const std::int32_t reps = options.reps < 1 ? 1 : options.reps;
  for (std::int32_t rep = 0; rep < reps; ++rep) {
    SimParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(rep) * 7919u;
    p.traffic = options.before;
    Simulator sim(p);
    sim.run(options.warmup);
    sim.enable_delivery_log();
    sim.run(options.pre);
    const Cycle switch_cycle = sim.now();
    sim.set_traffic(options.after);
    sim.run(options.post + options.drain);

    for (const Simulator::Delivery& d : sim.delivery_log()) {
      result.record(d.birth - switch_cycle, d.latency, d.misrouted);
    }
  }
  return result;
}

}  // namespace dfsim
