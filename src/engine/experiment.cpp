#include "engine/experiment.hpp"

#include <chrono>

namespace dfsim {

namespace {

/// Runs `sim` forward `cycles` cycles in `window`-sized chunks, stopping early
/// when no packet has been delivered over a full window while packets are
/// still in the network (deadlock / total blackout under a fault schedule),
/// or when the optional wall-clock cap trips. Returns false on early stop.
///
/// Chunked stepping is bit-exact with one long run — run(a); run(b) is
/// identical to run(a + b) — so healthy results are unchanged by the window.
bool run_guarded(Simulator& sim, Cycle cycles, Cycle window,
                 double wall_limit_s,
                 const std::function<void(Cycle, std::int64_t, double)>&
                     heartbeat = nullptr) {
  if (cycles <= 0) return true;
  if (window <= 0 && wall_limit_s <= 0.0 && !heartbeat) {
    sim.run(cycles);
    return true;
  }
  const auto start = std::chrono::steady_clock::now();
  const Cycle chunk = window > 0 ? window : cycles;
  Cycle remaining = cycles;
  while (remaining > 0) {
    const Cycle step = remaining < chunk ? remaining : chunk;
    const std::int64_t delivered_before = sim.lifetime_totals().delivered;
    sim.run(step);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (heartbeat) {
      heartbeat(sim.now(), sim.lifetime_totals().delivered, elapsed.count());
    }
    if (window > 0 && step == chunk &&
        sim.lifetime_totals().delivered == delivered_before &&
        sim.packets_in_network() > 0) {
      return false;  // a full window with live packets but zero progress
    }
    remaining -= step;
    if (wall_limit_s > 0.0 && elapsed.count() > wall_limit_s) return false;
  }
  return true;
}

}  // namespace

SteadyResult run_steady(const SimParams& params, const SteadyOptions& options) {
  const std::int32_t reps = options.reps < 1 ? 1 : options.reps;
  SteadyResult acc;
  // Tail quantiles are order statistics, not means: averaging per-rep p99s
  // is NOT the p99 of the combined sample (a single congested rep's tail
  // disappears into the average). The reps' histograms are merged and the
  // quantiles read once from the pooled distribution; the remaining metrics
  // are true means and keep the per-rep average.
  LatencyHistogram pooled;
  for (std::int32_t rep = 0; rep < reps; ++rep) {
    SimParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(rep) * 7919u;
    Simulator sim(p);
    bool ok = run_guarded(sim, options.warmup, options.progress_window,
                          options.wall_limit_s, options.heartbeat);
    sim.begin_measurement();
    if (ok) {
      ok = run_guarded(sim, options.measure, options.progress_window,
                       options.wall_limit_s, options.heartbeat);
    }
    if (!ok) acc.timed_out += 1.0;

    const Simulator::Metrics& m = sim.metrics();
    pooled.merge(m.latency_hist);
    acc.latency_avg += m.mean_latency();
    acc.throughput += sim.throughput();
    acc.misrouted_fraction += m.misrouted_fraction();
    acc.local_misrouted_fraction +=
        m.delivered > 0 ? static_cast<double>(m.local_misrouted) /
                              static_cast<double>(m.delivered)
                        : 0.0;
    acc.minimal_path_fraction += m.minimal_path_fraction();
    acc.backlog_per_node += sim.backlog_per_node();
    // metrics() was reset at begin_measurement, so `generated` covers the
    // measure window only; the accessor guards the zero-length-window case.
    acc.generated_load += sim.generated_load();
    // Fault-overlay columns, from lifetime totals so a fault firing during
    // warmup is still visible in the measured row.
    const Simulator::Totals& t = sim.lifetime_totals();
    const double accepted =
        static_cast<double>(t.generated - t.refused) > 0.0
            ? static_cast<double>(t.generated - t.refused)
            : 1.0;
    acc.dropped_pct += 100.0 * static_cast<double>(t.dropped) / accepted;
    acc.undeliverable_pct +=
        100.0 * static_cast<double>(t.undeliverable) / accepted;
    acc.dead_traversals += static_cast<double>(m.dead_link_hops);
    const std::int64_t cons = sim.conservation_error();
    acc.conservation_error += static_cast<double>(cons < 0 ? -cons : cons);
  }
  const auto n = static_cast<double>(reps);
  acc.latency_avg /= n;
  acc.latency_p50 = pooled.quantile(0.50);
  acc.latency_p95 = pooled.quantile(0.95);
  acc.latency_p99 = pooled.quantile(0.99);
  acc.throughput /= n;
  acc.misrouted_fraction /= n;
  acc.local_misrouted_fraction /= n;
  acc.minimal_path_fraction /= n;
  acc.backlog_per_node /= n;
  acc.generated_load /= n;
  acc.latency_overflow = static_cast<double>(pooled.overflow()) / n;
  acc.dropped_pct /= n;
  acc.undeliverable_pct /= n;
  acc.dead_traversals /= n;
  acc.conservation_error /= n;
  acc.timed_out /= n;
  return acc;
}

TransientResult::TransientResult(Cycle pre, Cycle post)
    : pre_(pre),
      post_(post),
      count_(static_cast<std::size_t>(pre + post), 0),
      misrouted_(static_cast<std::size_t>(pre + post), 0),
      latency_sum_(static_cast<std::size_t>(pre + post), 0.0),
      hist_(static_cast<std::size_t>(pre + post)) {}

void TransientResult::record(Cycle birth_rel, Cycle latency, bool misrouted) {
  if (birth_rel < -pre_ || birth_rel >= post_) return;
  const std::size_t i = index(birth_rel);
  ++count_[i];
  if (misrouted) ++misrouted_[i];
  latency_sum_[i] += static_cast<double>(latency);
  hist_[i].add(latency);
}

double TransientResult::latency_at(Cycle t, Cycle window) const {
  const Cycle half = window / 2;
  const Cycle lo = std::max<Cycle>(-pre_, t - half);
  const Cycle hi = std::min<Cycle>(post_, t - half + std::max<Cycle>(1, window));
  std::int64_t n = 0;
  double sum = 0.0;
  for (Cycle c = lo; c < hi; ++c) {
    n += count_[index(c)];
    sum += latency_sum_[index(c)];
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TransientResult::latency_p99_at(Cycle t, Cycle window) const {
  const Cycle half = window / 2;
  const Cycle lo = std::max<Cycle>(-pre_, t - half);
  const Cycle hi = std::min<Cycle>(post_, t - half + std::max<Cycle>(1, window));
  LatencyHistogram merged;
  for (Cycle c = lo; c < hi; ++c) merged.merge(hist_[index(c)]);
  return merged.total() > 0 ? merged.quantile(0.99) : 0.0;
}

double TransientResult::misrouted_pct_at(Cycle t, Cycle window) const {
  const Cycle half = window / 2;
  const Cycle lo = std::max<Cycle>(-pre_, t - half);
  const Cycle hi = std::min<Cycle>(post_, t - half + std::max<Cycle>(1, window));
  std::int64_t n = 0;
  std::int64_t mis = 0;
  for (Cycle c = lo; c < hi; ++c) {
    n += count_[index(c)];
    mis += misrouted_[index(c)];
  }
  return n > 0 ? 100.0 * static_cast<double>(mis) / static_cast<double>(n)
               : 0.0;
}

TransientResult run_transient(const SimParams& params,
                              const TransientOptions& options) {
  TransientResult result(options.pre, options.post);
  const std::int32_t reps = options.reps < 1 ? 1 : options.reps;
  for (std::int32_t rep = 0; rep < reps; ++rep) {
    SimParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(rep) * 7919u;
    p.traffic = options.before;
    Simulator sim(p);
    bool ok = run_guarded(sim, options.warmup, options.progress_window,
                          options.wall_limit_s, options.heartbeat);
    sim.enable_delivery_log();
    if (ok) {
      ok = run_guarded(sim, options.pre, options.progress_window,
                       options.wall_limit_s, options.heartbeat);
    }
    const Cycle switch_cycle = sim.now();
    sim.set_traffic(options.after);
    if (ok) {
      ok = run_guarded(sim, options.post + options.drain,
                       options.progress_window, options.wall_limit_s,
                       options.heartbeat);
    }
    if (!ok) result.mark_timed_out();

    for (const Simulator::Delivery& d : sim.delivery_log()) {
      result.record(d.birth - switch_cycle, d.latency, d.misrouted);
    }
  }
  return result;
}

}  // namespace dfsim
