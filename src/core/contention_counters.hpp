// Per-output-port contention counters (Section IV of the paper).
//
// A counter tracks how many packet *heads* in this router are currently
// requesting the port as their minimal output: +1 when a packet becomes head
// of an input VC (or changes its requested port), -1 when its tail leaves the
// router. Contention is therefore observed the cycle it appears — before any
// queue has had time to fill — which is what gives the mechanism its fast
// transient response (Figures 7/8).
//
// Counters saturate (4 bits by default, matching the Section VI-B broadcast
// overhead math) and are branch-light: the hot path is one load, one clamped
// add, one store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dfsim {

class ContentionCounters {
 public:
  explicit ContentionCounters(std::int32_t ports,
                              std::int32_t saturation = 15)
      : saturation_(static_cast<std::int16_t>(saturation)),
        values_(static_cast<std::size_t>(ports), 0),
        // Tracks increments dropped at saturation so the matching decrement
        // is dropped too and head/tail pairs stay symmetric.
        overflow_(static_cast<std::size_t>(ports), 0) {}

  /// A packet head starts requesting `port`.
  void on_head(PortIndex port) {
    auto& v = values_[static_cast<std::size_t>(port)];
    if (v < saturation_) {
      ++v;
    } else {
      ++overflow_[static_cast<std::size_t>(port)];
    }
  }

  /// The tail of a packet whose head requested `port` leaves the router.
  void on_tail_departure(PortIndex port) {
    auto& over = overflow_[static_cast<std::size_t>(port)];
    if (over > 0) {
      --over;
      return;
    }
    auto& v = values_[static_cast<std::size_t>(port)];
    v = static_cast<std::int16_t>(std::max<std::int32_t>(0, v - 1));
  }

  [[nodiscard]] std::int32_t value(PortIndex port) const {
    return values_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] std::int32_t ports() const {
    return static_cast<std::int32_t>(values_.size());
  }
  [[nodiscard]] std::int32_t saturation() const { return saturation_; }

  void reset() {
    std::fill(values_.begin(), values_.end(), std::int16_t{0});
    std::fill(overflow_.begin(), overflow_.end(), std::int32_t{0});
  }

 private:
  std::int16_t saturation_;
  std::vector<std::int16_t> values_;
  std::vector<std::int32_t> overflow_;
};

}  // namespace dfsim
