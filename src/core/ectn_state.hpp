// ECtN (Explicit Contention Notification, Section V-C / VI-B): every router
// periodically broadcasts its global-port contention counters inside its
// group, so all group members know the contention of every global channel and
// can misroute — and pick an alternative channel — at injection time.
//
// This header holds (a) the per-group snapshot the simulator consults, (b)
// the analytic broadcast-overhead estimate the paper derives (~6 phits per
// 100-cycle update at Table I scale), and (c) the on-line overhead monitor
// that measures what the alternative encodings the paper sketches would cost
// on live traffic (full array / nonempty-with-id / incremental / async).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "util/types.hpp"

namespace dfsim {

/// Bits needed to represent values 0..max_value. Shared by the analytic
/// overhead estimate and the live monitor so the Section VI-B arithmetic
/// cannot desynchronize.
[[nodiscard]] constexpr std::int32_t bits_for_value(std::int32_t max_value) {
  std::int32_t bits = 1;
  while ((1 << bits) <= max_value) ++bits;
  return bits;
}

// ---------------------------------------------------------------------------
// Snapshot consulted by injection decisions.

/// Per-group copy of all a*h global-channel counters, refreshed every
/// `ectn_update_period` cycles by the simulator.
class EctnSnapshot {
 public:
  void resize(std::int32_t groups, std::int32_t channels_per_group) {
    channels_ = channels_per_group;
    values_.assign(
        static_cast<std::size_t>(groups) * static_cast<std::size_t>(channels_),
        0);
  }

  [[nodiscard]] std::int32_t value(GroupId g, std::int32_t channel) const {
    return values_[static_cast<std::size_t>(g) *
                       static_cast<std::size_t>(channels_) +
                   static_cast<std::size_t>(channel)];
  }
  void set(GroupId g, std::int32_t channel, std::int32_t value) {
    values_[static_cast<std::size_t>(g) * static_cast<std::size_t>(channels_) +
            static_cast<std::size_t>(channel)] =
        static_cast<std::int16_t>(value);
  }
  [[nodiscard]] std::int32_t channels_per_group() const { return channels_; }

 private:
  std::int32_t channels_ = 0;
  std::vector<std::int16_t> values_;
};

// ---------------------------------------------------------------------------
// Analytic estimate (paper's Section VI-B arithmetic).

struct EctnOverheadEstimate {
  std::int32_t counters = 0;         // counters broadcast per group (a*h)
  std::int32_t bits_per_counter = 0; // ceil(log2(saturation+1))
  std::int32_t payload_bits = 0;     // counters * bits_per_counter
  double phits = 0.0;                // payload / phit size
  double bandwidth_fraction = 0.0;   // phits per update / update period
};

[[nodiscard]] EctnOverheadEstimate estimate_ectn_overhead(
    const SimParams& params, std::int32_t phit_bits = 80);

// ---------------------------------------------------------------------------
// Live measurement.

struct EctnOverheadReport {
  // Average broadcast payload in bits per update per router, per encoding.
  double avg_bits_full = 0.0;
  double avg_bits_nonempty = 0.0;
  double avg_bits_incremental = 0.0;
  double avg_bits_async = 0.0;
  std::int64_t async_urgent_messages = 0;

  [[nodiscard]] double phits_full(std::int32_t phit_bits) const {
    return avg_bits_full / static_cast<double>(phit_bits);
  }
  /// Link-bandwidth fraction of a 1 phit/cycle local link consumed by one
  /// router's updates of `bits` every `period` cycles.
  [[nodiscard]] double overhead_fraction(std::int32_t phit_bits, Cycle period,
                                         double bits) const {
    if (period <= 0) return 0.0;
    return (bits / static_cast<double>(phit_bits)) /
           static_cast<double>(period);
  }
};

/// Samples one router's h global counters at every update period and
/// accumulates what each encoding would have sent. Owned by the simulator;
/// see Simulator::enable_ectn_monitor.
class EctnOverheadMonitor {
 public:
  void configure(std::int32_t routers, std::int32_t counters_per_router,
                 std::int32_t bits_per_counter, std::int32_t id_bits,
                 std::int32_t async_mult, std::int32_t urgent_delta);

  /// Feed the current counter values of one router at an update boundary.
  /// `values` must hold `counters_per_router` entries.
  void on_update(RouterId router, const std::int16_t* values);

  [[nodiscard]] EctnOverheadReport report() const;

 private:
  std::int32_t counters_per_router_ = 0;
  std::int32_t bits_per_counter_ = 4;
  std::int32_t id_bits_ = 0;
  std::int32_t async_mult_ = 4;
  std::int32_t urgent_delta_ = 4;

  // Last values seen per router: [routers x counters_per_router], for the
  // incremental encoding (vs previous period) and the async encoding (vs
  // previous *full* broadcast).
  std::vector<std::int16_t> last_period_;
  std::vector<std::int16_t> last_full_;
  std::vector<std::int32_t> updates_seen_;  // per router

  std::int64_t samples_ = 0;  // (router, update) samples
  double bits_full_ = 0.0;
  double bits_nonempty_ = 0.0;
  double bits_incremental_ = 0.0;
  double bits_async_ = 0.0;
  std::int64_t urgent_messages_ = 0;
};

}  // namespace dfsim
