// Misrouting triggers. The Base mechanism fires when a contention counter
// reaches a fixed threshold; the Section VI-C statistical variant ramps the
// misrouting probability over a window of counter values below the threshold
// so the minimal path is never fully abandoned under sustained adversarial
// load.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim {

struct ContentionThresholdTrigger {
  std::int32_t threshold = 6;
  bool statistical = false;
  std::int32_t window = 4;

  /// True when a packet consulting counter value `counter` should misroute.
  /// Statistical mode ramps the misrouting probability from ~0 at the
  /// threshold to 1 at threshold + window, so a wider window keeps a larger
  /// share of traffic on the minimal path under sustained contention.
  [[nodiscard]] bool fires(std::int32_t counter, Rng& rng) const {
    if (counter < threshold) return false;
    if (!statistical) return true;
    const std::int32_t w = window < 1 ? 1 : window;
    if (counter >= threshold + w) return true;
    return rng.next_bool(static_cast<double>(counter - threshold + 1) /
                         static_cast<double>(w + 1));
  }
};

/// Credit/occupancy trigger used by OLM and the credit half of Hybrid: fires
/// when a link's buffered phits exceed `fraction` of its capacity.
struct CreditOccupancyTrigger {
  double fraction = 0.35;

  [[nodiscard]] bool fires(std::int32_t occupied_phits,
                           std::int32_t capacity_phits) const {
    return static_cast<double>(occupied_phits) >=
           fraction * static_cast<double>(capacity_phits);
  }
};

}  // namespace dfsim
