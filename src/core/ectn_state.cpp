#include "core/ectn_state.hpp"

namespace dfsim {

EctnOverheadEstimate estimate_ectn_overhead(const SimParams& params,
                                            std::int32_t phit_bits) {
  EctnOverheadEstimate est;
  est.counters = params.topo.a * params.topo.h;
  est.bits_per_counter = bits_for_value(params.routing.counter_saturation);
  est.payload_bits = est.counters * est.bits_per_counter;
  est.phits = static_cast<double>(est.payload_bits) /
              static_cast<double>(phit_bits);
  est.bandwidth_fraction =
      est.phits / static_cast<double>(params.routing.ectn_update_period);
  return est;
}

void EctnOverheadMonitor::configure(std::int32_t routers,
                                    std::int32_t counters_per_router,
                                    std::int32_t bits_per_counter,
                                    std::int32_t id_bits,
                                    std::int32_t async_mult,
                                    std::int32_t urgent_delta) {
  counters_per_router_ = counters_per_router;
  bits_per_counter_ = bits_per_counter;
  id_bits_ = id_bits;
  async_mult_ = async_mult < 1 ? 1 : async_mult;
  urgent_delta_ = urgent_delta;
  const std::size_t total = static_cast<std::size_t>(routers) *
                            static_cast<std::size_t>(counters_per_router);
  last_period_.assign(total, 0);
  last_full_.assign(total, 0);
  updates_seen_.assign(static_cast<std::size_t>(routers), 0);
  samples_ = 0;
  bits_full_ = bits_nonempty_ = bits_incremental_ = bits_async_ = 0.0;
  urgent_messages_ = 0;
}

void EctnOverheadMonitor::on_update(RouterId router,
                                    const std::int16_t* values) {
  const std::size_t base = static_cast<std::size_t>(router) *
                           static_cast<std::size_t>(counters_per_router_);
  const std::int32_t entry_bits = bits_per_counter_ + id_bits_;

  std::int32_t nonempty = 0;
  std::int32_t changed = 0;
  std::int32_t urgent = 0;
  for (std::int32_t c = 0; c < counters_per_router_; ++c) {
    const std::int16_t v = values[c];
    if (v != 0) ++nonempty;
    if (v != last_period_[base + static_cast<std::size_t>(c)]) ++changed;
    const std::int32_t drift =
        v - last_full_[base + static_cast<std::size_t>(c)];
    if (drift >= urgent_delta_ || -drift >= urgent_delta_) ++urgent;
  }

  bits_full_ += static_cast<double>(counters_per_router_ * bits_per_counter_);
  bits_nonempty_ += static_cast<double>(nonempty * entry_bits);
  bits_incremental_ += static_cast<double>(changed * entry_bits);

  // Async policy: a full broadcast every async_mult-th update; in between,
  // only urgent (id, value) messages for counters that drifted past the
  // delta since the last full broadcast.
  auto& seen = updates_seen_[static_cast<std::size_t>(router)];
  if (seen % async_mult_ == 0) {
    bits_async_ +=
        static_cast<double>(counters_per_router_ * bits_per_counter_);
    for (std::int32_t c = 0; c < counters_per_router_; ++c) {
      last_full_[base + static_cast<std::size_t>(c)] = values[c];
    }
  } else {
    bits_async_ += static_cast<double>(urgent * entry_bits);
    urgent_messages_ += urgent;
    // Urgent messages refresh the receivers' view of those counters.
    for (std::int32_t c = 0; c < counters_per_router_; ++c) {
      const std::int32_t drift =
          values[c] - last_full_[base + static_cast<std::size_t>(c)];
      if (drift >= urgent_delta_ || -drift >= urgent_delta_) {
        last_full_[base + static_cast<std::size_t>(c)] = values[c];
      }
    }
  }
  ++seen;

  for (std::int32_t c = 0; c < counters_per_router_; ++c) {
    last_period_[base + static_cast<std::size_t>(c)] = values[c];
  }
  ++samples_;
}

EctnOverheadReport EctnOverheadMonitor::report() const {
  EctnOverheadReport rep;
  if (samples_ == 0) return rep;
  const auto n = static_cast<double>(samples_);
  rep.avg_bits_full = bits_full_ / n;
  rep.avg_bits_nonempty = bits_nonempty_ / n;
  rep.avg_bits_incremental = bits_incremental_ / n;
  rep.avg_bits_async = bits_async_ / n;
  rep.async_urgent_messages = urgent_messages_;
  return rep;
}

}  // namespace dfsim
