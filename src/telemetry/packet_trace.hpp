// Packet-lifecycle tracing: opt-in, deterministically sampled per-packet
// event records (inject -> route decision + cause -> per-hop queue/link
// events -> deliver/drop).
//
// Sampling draws from the tracer's OWN RNG stream (seeded from trace.seed,
// or run seed when 0) — routing and traffic draws are untouched, so a traced
// run is bit-identical to an untraced one, and the same (run seed,
// trace seed, sample rate) always selects the same packets. One sampling
// draw is taken per *accepted* injection regardless of capacity, so the
// selected set never depends on buffer sizes.
//
// Events are 24-byte PODs in a vector reserved to trace.max_events at
// configure time (recording stops, with a dropped count, when full — no
// allocation after warmup). Export paths: a compact binary format with a
// round-trip reader, and Chrome trace-event JSON loadable in Perfetto /
// chrome://tracing (async "b"/"e" spans per packet, with tid = router so
// lanes group by router).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/config.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim::telemetry {

struct TraceEvent {
  // Event types (stored as uint8_t; values are part of the binary format).
  static constexpr std::uint8_t kInject = 0;         // aux = dst node
  static constexpr std::uint8_t kRouteDecision = 1;  // arg = MisrouteCause
  static constexpr std::uint8_t kQueueHead = 2;      // arg = input port
  static constexpr std::uint8_t kLinkDepart = 3;     // arg = output port
  static constexpr std::uint8_t kLinkArrive = 4;     // arg = input port
  static constexpr std::uint8_t kDeliver = 5;        // aux = latency
  static constexpr std::uint8_t kDrop = 6;
  static constexpr std::uint8_t kTypeCount = 7;

  std::int64_t cycle = 0;
  std::uint32_t id = 0;      // monotonic per-traced-packet id (pool ids recycle)
  std::uint16_t router = 0;
  std::uint8_t type = 0;
  std::uint8_t arg = 0;
  std::uint32_t aux = 0;
};

[[nodiscard]] const char* to_string_event(std::uint8_t type);

class PacketTracer {
 public:
  PacketTracer() : rng_(0) {}

  /// Preallocates the event buffer (params.max_events) and the pool-id ->
  /// trace-id map (`pool_capacity` slots). All allocation happens here.
  void configure(const TraceParams& params, std::uint64_t run_seed,
                 std::size_t pool_capacity);

  [[nodiscard]] bool configured() const { return !slot_of_.empty(); }

  /// Per accepted injection: one sampling draw from the tracer's own RNG;
  /// when the packet is selected, opens its lifecycle with a kInject event.
  void on_inject(Cycle now, std::int32_t packet, RouterId router, NodeId dst) {
    const bool sampled = rng_.next_bool_below(sample_threshold_);
    if (!sampled) return;
    if (static_cast<std::size_t>(packet) >= slot_of_.size()) return;
    ++sampled_packets_;
    slot_of_[static_cast<std::size_t>(packet)] = next_id_;
    push(now, next_id_++, router, TraceEvent::kInject, 0,
         static_cast<std::uint32_t>(dst));
  }

  [[nodiscard]] bool traced(std::int32_t packet) const {
    const auto pi = static_cast<std::size_t>(packet);
    return pi < slot_of_.size() && slot_of_[pi] != kUntraced;
  }

  /// Mid-lifecycle event; no-op unless the packet was sampled at injection.
  void record_hop(Cycle now, std::int32_t packet, RouterId router,
                  std::uint8_t type, std::uint8_t arg, std::uint32_t aux = 0) {
    const auto pi = static_cast<std::size_t>(packet);
    if (pi >= slot_of_.size() || slot_of_[pi] == kUntraced) return;
    push(now, slot_of_[pi], router, type, arg, aux);
  }

  /// Terminal event (kDeliver / kDrop); frees the packet's trace slot so the
  /// recycled pool id is not mistaken for a traced packet.
  void close(Cycle now, std::int32_t packet, RouterId router,
             std::uint8_t type, std::uint32_t aux = 0) {
    const auto pi = static_cast<std::size_t>(packet);
    if (pi >= slot_of_.size() || slot_of_[pi] == kUntraced) return;
    push(now, slot_of_[pi], router, type, 0, aux);
    slot_of_[pi] = kUntraced;
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::int64_t dropped_events() const { return dropped_events_; }
  [[nodiscard]] std::int64_t sampled_packets() const {
    return sampled_packets_;
  }

 private:
  static constexpr std::uint32_t kUntraced = 0xffffffffu;

  void push(Cycle now, std::uint32_t id, RouterId router, std::uint8_t type,
            std::uint8_t arg, std::uint32_t aux) {
    if (events_.size() == static_cast<std::size_t>(max_events_)) {
      ++dropped_events_;
      return;
    }
    events_.push_back(TraceEvent{now, id, static_cast<std::uint16_t>(router),
                                 type, arg, aux});
  }

  Rng rng_;
  std::uint64_t sample_threshold_ = 0;
  std::int64_t max_events_ = 0;
  std::uint32_t next_id_ = 0;
  std::int64_t sampled_packets_ = 0;
  std::int64_t dropped_events_ = 0;
  std::vector<std::uint32_t> slot_of_;  // pool packet id -> trace id
  std::vector<TraceEvent> events_;
};

// --- export / import -------------------------------------------------------

/// Compact binary format: "DFTRACE1" magic, little-endian u64 count +
/// i64 dropped, then 24 bytes per event.
void write_trace_binary(const std::vector<TraceEvent>& events,
                        std::int64_t dropped, std::ostream& os);

/// Round-trip reader for write_trace_binary; returns false (leaving the
/// outputs untouched) on a malformed stream.
[[nodiscard]] bool read_trace_binary(std::istream& is,
                                     std::vector<TraceEvent>& events,
                                     std::int64_t& dropped);

/// Chrome trace-event JSON ({"traceEvents": [...]}), loadable in Perfetto or
/// chrome://tracing: one async "b"/"e" span per packet (id = trace id,
/// tid = router at inject/terminal) plus instant events for hops, with ts in
/// simulated cycles.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os);

}  // namespace dfsim::telemetry
