// Heatmap artifact builder: converts a Simulator's TelemetrySink frames into
// a dfsim-results document (JSON + long CSV via the usual schema writers) so
// spatial time-series ride the existing artifact pipeline — same header,
// config hash, round-trip, and CSV shape as every experiment result.
#pragma once

#include <string>

#include "report/schema.hpp"

namespace dfsim {
class Simulator;
}

namespace dfsim::telemetry {

/// Builds the heatmap document from `sim`'s telemetry sink (which must be
/// enabled and have committed at least one frame). Panels: per-router
/// time-series (occupancy, injections, deliveries, credit stalls, misroutes,
/// local/global link utilization), per-cause misroute decisions, network-wide
/// counters, and an info table of lifetime totals + conservation inputs.
[[nodiscard]] report::ResultsDoc build_heatmap_doc(const Simulator& sim,
                                                   const std::string& name,
                                                   const std::string& scale);

}  // namespace dfsim::telemetry
