// Spatial telemetry sink: per-router / per-link activity sampled on a fixed
// cadence into preallocated SoA time-series (the data behind the heatmap
// artifact and the congestion_map experiment).
//
// The engine owns the hot path: between samples it bumps flat accumulator
// counters (one add each — injection, delivery, credit stall, link
// departure, misroute bucketed by cause, fault drop, ECtN broadcast), every
// call gated behind the simulator's `telemetry_on_` flag so a disabled run
// takes zero telemetry branches. At the end of each sample period the
// engine writes the gauge snapshots (queue occupancy, contention-counter
// values, down-link count) and calls commit_frame(), which copies the
// accumulators into the frame series and resets them.
//
// All storage is sized at configure() — committing a frame never
// allocates, preserving the zero-alloc-after-warmup invariant with
// telemetry enabled. When the frame capacity is exhausted, sampling stops
// (dropped_frames() reports how many commits were skipped) but the pending
// accumulators keep counting, so the lifetime totals stay exact and the
// conservation checks (total injections == generated - refused, total
// deliveries == delivered) hold regardless of capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dfsim::telemetry {

/// Why a packet left the minimal path — the paper's mechanisms decide at
/// injection (UGAL-family estimate, Valiant's oblivious draw) or in transit
/// (counter/credit trigger at the source router or downstream), and the
/// fault overlay adds deterministic fallback routings around dead links.
enum class MisrouteCause : std::uint8_t {
  kValiant = 0,       // oblivious Valiant intermediate draw
  kUgal = 1,          // UGAL-L/G/PB injection-time estimate
  kTrigger = 2,       // counter/credit trigger at the source router
  kInTransit = 3,     // counter/credit trigger downstream of the source
  kLocalDetour = 4,   // opportunistic one-hop local detour
  kFaultFallback = 5, // topology fallback around a dead link
  kPiggyback = 6,     // PB's piggybacked remote link state fired
  kNotify = 7,        // live congestion notification (ARN family)
};
inline constexpr std::int32_t kMisrouteCauseCount = 8;

[[nodiscard]] const char* to_string(MisrouteCause cause);

class TelemetrySink {
 public:
  TelemetrySink() = default;

  /// Sizes every series for `max_samples` frames over `routers` routers and
  /// `routers * radix` flat link slots (forward ports used; injection ports
  /// stay zero). All allocation happens here.
  void configure(std::int32_t routers, std::int32_t radix,
                 std::int32_t forward_ports, Cycle sample_period,
                 std::int32_t max_samples);

  [[nodiscard]] bool configured() const { return routers_ > 0; }
  [[nodiscard]] std::int32_t routers() const { return routers_; }
  [[nodiscard]] std::int32_t radix() const { return radix_; }
  [[nodiscard]] std::int32_t forward_ports() const { return fwd_; }
  [[nodiscard]] Cycle sample_period() const { return period_; }
  [[nodiscard]] std::int32_t max_samples() const { return max_samples_; }

  // --- hot-path accumulators (engine-side, gated on telemetry_on_)

  void count_injection(RouterId r) {
    ++acc_injections_[static_cast<std::size_t>(r)];
  }
  void count_refusal(RouterId r) {
    ++acc_refusals_[static_cast<std::size_t>(r)];
  }
  void count_delivery(RouterId r) {
    ++acc_deliveries_[static_cast<std::size_t>(r)];
  }
  void count_credit_stall(RouterId r) {
    ++acc_credit_stalls_[static_cast<std::size_t>(r)];
  }
  void count_link_departure(std::int32_t flat_link) {
    ++acc_link_departures_[static_cast<std::size_t>(flat_link)];
  }
  void count_misroute(RouterId r, MisrouteCause cause) {
    ++acc_misroutes_[static_cast<std::size_t>(r)];
    ++acc_causes_[static_cast<std::size_t>(cause)];
  }
  void count_drop() { ++acc_drops_; }
  void count_undeliverable() { ++acc_undeliverable_; }
  void count_ectn_update() { ++acc_ectn_updates_; }

  // --- flush-time gauges (written by the engine right before commit_frame)

  void set_gauge_occupancy(RouterId r, std::int32_t packets) {
    gauge_occupancy_[static_cast<std::size_t>(r)] = packets;
  }
  void set_gauge_counter(std::int32_t flat_link, std::int32_t value) {
    gauge_counters_[static_cast<std::size_t>(flat_link)] =
        static_cast<std::int16_t>(value);
  }
  void set_links_down(std::int32_t n) { gauge_links_down_ = n; }

  /// Snapshots accumulators + gauges into the frame series and resets the
  /// accumulators. Past max_samples the commit is skipped (dropped_frames()
  /// counts it) and the accumulators keep growing so totals stay exact.
  void commit_frame(Cycle now);

  // --- read side (frame-major: value(frame, router|link))

  [[nodiscard]] std::int32_t frames() const { return frames_; }
  [[nodiscard]] std::int64_t dropped_frames() const { return dropped_frames_; }
  [[nodiscard]] Cycle sample_cycle(std::int32_t f) const {
    return frame_cycles_[static_cast<std::size_t>(f)];
  }

  [[nodiscard]] std::int32_t occupancy(std::int32_t f, RouterId r) const {
    return occupancy_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t injections(std::int32_t f, RouterId r) const {
    return injections_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t refusals(std::int32_t f, RouterId r) const {
    return refusals_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t deliveries(std::int32_t f, RouterId r) const {
    return deliveries_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t credit_stalls(std::int32_t f, RouterId r) const {
    return credit_stalls_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t misroutes(std::int32_t f, RouterId r) const {
    return misroutes_[router_idx(f, r)];
  }
  [[nodiscard]] std::int32_t link_departures(std::int32_t f,
                                             std::int32_t flat_link) const {
    return link_departures_[link_idx(f, flat_link)];
  }
  [[nodiscard]] std::int32_t counter(std::int32_t f,
                                     std::int32_t flat_link) const {
    return counters_[link_idx(f, flat_link)];
  }
  [[nodiscard]] std::int64_t cause_count(std::int32_t f,
                                         MisrouteCause cause) const {
    return causes_[static_cast<std::size_t>(f) * kMisrouteCauseCount +
                   static_cast<std::size_t>(cause)];
  }
  [[nodiscard]] std::int64_t drops(std::int32_t f) const {
    return frame_drops_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] std::int64_t undeliverable(std::int32_t f) const {
    return frame_undeliverable_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] std::int64_t ectn_updates(std::int32_t f) const {
    return frame_ectn_updates_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] std::int32_t links_down(std::int32_t f) const {
    return frame_links_down_[static_cast<std::size_t>(f)];
  }

  // --- lifetime totals (committed frames + pending accumulators — exact
  // regardless of frame capacity, so conservation checks never depend on
  // max_samples)

  [[nodiscard]] std::int64_t total_injections() const;
  [[nodiscard]] std::int64_t total_refusals() const;
  [[nodiscard]] std::int64_t total_deliveries() const;
  [[nodiscard]] std::int64_t total_credit_stalls() const;
  [[nodiscard]] std::int64_t total_link_departures() const;
  [[nodiscard]] std::int64_t total_misroutes() const;
  [[nodiscard]] std::int64_t total_cause(MisrouteCause cause) const;
  [[nodiscard]] std::int64_t total_drops() const { return sum_drops(); }
  [[nodiscard]] std::int64_t total_undeliverable() const;
  [[nodiscard]] std::int64_t total_ectn_updates() const;

 private:
  [[nodiscard]] std::size_t router_idx(std::int32_t f, RouterId r) const {
    return static_cast<std::size_t>(f) * static_cast<std::size_t>(routers_) +
           static_cast<std::size_t>(r);
  }
  [[nodiscard]] std::size_t link_idx(std::int32_t f,
                                     std::int32_t flat_link) const {
    return static_cast<std::size_t>(f) * static_cast<std::size_t>(links_) +
           static_cast<std::size_t>(flat_link);
  }
  [[nodiscard]] std::int64_t sum_drops() const;

  std::int32_t routers_ = 0;
  std::int32_t radix_ = 0;
  std::int32_t fwd_ = 0;
  std::int32_t links_ = 0;  // routers * radix (flat_port addressing)
  Cycle period_ = 0;
  std::int32_t max_samples_ = 0;

  // Pending accumulators (reset at every successful commit).
  std::vector<std::int64_t> acc_injections_;
  std::vector<std::int64_t> acc_refusals_;
  std::vector<std::int64_t> acc_deliveries_;
  std::vector<std::int64_t> acc_credit_stalls_;
  std::vector<std::int64_t> acc_misroutes_;
  std::vector<std::int64_t> acc_link_departures_;
  std::int64_t acc_causes_[kMisrouteCauseCount] = {};
  std::int64_t acc_drops_ = 0;
  std::int64_t acc_undeliverable_ = 0;
  std::int64_t acc_ectn_updates_ = 0;

  // Flush-time gauges (overwritten before each commit).
  std::vector<std::int32_t> gauge_occupancy_;
  std::vector<std::int16_t> gauge_counters_;
  std::int32_t gauge_links_down_ = 0;

  // Committed frame series (frame-major).
  std::int32_t frames_ = 0;
  std::int64_t dropped_frames_ = 0;
  std::vector<Cycle> frame_cycles_;
  std::vector<std::int32_t> occupancy_;
  std::vector<std::int32_t> injections_;
  std::vector<std::int32_t> refusals_;
  std::vector<std::int32_t> deliveries_;
  std::vector<std::int32_t> credit_stalls_;
  std::vector<std::int32_t> misroutes_;
  std::vector<std::int32_t> link_departures_;
  std::vector<std::int16_t> counters_;
  std::vector<std::int64_t> causes_;
  std::vector<std::int64_t> frame_drops_;
  std::vector<std::int64_t> frame_undeliverable_;
  std::vector<std::int64_t> frame_ectn_updates_;
  std::vector<std::int32_t> frame_links_down_;
};

}  // namespace dfsim::telemetry
