// Engine phase profiler: wall-time accounting per step() phase, driving
// `dfsim_run perf --phases` and the BENCH_engine.json phase breakdown (the
// sharding work's baseline: which phase actually burns the cycles).
//
// API-enabled only (Simulator::enable_phase_profiler) — it measures wall
// time, so it has no config key and never enters the config hash. When not
// enabled the engine runs its unprofiled step() and takes zero timing calls.
#pragma once

#include <chrono>
#include <cstdint>

namespace dfsim::telemetry {

enum class Phase : std::uint8_t {
  kFaults = 0,     // advance_faults (fault schedule refresh)
  kDeliver = 1,    // deliver_arrivals
  kInject = 2,     // inject_traffic
  kEctn = 3,       // update_ectn (snapshot broadcast)
  kRoute = 4,      // route_and_allocate
  kTelemetry = 5,  // telemetry flush (sink gauge scan + frame commit)
};
inline constexpr std::int32_t kPhaseCount = 6;

[[nodiscard]] constexpr const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kFaults: return "faults";
    case Phase::kDeliver: return "deliver";
    case Phase::kInject: return "inject";
    case Phase::kEctn: return "ectn";
    case Phase::kRoute: return "route";
    case Phase::kTelemetry: return "telemetry";
  }
  return "unknown";
}

class PhaseProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  void reset() {
    for (auto& ns : ns_) ns = 0;
    cycles_ = 0;
  }

  void add(Phase phase, Clock::time_point begin, Clock::time_point end) {
    ns_[static_cast<std::size_t>(phase)] +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count();
  }
  void add_cycle() { ++cycles_; }

  [[nodiscard]] std::int64_t cycles() const { return cycles_; }
  [[nodiscard]] std::int64_t nanoseconds(Phase phase) const {
    return ns_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] double seconds(Phase phase) const {
    return static_cast<double>(nanoseconds(phase)) * 1e-9;
  }
  [[nodiscard]] double total_seconds() const {
    std::int64_t sum = 0;
    for (const auto ns : ns_) sum += ns;
    return static_cast<double>(sum) * 1e-9;
  }

 private:
  std::int64_t ns_[kPhaseCount] = {};
  std::int64_t cycles_ = 0;
};

}  // namespace dfsim::telemetry
