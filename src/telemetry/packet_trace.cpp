#include "telemetry/packet_trace.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

namespace dfsim::telemetry {

const char* to_string_event(std::uint8_t type) {
  switch (type) {
    case TraceEvent::kInject: return "inject";
    case TraceEvent::kRouteDecision: return "route_decision";
    case TraceEvent::kQueueHead: return "queue_head";
    case TraceEvent::kLinkDepart: return "link_depart";
    case TraceEvent::kLinkArrive: return "link_arrive";
    case TraceEvent::kDeliver: return "deliver";
    case TraceEvent::kDrop: return "drop";
    default: return "unknown";
  }
}

void PacketTracer::configure(const TraceParams& params, std::uint64_t run_seed,
                             std::size_t pool_capacity) {
  // Distinct stream from the run seed so tracing never correlates with
  // routing/traffic draws even when trace.seed is left at 0.
  const std::uint64_t seed =
      params.seed != 0 ? params.seed : run_seed ^ 0x7261636570656b74ull;
  rng_ = Rng(seed);
  sample_threshold_ = Rng::bool_threshold(params.sample_rate);
  max_events_ = params.max_events > 0 ? params.max_events : 0;
  next_id_ = 0;
  sampled_packets_ = 0;
  dropped_events_ = 0;
  slot_of_.assign(pool_capacity, kUntraced);
  events_.clear();
  events_.reserve(static_cast<std::size_t>(max_events_));
}

// --- binary format ---------------------------------------------------------

namespace {

constexpr char kMagic[8] = {'D', 'F', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kRecordBytes = 24;

void put_u64(unsigned char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u32(unsigned char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint64_t get_u64(const unsigned char* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}
std::uint32_t get_u32(const unsigned char* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

void write_trace_binary(const std::vector<TraceEvent>& events,
                        std::int64_t dropped, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  std::array<unsigned char, 16> header{};
  put_u64(header.data(), static_cast<std::uint64_t>(events.size()));
  put_u64(header.data() + 8, static_cast<std::uint64_t>(dropped));
  os.write(reinterpret_cast<const char*>(header.data()), header.size());
  std::array<unsigned char, kRecordBytes> rec{};
  for (const TraceEvent& ev : events) {
    put_u64(rec.data(), static_cast<std::uint64_t>(ev.cycle));
    put_u32(rec.data() + 8, ev.id);
    rec[12] = static_cast<unsigned char>(ev.router & 0xff);
    rec[13] = static_cast<unsigned char>(ev.router >> 8);
    rec[14] = ev.type;
    rec[15] = ev.arg;
    put_u32(rec.data() + 16, ev.aux);
    put_u32(rec.data() + 20, 0);  // reserved
    os.write(reinterpret_cast<const char*>(rec.data()), rec.size());
  }
}

bool read_trace_binary(std::istream& is, std::vector<TraceEvent>& events,
                       std::int64_t& dropped) {
  char magic[8];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  std::array<unsigned char, 16> header{};
  if (!is.read(reinterpret_cast<char*>(header.data()), header.size())) {
    return false;
  }
  const std::uint64_t count = get_u64(header.data());
  std::vector<TraceEvent> parsed;
  parsed.reserve(static_cast<std::size_t>(count));
  std::array<unsigned char, kRecordBytes> rec{};
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!is.read(reinterpret_cast<char*>(rec.data()), rec.size())) {
      return false;
    }
    TraceEvent ev;
    ev.cycle = static_cast<std::int64_t>(get_u64(rec.data()));
    ev.id = get_u32(rec.data() + 8);
    ev.router = static_cast<std::uint16_t>(rec[12] |
                                           (static_cast<unsigned>(rec[13])
                                            << 8));
    ev.type = rec[14];
    ev.arg = rec[15];
    ev.aux = get_u32(rec.data() + 16);
    parsed.push_back(ev);
  }
  events = std::move(parsed);
  dropped = static_cast<std::int64_t>(get_u64(header.data() + 8));
  return true;
}

// --- Chrome trace-event JSON -----------------------------------------------

namespace {

// One compact JSON object per line; every field is a number or a fixed
// label, so no string escaping is needed.
void write_event_json(const TraceEvent& ev, bool first, std::ostream& os) {
  if (!first) os << ",\n";
  os << "    {\"pid\": 0, \"tid\": " << ev.router
     << ", \"ts\": " << ev.cycle;
  switch (ev.type) {
    case TraceEvent::kInject:
      os << ", \"ph\": \"b\", \"cat\": \"packet\", \"id\": " << ev.id
         << ", \"name\": \"pkt " << ev.id << "\", \"args\": {\"dst\": "
         << ev.aux << "}}";
      break;
    case TraceEvent::kDeliver:
      os << ", \"ph\": \"e\", \"cat\": \"packet\", \"id\": " << ev.id
         << ", \"name\": \"pkt " << ev.id << "\", \"args\": {\"latency\": "
         << ev.aux << "}}";
      break;
    case TraceEvent::kDrop:
      os << ", \"ph\": \"e\", \"cat\": \"packet\", \"id\": " << ev.id
         << ", \"name\": \"pkt " << ev.id << "\", \"args\": {\"dropped\": 1}}";
      break;
    default:
      os << ", \"ph\": \"i\", \"s\": \"t\", \"cat\": \"hop\", \"name\": \""
         << to_string_event(ev.type) << "\", \"args\": {\"pkt\": " << ev.id
         << ", \"arg\": " << static_cast<int>(ev.arg) << "}}";
      break;
  }
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& ev : events) {
    write_event_json(ev, first, os);
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace dfsim::telemetry
