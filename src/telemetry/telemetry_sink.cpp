#include "telemetry/telemetry_sink.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dfsim::telemetry {

const char* to_string(MisrouteCause cause) {
  switch (cause) {
    case MisrouteCause::kValiant: return "valiant";
    case MisrouteCause::kUgal: return "ugal";
    case MisrouteCause::kTrigger: return "trigger";
    case MisrouteCause::kInTransit: return "in_transit";
    case MisrouteCause::kLocalDetour: return "local_detour";
    case MisrouteCause::kFaultFallback: return "fault_fallback";
    case MisrouteCause::kPiggyback: return "piggyback";
    case MisrouteCause::kNotify: return "notify";
  }
  return "unknown";
}

void TelemetrySink::configure(std::int32_t routers, std::int32_t radix,
                              std::int32_t forward_ports, Cycle sample_period,
                              std::int32_t max_samples) {
  assert(routers > 0 && radix > 0 && forward_ports > 0);
  assert(sample_period > 0 && max_samples > 0);
  routers_ = routers;
  radix_ = radix;
  fwd_ = forward_ports;
  links_ = routers * radix;
  period_ = sample_period;
  max_samples_ = max_samples;

  const auto nr = static_cast<std::size_t>(routers_);
  const auto nl = static_cast<std::size_t>(links_);
  const auto nf = static_cast<std::size_t>(max_samples_);

  acc_injections_.assign(nr, 0);
  acc_refusals_.assign(nr, 0);
  acc_deliveries_.assign(nr, 0);
  acc_credit_stalls_.assign(nr, 0);
  acc_misroutes_.assign(nr, 0);
  acc_link_departures_.assign(nl, 0);
  std::fill(std::begin(acc_causes_), std::end(acc_causes_), 0);
  acc_drops_ = 0;
  acc_undeliverable_ = 0;
  acc_ectn_updates_ = 0;

  gauge_occupancy_.assign(nr, 0);
  gauge_counters_.assign(nl, 0);
  gauge_links_down_ = 0;

  frames_ = 0;
  dropped_frames_ = 0;
  frame_cycles_.assign(nf, 0);
  occupancy_.assign(nf * nr, 0);
  injections_.assign(nf * nr, 0);
  refusals_.assign(nf * nr, 0);
  deliveries_.assign(nf * nr, 0);
  credit_stalls_.assign(nf * nr, 0);
  misroutes_.assign(nf * nr, 0);
  link_departures_.assign(nf * nl, 0);
  counters_.assign(nf * nl, 0);
  causes_.assign(nf * static_cast<std::size_t>(kMisrouteCauseCount), 0);
  frame_drops_.assign(nf, 0);
  frame_undeliverable_.assign(nf, 0);
  frame_ectn_updates_.assign(nf, 0);
  frame_links_down_.assign(nf, 0);
}

void TelemetrySink::commit_frame(Cycle now) {
  if (frames_ == max_samples_) {
    // Capacity exhausted: the frame is lost, but the accumulators keep
    // counting so lifetime totals (and conservation checks) stay exact.
    ++dropped_frames_;
    return;
  }
  const std::int32_t f = frames_;
  frame_cycles_[static_cast<std::size_t>(f)] = now;
  for (std::int32_t r = 0; r < routers_; ++r) {
    const std::size_t i = router_idx(f, r);
    const auto ri = static_cast<std::size_t>(r);
    occupancy_[i] = gauge_occupancy_[ri];
    injections_[i] = static_cast<std::int32_t>(acc_injections_[ri]);
    refusals_[i] = static_cast<std::int32_t>(acc_refusals_[ri]);
    deliveries_[i] = static_cast<std::int32_t>(acc_deliveries_[ri]);
    credit_stalls_[i] = static_cast<std::int32_t>(acc_credit_stalls_[ri]);
    misroutes_[i] = static_cast<std::int32_t>(acc_misroutes_[ri]);
    acc_injections_[ri] = 0;
    acc_refusals_[ri] = 0;
    acc_deliveries_[ri] = 0;
    acc_credit_stalls_[ri] = 0;
    acc_misroutes_[ri] = 0;
  }
  for (std::int32_t l = 0; l < links_; ++l) {
    const std::size_t i = link_idx(f, l);
    const auto li = static_cast<std::size_t>(l);
    link_departures_[i] = static_cast<std::int32_t>(acc_link_departures_[li]);
    counters_[i] = gauge_counters_[li];
    acc_link_departures_[li] = 0;
  }
  for (std::int32_t c = 0; c < kMisrouteCauseCount; ++c) {
    causes_[static_cast<std::size_t>(f) * kMisrouteCauseCount +
            static_cast<std::size_t>(c)] = acc_causes_[c];
    acc_causes_[c] = 0;
  }
  frame_drops_[static_cast<std::size_t>(f)] = acc_drops_;
  frame_undeliverable_[static_cast<std::size_t>(f)] = acc_undeliverable_;
  frame_ectn_updates_[static_cast<std::size_t>(f)] = acc_ectn_updates_;
  frame_links_down_[static_cast<std::size_t>(f)] = gauge_links_down_;
  acc_drops_ = 0;
  acc_undeliverable_ = 0;
  acc_ectn_updates_ = 0;
  ++frames_;
}

namespace {

// committed per-router frames + pending accumulators
std::int64_t total_over(const std::vector<std::int32_t>& frames,
                        const std::vector<std::int64_t>& pending) {
  std::int64_t sum = std::accumulate(pending.begin(), pending.end(),
                                     std::int64_t{0});
  for (const std::int32_t v : frames) sum += v;
  return sum;
}

}  // namespace

std::int64_t TelemetrySink::total_injections() const {
  return total_over(injections_, acc_injections_);
}
std::int64_t TelemetrySink::total_refusals() const {
  return total_over(refusals_, acc_refusals_);
}
std::int64_t TelemetrySink::total_deliveries() const {
  return total_over(deliveries_, acc_deliveries_);
}
std::int64_t TelemetrySink::total_credit_stalls() const {
  return total_over(credit_stalls_, acc_credit_stalls_);
}
std::int64_t TelemetrySink::total_link_departures() const {
  return total_over(link_departures_, acc_link_departures_);
}
std::int64_t TelemetrySink::total_misroutes() const {
  return total_over(misroutes_, acc_misroutes_);
}

std::int64_t TelemetrySink::total_cause(MisrouteCause cause) const {
  std::int64_t sum = acc_causes_[static_cast<std::size_t>(cause)];
  for (std::int32_t f = 0; f < frames_; ++f) sum += cause_count(f, cause);
  return sum;
}

std::int64_t TelemetrySink::sum_drops() const {
  std::int64_t sum = acc_drops_;
  for (std::int32_t f = 0; f < frames_; ++f) {
    sum += frame_drops_[static_cast<std::size_t>(f)];
  }
  return sum;
}

std::int64_t TelemetrySink::total_undeliverable() const {
  std::int64_t sum = acc_undeliverable_;
  for (std::int32_t f = 0; f < frames_; ++f) {
    sum += frame_undeliverable_[static_cast<std::size_t>(f)];
  }
  return sum;
}

std::int64_t TelemetrySink::total_ectn_updates() const {
  std::int64_t sum = acc_ectn_updates_;
  for (std::int32_t f = 0; f < frames_; ++f) {
    sum += frame_ectn_updates_[static_cast<std::size_t>(f)];
  }
  return sum;
}

}  // namespace dfsim::telemetry
