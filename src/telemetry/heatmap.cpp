#include "telemetry/heatmap.hpp"

#include <string>
#include <vector>

#include "engine/simulator.hpp"
#include "telemetry/telemetry_sink.hpp"
#include "topo/topology.hpp"

namespace dfsim::telemetry {

namespace {

using report::Panel;

Panel make_timeseries_panel(const TelemetrySink& sink, std::string name,
                            std::vector<std::string> series) {
  Panel panel;
  panel.name = std::move(name);
  panel.kind = Panel::Kind::kTransient;
  panel.x_label = "cycle";
  const std::int32_t frames = sink.frames();
  panel.x_labels.reserve(static_cast<std::size_t>(frames));
  panel.x_values.reserve(static_cast<std::size_t>(frames));
  for (std::int32_t f = 0; f < frames; ++f) {
    const Cycle c = sink.sample_cycle(f);
    panel.x_labels.push_back(std::to_string(c));
    panel.x_values.push_back(static_cast<double>(c));
  }
  panel.series = std::move(series);
  return panel;
}

}  // namespace

report::ResultsDoc build_heatmap_doc(const Simulator& sim,
                                     const std::string& name,
                                     const std::string& scale) {
  const TelemetrySink& sink = sim.telemetry_sink();
  const SimParams& params = sim.params();
  const Topology& topo = sim.topology();
  const std::int32_t frames = sink.frames();
  const std::int32_t routers = sink.routers();
  const std::int32_t radix = sink.radix();
  const std::int32_t fwd = sink.forward_ports();
  const double period = static_cast<double>(sink.sample_period());
  const double psize = static_cast<double>(params.packet_size_phits);

  report::ResultsDoc doc;
  doc.header.experiment = name;
  doc.header.title = "Spatial telemetry heatmap";
  doc.header.paper_ref = "Sec. IV (contention observability)";
  doc.header.topology = to_string(params.topology);
  doc.header.scale = scale;
  doc.header.nodes = params.nodes();
  doc.header.config_hash = report::config_hash(params);
  doc.header.git_rev = report::current_git_rev();
  doc.header.seed = params.seed;
  doc.header.measure = frames > 0
                           ? sink.sample_cycle(frames - 1) + 1
                           : Cycle{0};

  // Per-router time-series: one series per router, one x tick per frame.
  {
    std::vector<std::string> series;
    series.reserve(static_cast<std::size_t>(routers));
    for (std::int32_t r = 0; r < routers; ++r) {
      series.push_back("r" + std::to_string(r));
    }
    Panel panel = make_timeseries_panel(sink, "routers", std::move(series));

    // Count the class split once; utilization normalizes phits sent against
    // the class's aggregate capacity over the sample period.
    std::int32_t local_ports = 0;
    std::int32_t global_ports = 0;
    for (PortIndex port = 0; port < fwd; ++port) {
      if (topo.port_class(port) == PortClass::kLocalClass) {
        ++local_ports;
      } else {
        ++global_ports;
      }
    }

    auto rows = [&](auto&& cell) {
      std::vector<std::vector<double>> out;
      out.reserve(static_cast<std::size_t>(frames));
      for (std::int32_t f = 0; f < frames; ++f) {
        std::vector<double> row;
        row.reserve(static_cast<std::size_t>(routers));
        for (std::int32_t r = 0; r < routers; ++r) row.push_back(cell(f, r));
        out.push_back(std::move(row));
      }
      return out;
    };

    panel.metrics.emplace_back("occupancy", rows([&](std::int32_t f, RouterId r) {
      return static_cast<double>(sink.occupancy(f, r));
    }));
    panel.metrics.emplace_back("injections", rows([&](std::int32_t f, RouterId r) {
      return static_cast<double>(sink.injections(f, r));
    }));
    panel.metrics.emplace_back("deliveries", rows([&](std::int32_t f, RouterId r) {
      return static_cast<double>(sink.deliveries(f, r));
    }));
    panel.metrics.emplace_back("credit_stalls",
                               rows([&](std::int32_t f, RouterId r) {
      return static_cast<double>(sink.credit_stalls(f, r));
    }));
    panel.metrics.emplace_back("misroutes", rows([&](std::int32_t f, RouterId r) {
      return static_cast<double>(sink.misroutes(f, r));
    }));
    auto class_util = [&](std::int32_t f, RouterId r, PortClass cls,
                          std::int32_t ports) {
      if (ports == 0) return 0.0;
      std::int64_t phits = 0;
      for (PortIndex port = 0; port < fwd; ++port) {
        if (topo.port_class(port) != cls) continue;
        phits += sink.link_departures(f, r * radix + port);
      }
      return static_cast<double>(phits) * psize / (period * ports);
    };
    panel.metrics.emplace_back("local_util", rows([&](std::int32_t f, RouterId r) {
      return class_util(f, r, PortClass::kLocalClass, local_ports);
    }));
    panel.metrics.emplace_back("global_util",
                               rows([&](std::int32_t f, RouterId r) {
      return class_util(f, r, PortClass::kGlobalClass, global_ports);
    }));
    panel.metrics.emplace_back("max_counter", rows([&](std::int32_t f, RouterId r) {
      std::int32_t best = 0;
      for (PortIndex port = 0; port < fwd; ++port) {
        const std::int32_t v = sink.counter(f, r * radix + port);
        if (v > best) best = v;
      }
      return static_cast<double>(best);
    }));
    doc.panels.push_back(std::move(panel));
  }

  // Misroute decisions bucketed by cause.
  {
    std::vector<std::string> series;
    series.reserve(kMisrouteCauseCount);
    for (std::int32_t c = 0; c < kMisrouteCauseCount; ++c) {
      series.push_back(to_string(static_cast<MisrouteCause>(c)));
    }
    Panel panel =
        make_timeseries_panel(sink, "misroute_causes", std::move(series));
    std::vector<std::vector<double>> rows;
    rows.reserve(static_cast<std::size_t>(frames));
    for (std::int32_t f = 0; f < frames; ++f) {
      std::vector<double> row;
      row.reserve(kMisrouteCauseCount);
      for (std::int32_t c = 0; c < kMisrouteCauseCount; ++c) {
        row.push_back(static_cast<double>(
            sink.cause_count(f, static_cast<MisrouteCause>(c))));
      }
      rows.push_back(std::move(row));
    }
    panel.metrics.emplace_back("decisions", std::move(rows));
    doc.panels.push_back(std::move(panel));
  }

  // Network-wide counters per frame.
  {
    Panel panel = make_timeseries_panel(sink, "network", {"network"});
    auto column = [&](auto&& cell) {
      std::vector<std::vector<double>> out;
      out.reserve(static_cast<std::size_t>(frames));
      for (std::int32_t f = 0; f < frames; ++f) {
        out.push_back({cell(f)});
      }
      return out;
    };
    panel.metrics.emplace_back("link_departures", column([&](std::int32_t f) {
      std::int64_t sum = 0;
      for (std::int32_t r = 0; r < routers; ++r) {
        for (PortIndex port = 0; port < fwd; ++port) {
          sum += sink.link_departures(f, r * radix + port);
        }
      }
      return static_cast<double>(sum);
    }));
    panel.metrics.emplace_back("links_down", column([&](std::int32_t f) {
      return static_cast<double>(sink.links_down(f));
    }));
    panel.metrics.emplace_back("drops", column([&](std::int32_t f) {
      return static_cast<double>(sink.drops(f));
    }));
    panel.metrics.emplace_back("undeliverable", column([&](std::int32_t f) {
      return static_cast<double>(sink.undeliverable(f));
    }));
    panel.metrics.emplace_back("ectn_updates", column([&](std::int32_t f) {
      return static_cast<double>(sink.ectn_updates(f));
    }));
    doc.panels.push_back(std::move(panel));
  }

  // Lifetime totals + the engine aggregates they must conserve against.
  {
    Panel panel;
    panel.name = "totals";
    panel.kind = Panel::Kind::kInfo;
    panel.columns = {"counter", "value"};
    auto row = [&](const std::string& key, std::int64_t value) {
      panel.cells.push_back({key, std::to_string(value)});
    };
    row("frames", sink.frames());
    row("dropped_frames", sink.dropped_frames());
    row("sample_period", sink.sample_period());
    row("total_injections", sink.total_injections());
    row("total_refusals", sink.total_refusals());
    row("total_deliveries", sink.total_deliveries());
    row("total_credit_stalls", sink.total_credit_stalls());
    row("total_link_departures", sink.total_link_departures());
    row("total_misroutes", sink.total_misroutes());
    for (std::int32_t c = 0; c < kMisrouteCauseCount; ++c) {
      const auto cause = static_cast<MisrouteCause>(c);
      row(std::string("total_cause_") + to_string(cause),
          sink.total_cause(cause));
    }
    row("total_drops", sink.total_drops());
    row("total_undeliverable", sink.total_undeliverable());
    row("total_ectn_updates", sink.total_ectn_updates());
    row("engine_generated", sim.lifetime_totals().generated);
    row("engine_refused", sim.lifetime_totals().refused);
    row("engine_delivered", sim.lifetime_totals().delivered);
    doc.panels.push_back(std::move(panel));
  }

  return doc;
}

}  // namespace dfsim::telemetry
