#include "fault/fault_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace dfsim {

namespace {

void check_fraction(const char* name, double value) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string("fault: ") + name +
                                " must be in [0,1], got " +
                                std::to_string(value));
  }
}

/// round(fraction * pool) clamped to [0, pool].
std::int32_t count_of(double fraction, std::size_t pool) {
  const auto n = static_cast<std::int32_t>(
      std::llround(fraction * static_cast<double>(pool)));
  if (n < 0) return 0;
  return n > static_cast<std::int32_t>(pool) ? static_cast<std::int32_t>(pool)
                                             : n;
}

/// Partial Fisher-Yates: permutes the first `count` slots of `pool` into a
/// uniform distinct sample.
void sample_prefix(std::vector<std::int32_t>& pool, std::int32_t count,
                   Rng& rng) {
  for (std::int32_t i = 0; i < count; ++i) {
    const auto j = i + static_cast<std::int32_t>(
                           rng.next_below(pool.size() - static_cast<std::size_t>(i)));
    std::swap(pool[static_cast<std::size_t>(i)],
              pool[static_cast<std::size_t>(j)]);
  }
}

}  // namespace

FaultModel::FaultModel(const FaultParams& params, const Topology& topo,
                       std::uint64_t run_seed) {
  check_fraction("link_fail_fraction", params.link_fail_fraction);
  check_fraction("router_fail_fraction", params.router_fail_fraction);
  check_fraction("degrade_fraction", params.degrade_fraction);
  if (params.onset < 0) {
    throw std::invalid_argument("fault: onset must be >= 0");
  }
  if (params.degrade_latency < 0) {
    throw std::invalid_argument("fault: degrade_latency must be >= 0");
  }
  if (params.flap_period > 0 &&
      (params.flap_down <= 0 || params.flap_down >= params.flap_period)) {
    throw std::invalid_argument(
        "fault: flap_down must satisfy 0 < flap_down < flap_period");
  }

  enabled_ = params.enabled;
  stride_ = topo.radix();
  onset_ = params.onset;
  flap_period_ = params.flap_period;
  flap_down_ = params.flap_down;
  kind_.assign(static_cast<std::size_t>(topo.routers()) *
                   static_cast<std::size_t>(stride_),
               Kind::kNone);
  extra_.assign(kind_.size(), 0);
  if (!enabled_) return;

  // Canonical one-entry-per-physical-link enumeration: the (r, port) end
  // with the smaller router id (ties by port for the hypothetical r == peer
  // case). Faults always hit both directions via mark_both.
  const std::int32_t fwd = topo.forward_ports();
  std::vector<std::int32_t> physical;
  for (RouterId r = 0; r < topo.routers(); ++r) {
    for (PortIndex port = 0; port < fwd; ++port) {
      const RouterId other = topo.peer(r, port);
      if (other < r || (other == r && topo.peer_port(r, port) < port)) {
        continue;
      }
      if (params.link_class == "local" &&
          topo.port_class(port) != PortClass::kLocalClass) {
        continue;
      }
      if (params.link_class == "global" &&
          topo.port_class(port) != PortClass::kGlobalClass) {
        continue;
      }
      physical.push_back(static_cast<std::int32_t>(flat(r, port)));
    }
  }

  Rng rng(params.seed != 0 ? params.seed
                           : run_seed + 0x9e3779b97f4a7c15ull);

  // Failed (or flapping) links.
  const Kind link_kind = flap_period_ > 0 ? Kind::kFlap : Kind::kDead;
  {
    std::vector<std::int32_t> pool = physical;
    const std::int32_t n = count_of(params.link_fail_fraction, pool.size());
    sample_prefix(pool, n, rng);
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t id = pool[static_cast<std::size_t>(i)];
      mark_both(topo, id / stride_, id % stride_, link_kind);
    }
  }

  // Degraded links: selected independently from the same class-filtered
  // pool; a link can be both degraded and dead (dead wins — it never
  // carries traffic while down).
  if (params.degrade_latency > 0) {
    std::vector<std::int32_t> pool = physical;
    const std::int32_t n = count_of(params.degrade_fraction, pool.size());
    sample_prefix(pool, n, rng);
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t id = pool[static_cast<std::size_t>(i)];
      const RouterId r = id / stride_;
      const PortIndex port = id % stride_;
      extra_[flat(r, port)] = params.degrade_latency;
      extra_[flat(topo.peer(r, port), topo.peer_port(r, port))] =
          params.degrade_latency;
      max_extra_ = std::max(max_extra_, params.degrade_latency);
    }
  }

  // Dead routers: every forward link of the router fails permanently in
  // both directions (overrides flapping on those links).
  {
    std::vector<std::int32_t> pool(static_cast<std::size_t>(topo.routers()));
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool[i] = static_cast<std::int32_t>(i);
    }
    const std::int32_t n = count_of(params.router_fail_fraction, pool.size());
    sample_prefix(pool, n, rng);
    dead_routers_ = n;
    for (std::int32_t i = 0; i < n; ++i) {
      const RouterId r = pool[static_cast<std::size_t>(i)];
      for (PortIndex port = 0; port < fwd; ++port) {
        mark_both(topo, r, port, Kind::kDead);
      }
    }
  }

  // Physical-link tallies + the faulty directed-link index.
  for (const std::int32_t id : physical) {
    switch (kind_[static_cast<std::size_t>(id)]) {
      case Kind::kDead: ++dead_links_; break;
      case Kind::kFlap: ++flap_links_; break;
      case Kind::kNone:
        if (extra_[static_cast<std::size_t>(id)] > 0) ++degraded_links_;
        break;
    }
  }
  for (std::size_t l = 0; l < kind_.size(); ++l) {
    if (kind_[l] != Kind::kNone || extra_[l] > 0) {
      faulty_.push_back(static_cast<std::int32_t>(l));
    }
  }
}

void FaultModel::mark_both(const Topology& topo, RouterId r, PortIndex port,
                           Kind kind) {
  Kind& fwd = kind_[flat(r, port)];
  Kind& rev = kind_[flat(topo.peer(r, port), topo.peer_port(r, port))];
  // kDead overrides kFlap (router death beats a link flap schedule).
  if (fwd != Kind::kDead) fwd = kind;
  if (rev != Kind::kDead) rev = kind;
}

Cycle FaultModel::next_event_after(Cycle now) const {
  if (!enabled_ || faulty_.empty()) return kNoEvent;
  if (now < onset_) return onset_;
  if (flap_links_ == 0) return kNoEvent;
  const Cycle t = (now - onset_) % flap_period_;
  return t < flap_down_ ? now + (flap_down_ - t) : now + (flap_period_ - t);
}

}  // namespace dfsim
