// Deterministic, seed-reproducible fault schedule for the unified engine.
//
// FaultModel is pure schedule: at construction it selects which physical
// links fail / flap / degrade (and which routers die) from the wiring of a
// Topology, using its own Rng so the routing and traffic RNG streams are
// untouched. Queries answer "is directed link (r, port) down at cycle t"
// in O(1) from flat per-directed-link tables. Faults on a physical link
// always affect both directions.
//
// LinkHealthMap is the materialized *current* view the engine attaches to
// the topology (topo/topology.hpp LinkHealth): the engine refreshes it only
// at state-change cycles (next_event_after), so every hot-path query is a
// flat byte load with no time arithmetic.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/config.hpp"
#include "topo/topology.hpp"
#include "util/types.hpp"

namespace dfsim {

class FaultModel {
 public:
  /// Scheduled behaviour of a directed link.
  enum class Kind : std::uint8_t { kNone, kDead, kFlap };

  static constexpr Cycle kNoEvent = std::numeric_limits<Cycle>::max();

  FaultModel() = default;  // disabled: no link ever down

  /// Builds the schedule from `params` over the wiring of `topo`. Selection
  /// uses params.seed, or `run_seed` mixed with a fixed constant when
  /// params.seed == 0. Throws std::invalid_argument on malformed params
  /// (fractions outside [0,1], flap_down not in (0, flap_period)).
  FaultModel(const FaultParams& params, const Topology& topo,
             std::uint64_t run_seed);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::int32_t stride() const { return stride_; }

  /// True when the directed link (r, port) rejects traffic at `now`.
  [[nodiscard]] bool link_down(RouterId r, PortIndex port, Cycle now) const {
    const Kind k = kind_[flat(r, port)];
    if (k == Kind::kNone || now < onset_) return false;
    if (k == Kind::kDead) return true;
    return (now - onset_) % flap_period_ < flap_down_;
  }

  /// Extra latency on (r, port) at `now` (0 before onset; dead links keep
  /// their value but never carry traffic anyway).
  [[nodiscard]] std::int32_t extra_latency(RouterId r, PortIndex port,
                                           Cycle now) const {
    return now < onset_ ? 0 : extra_[flat(r, port)];
  }
  /// Largest scheduled extra latency — sizing bound for in-flight rings.
  [[nodiscard]] std::int32_t max_extra_latency() const { return max_extra_; }

  /// First cycle strictly after `now` at which any link changes up/down or
  /// degradation state; kNoEvent when the schedule is static from here on.
  [[nodiscard]] Cycle next_event_after(Cycle now) const;

  /// Flat (r * stride + port) ids of every directed link with any scheduled
  /// fault (dead, flap, or degraded) — the only entries a health map
  /// refresh or in-flight purge needs to visit.
  [[nodiscard]] const std::vector<std::int32_t>& faulty_links() const {
    return faulty_;
  }

  // Schedule introspection (tests / reporting).
  [[nodiscard]] std::int32_t dead_link_count() const { return dead_links_; }
  [[nodiscard]] std::int32_t flap_link_count() const { return flap_links_; }
  [[nodiscard]] std::int32_t degraded_link_count() const {
    return degraded_links_;
  }
  [[nodiscard]] std::int32_t dead_router_count() const {
    return dead_routers_;
  }

 private:
  [[nodiscard]] std::size_t flat(RouterId r, PortIndex port) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(port);
  }
  void mark_both(const Topology& topo, RouterId r, PortIndex port, Kind kind);

  bool enabled_ = false;
  std::int32_t stride_ = 0;  // topology radix; forward ports only are used
  Cycle onset_ = 0;
  Cycle flap_period_ = 0;
  Cycle flap_down_ = 0;
  std::int32_t max_extra_ = 0;
  std::int32_t dead_links_ = 0;
  std::int32_t flap_links_ = 0;
  std::int32_t degraded_links_ = 0;
  std::int32_t dead_routers_ = 0;
  std::vector<Kind> kind_;
  std::vector<std::int32_t> extra_;
  std::vector<std::int32_t> faulty_;
};

/// Materialized link-health view (see LinkHealth in topo/topology.hpp).
/// init() sets everything healthy; apply() folds in the schedule state at a
/// given cycle, touching only the scheduled-faulty entries.
class LinkHealthMap final : public LinkHealth {
 public:
  void init(std::int32_t routers, std::int32_t stride) {
    stride_ = stride;
    up_.assign(static_cast<std::size_t>(routers) *
                   static_cast<std::size_t>(stride),
               1);
    extra_.assign(up_.size(), 0);
  }

  void apply(const FaultModel& model, Cycle now) {
    for (const std::int32_t id : model.faulty_links()) {
      const auto l = static_cast<std::size_t>(id);
      const auto r = static_cast<RouterId>(id / stride_);
      const auto port = static_cast<PortIndex>(id % stride_);
      up_[l] = model.link_down(r, port, now) ? 0 : 1;
      extra_[l] = model.extra_latency(r, port, now);
    }
  }

  [[nodiscard]] bool link_up(RouterId r, PortIndex port) const override {
    return up_[static_cast<std::size_t>(r) * stride_ +
               static_cast<std::size_t>(port)] != 0;
  }
  [[nodiscard]] std::int32_t extra_latency(RouterId r,
                                           PortIndex port) const override {
    return extra_[static_cast<std::size_t>(r) * stride_ +
                  static_cast<std::size_t>(port)];
  }

 private:
  std::size_t stride_ = 0;
  std::vector<std::uint8_t> up_;
  std::vector<std::int32_t> extra_;
};

}  // namespace dfsim
