#include "router/allocator.hpp"

#include <algorithm>
#include <cassert>

namespace dfsim {

SeparableAllocator::SeparableAllocator(std::int32_t in_ports,
                                       std::int32_t out_ports,
                                       std::int32_t vcs)
    : in_ports_(in_ports), out_ports_(out_ports), vcs_(vcs) {
  in_rr_.assign(static_cast<std::size_t>(in_ports_), 0);
  out_rr_.assign(static_cast<std::size_t>(out_ports_), 0);
  in_busy_.assign(static_cast<std::size_t>(in_ports_), 0);
  out_busy_.assign(static_cast<std::size_t>(out_ports_), 0);
  in_winner_.assign(static_cast<std::size_t>(in_ports_), AllocRequest{});
  in_has_winner_.assign(static_cast<std::size_t>(in_ports_), 0);
  out_has_candidate_.assign(static_cast<std::size_t>(out_ports_), 0);
  iter_grants_.reserve(static_cast<std::size_t>(
      std::min(in_ports_, out_ports_)));
  cycle_grants_.reserve(static_cast<std::size_t>(
      2 * std::min(in_ports_, out_ports_)));
}

void SeparableAllocator::begin_cycle() {
  std::fill(in_busy_.begin(), in_busy_.end(), std::int8_t{0});
  std::fill(out_busy_.begin(), out_busy_.end(), std::int8_t{0});
  cycle_grants_.clear();
}

std::span<const AllocGrant> SeparableAllocator::iterate(
    const std::vector<std::vector<AllocRequest>>& requests) {
  assert(static_cast<std::int32_t>(requests.size()) == in_ports_);
  iter_grants_.clear();

  // Stage 1: each free input port picks one requesting VC, round-robin from
  // its pointer.
  std::fill(out_has_candidate_.begin(), out_has_candidate_.end(),
            std::int8_t{0});
  std::int32_t winners = 0;
  for (std::int32_t in = 0; in < in_ports_; ++in) {
    in_has_winner_[static_cast<std::size_t>(in)] = 0;
    if (in_busy_[static_cast<std::size_t>(in)]) continue;
    const auto& reqs = requests[static_cast<std::size_t>(in)];
    const auto n = static_cast<std::int32_t>(reqs.size());
    if (n == 0) continue;
    const std::int32_t start = in_rr_[static_cast<std::size_t>(in)] % n;
    for (std::int32_t k = 0; k < n; ++k) {
      const auto& req = reqs[static_cast<std::size_t>((start + k) % n)];
      if (!out_busy_[static_cast<std::size_t>(req.out)]) {
        in_winner_[static_cast<std::size_t>(in)] = req;
        in_has_winner_[static_cast<std::size_t>(in)] = 1;
        out_has_candidate_[static_cast<std::size_t>(req.out)] = 1;
        ++winners;
        break;
      }
    }
  }

  // Stage 2: each free output port picks one input winner, round-robin from
  // its pointer. Outputs nobody picked in stage 1 are skipped outright.
  // With through-priority enabled, a first round-robin pass considers only
  // through inputs; injection inputs win in a second pass when no through
  // input wanted the output.
  if (winners == 0) return {iter_grants_.data(), iter_grants_.size()};
  const std::int32_t passes = first_injection_port_ >= 0 ? 2 : 1;
  for (std::int32_t out = 0; out < out_ports_; ++out) {
    if (out_busy_[static_cast<std::size_t>(out)]) continue;
    if (!out_has_candidate_[static_cast<std::size_t>(out)]) continue;
    const std::int32_t start = out_rr_[static_cast<std::size_t>(out)];
    for (std::int32_t pass = 0; pass < passes; ++pass) {
      bool granted = false;
      for (std::int32_t k = 0; k < in_ports_; ++k) {
        const std::int32_t in = (start + k) % in_ports_;
        if (passes == 2) {
          const bool is_injection = in >= first_injection_port_;
          if (is_injection != (pass == 1)) continue;
        }
        if (!in_has_winner_[static_cast<std::size_t>(in)]) continue;
        const AllocRequest& req = in_winner_[static_cast<std::size_t>(in)];
        if (req.out != out) continue;
        iter_grants_.push_back(AllocGrant{in, req.vc, out});
        in_busy_[static_cast<std::size_t>(in)] = 1;
        out_busy_[static_cast<std::size_t>(out)] = 1;
        in_has_winner_[static_cast<std::size_t>(in)] = 0;
        // Advance round-robin pointers past the winners.
        out_rr_[static_cast<std::size_t>(out)] = (in + 1) % in_ports_;
        in_rr_[static_cast<std::size_t>(in)] =
            in_rr_[static_cast<std::size_t>(in)] + 1;
        granted = true;
        break;
      }
      if (granted) break;
    }
  }

  cycle_grants_.insert(cycle_grants_.end(), iter_grants_.begin(),
                       iter_grants_.end());
  return {iter_grants_.data(), iter_grants_.size()};
}

std::span<const AllocGrant> SeparableAllocator::allocate_iteration(
    const std::vector<std::vector<AllocRequest>>& requests) {
  begin_cycle();
  iterate(requests);
  return {cycle_grants_.data(), cycle_grants_.size()};
}

}  // namespace dfsim
