#include "router/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dfsim {

SeparableAllocator::SeparableAllocator(std::int32_t in_ports,
                                       std::int32_t out_ports,
                                       std::int32_t vcs)
    : in_ports_(in_ports), out_ports_(out_ports), vcs_(vcs) {
  // Wrap bound for the input round-robin counters: any multiple of
  // lcm(1..vcs) keeps `counter % n` bit-identical to an unbounded counter
  // for all request counts n <= vcs; the lcm itself is the tightest bound.
  // For absurd vcs (>= 23) the lcm leaves the int range — fall back to no
  // wrap (0): the counters are int64, which cannot practically overflow,
  // so correctness is preserved either way.
  std::int64_t l = 1;
  for (std::int32_t v = 2; v <= vcs_; ++v) {
    l = std::lcm(l, std::int64_t{v});
    if (l > (std::int64_t{1} << 30)) {
      l = 0;
      break;
    }
  }
  in_rr_wrap_ = l;

  in_rr_.assign(static_cast<std::size_t>(in_ports_), 0);
  out_rr_.assign(static_cast<std::size_t>(out_ports_), 0);
  in_busy_.assign(static_cast<std::size_t>(in_ports_), 0);
  out_busy_.assign(static_cast<std::size_t>(out_ports_), 0);
  out_has_candidate_.assign(static_cast<std::size_t>(out_ports_), 0);
  winners_.reserve(static_cast<std::size_t>(in_ports_));
  cand_outs_.reserve(static_cast<std::size_t>(out_ports_));
  iter_grants_.reserve(static_cast<std::size_t>(
      std::min(in_ports_, out_ports_)));
  cycle_grants_.reserve(static_cast<std::size_t>(
      2 * std::min(in_ports_, out_ports_)));
}

void SeparableAllocator::begin_cycle() {
  std::fill(in_busy_.begin(), in_busy_.end(), std::int8_t{0});
  std::fill(out_busy_.begin(), out_busy_.end(), std::int8_t{0});
  cycle_grants_.clear();
}

std::span<const AllocGrant> SeparableAllocator::iterate(
    const AllocRequestBatch& batch) {
  iter_grants_.clear();

  // Stage 1: each free requesting input picks one VC, round-robin from its
  // pointer. Only inputs present in the batch are visited (they arrive in
  // ascending port order), so an idle router costs nothing here.
  const std::vector<AllocRequest>& reqs = batch.reqs();
  for (const AllocRequestBatch::Group& group : batch.groups()) {
    const auto ini = static_cast<std::size_t>(group.in);
    if (in_busy_[ini]) continue;
    const std::int32_t n = group.count;
    assert(n <= vcs_);  // the wrap-bound equivalence needs n <= vcs
    const auto start = static_cast<std::int32_t>(in_rr_[ini] % n);
    for (std::int32_t k = 0; k < n; ++k) {
      const AllocRequest& req =
          reqs[static_cast<std::size_t>(group.begin + (start + k) % n)];
      if (out_busy_[static_cast<std::size_t>(req.out)]) continue;
      // dfsim-check: allow(CHK-ALLOC): reserved to in_ports_ in the ctor
      winners_.push_back(AllocGrant{group.in, req.vc, req.out});
      if (!out_has_candidate_[static_cast<std::size_t>(req.out)]) {
        out_has_candidate_[static_cast<std::size_t>(req.out)] = 1;
        // dfsim-check: allow(CHK-ALLOC): reserved to out_ports_ in the ctor
        cand_outs_.push_back(req.out);
      }
      break;
    }
  }

  // Stage 2: each contested output picks one stage-1 winner. The winner is
  // the input with the smallest circular round-robin distance from the
  // output's pointer — equivalent to the dense scan from out_rr_[out], in
  // O(winners) instead of O(in_ports). Outputs are processed in ascending
  // index order (grant order is observable downstream: the engine pops
  // queues in grant order and RNG draws hang off the new heads).
  // With through-priority enabled, through inputs rank before injection
  // inputs regardless of distance (the old two-pass scan).
  if (!winners_.empty()) {
    std::sort(cand_outs_.begin(), cand_outs_.end());
    for (const PortIndex out : cand_outs_) {
      const auto outi = static_cast<std::size_t>(out);
      if (out_busy_[outi]) continue;
      const std::int32_t start = out_rr_[outi];
      std::int32_t best = -1;
      std::int32_t best_key = 0;
      for (std::size_t w = 0; w < winners_.size(); ++w) {
        const AllocGrant& cand = winners_[w];
        if (cand.out != out) continue;
        if (in_busy_[static_cast<std::size_t>(cand.in)]) continue;
        const std::int32_t dist =
            (cand.in - start + in_ports_) % in_ports_;
        const std::int32_t cls =
            (first_injection_port_ >= 0 && cand.in >= first_injection_port_)
                ? 1
                : 0;
        const std::int32_t key = cls * in_ports_ + dist;
        if (best < 0 || key < best_key) {
          best = static_cast<std::int32_t>(w);
          best_key = key;
        }
      }
      if (best < 0) continue;
      const AllocGrant& grant = winners_[static_cast<std::size_t>(best)];
      // dfsim-check: allow(CHK-ALLOC): reserved to min(in,out) in the ctor
      iter_grants_.push_back(grant);
      in_busy_[static_cast<std::size_t>(grant.in)] = 1;
      out_busy_[outi] = 1;
      // Advance round-robin pointers past the winners. out_rr_ is bounded
      // by its modulus here; in_rr_ wraps at lcm(1..vcs) (see in_rr_wrap).
      out_rr_[outi] = (grant.in + 1) % in_ports_;
      std::int64_t& rr = in_rr_[static_cast<std::size_t>(grant.in)];
      rr = (in_rr_wrap_ != 0 && rr + 1 == in_rr_wrap_) ? 0 : rr + 1;
    }
  }

  // Sparse-clear the per-iteration scratch.
  for (const PortIndex out : cand_outs_) {
    out_has_candidate_[static_cast<std::size_t>(out)] = 0;
  }
  cand_outs_.clear();
  winners_.clear();

  // dfsim-check: allow(CHK-ALLOC): reserved to 2*min(in,out) in the ctor
  cycle_grants_.insert(cycle_grants_.end(), iter_grants_.begin(),
                       iter_grants_.end());
  return {iter_grants_.data(), iter_grants_.size()};
}

std::span<const AllocGrant> SeparableAllocator::allocate_iteration(
    const AllocRequestBatch& batch) {
  begin_cycle();
  iterate(batch);
  return {cycle_grants_.data(), cycle_grants_.size()};
}

}  // namespace dfsim
