// Separable input-first switch allocator.
//
// One iteration runs two round-robin stages in O(ports * vcs) with zero heap
// allocation per call:
//   stage 1 (input arbitration):  each input port picks one requesting VC
//   stage 2 (output arbitration): each output port picks one input winner
// Round-robin pointers advance past grant winners, which gives the usual
// separable-allocator fairness. Grants land in a preallocated buffer and are
// returned as a span — the simulator calls this for every router every cycle,
// so the no-allocation property is load-bearing (and unit-tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace dfsim {

struct AllocRequest {
  VcIndex vc = 0;        // requesting VC at this input port
  PortIndex out = 0;     // requested output port
};

struct AllocGrant {
  PortIndex in = 0;
  VcIndex vc = 0;
  PortIndex out = 0;
};

class SeparableAllocator {
 public:
  SeparableAllocator(std::int32_t in_ports, std::int32_t out_ports,
                     std::int32_t vcs);

  /// Output arbitration priority for in-network (through) traffic: inputs
  /// at or past `first_injection_port` only win an output no through input
  /// wants that iteration. Low-radix rings/tori need this — with plain
  /// round-robin an injection port takes an equal share of a saturated
  /// through link, which collapses aggregate throughput on >= 3-hop chains
  /// (the classic torus injection-vs-bypass fairness problem; cf. age-based
  /// or bypass-priority arbitration in real torus routers). Off by default:
  /// high-radix dragonfly outputs see many through inputs and figure
  /// parity with the paper's RR allocator matters more there.
  void set_through_priority(std::int32_t first_injection_port) {
    first_injection_port_ = first_injection_port;
  }

  /// Runs one separable iteration over `requests` (indexed by input port;
  /// each inner vector lists that port's requesting VCs). The returned span
  /// aliases an internal buffer valid until the next call.
  [[nodiscard]] std::span<const AllocGrant> allocate_iteration(
      const std::vector<std::vector<AllocRequest>>& requests);

  /// Incremental variant for multi-iteration (speedup > 1) allocation:
  /// inputs/outputs granted in earlier iterations of the same cycle are
  /// skipped. Call `begin_cycle()` first, then `iterate` up to `speedup`
  /// times; grants accumulate in `cycle_grants()`.
  void begin_cycle();
  std::span<const AllocGrant> iterate(
      const std::vector<std::vector<AllocRequest>>& requests);
  [[nodiscard]] std::span<const AllocGrant> cycle_grants() const {
    return {cycle_grants_.data(), cycle_grants_.size()};
  }

  [[nodiscard]] std::int32_t in_ports() const { return in_ports_; }
  [[nodiscard]] std::int32_t out_ports() const { return out_ports_; }
  [[nodiscard]] std::int32_t vcs() const { return vcs_; }

 private:
  std::int32_t in_ports_;
  std::int32_t out_ports_;
  std::int32_t vcs_;
  std::int32_t first_injection_port_ = -1;  // -1: plain round-robin

  std::vector<std::int32_t> in_rr_;   // per input: round-robin VC pointer
  std::vector<std::int32_t> out_rr_;  // per output: round-robin input pointer

  // Per-cycle scratch (preallocated).
  std::vector<std::int8_t> in_busy_;    // input granted this cycle
  std::vector<std::int8_t> out_busy_;   // output granted this cycle
  std::vector<AllocRequest> in_winner_; // stage-1 winner per input
  std::vector<std::int8_t> in_has_winner_;
  std::vector<std::int8_t> out_has_candidate_;
  std::vector<AllocGrant> iter_grants_;
  std::vector<AllocGrant> cycle_grants_;
};

}  // namespace dfsim
