// Separable input-first switch allocator over sparse request batches.
//
// One iteration runs two round-robin stages in O(requests) — not
// O(ports * vcs) — with zero heap allocation per call:
//   stage 1 (input arbitration):  each requesting input picks one VC
//   stage 2 (output arbitration): each contested output picks one input
// Requests arrive as an AllocRequestBatch: a flat list appended in
// ascending (input port, vc) order, so consecutive same-port entries form
// that input's candidate list and the engine's active-set scan can feed the
// allocator without materializing a dense per-port vector-of-vectors.
// Round-robin pointers advance past grant winners, which gives the usual
// separable-allocator fairness. Grants land in a preallocated buffer and are
// returned as a span — the simulator calls this for every active router
// every cycle, so the no-allocation property is load-bearing (unit-tested).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace dfsim {

struct AllocRequest {
  VcIndex vc = 0;        // requesting VC at this input port
  PortIndex out = 0;     // requested output port
};

struct AllocGrant {
  PortIndex in = 0;
  VcIndex vc = 0;
  PortIndex out = 0;
};

/// Sparse request submission: append requests in ascending (input port, vc)
/// order; runs of the same input port form that port's candidate list. The
/// batch is reusable scratch — reserve() once, clear() + add() per cycle.
class AllocRequestBatch {
 public:
  struct Group {
    PortIndex in = 0;
    std::int32_t begin = 0;  // index into reqs()
    std::int32_t count = 0;
  };

  void reserve(std::int32_t in_ports, std::int32_t vcs) {
    groups_.reserve(static_cast<std::size_t>(in_ports));
    reqs_.reserve(static_cast<std::size_t>(in_ports) *
                  static_cast<std::size_t>(vcs));
  }
  void clear() {
    groups_.clear();
    reqs_.clear();
  }
  void add(PortIndex in, VcIndex vc, PortIndex out) {
    if (groups_.empty() || groups_.back().in != in) {
      assert(groups_.empty() || groups_.back().in < in);  // ascending order
      groups_.push_back(
          Group{in, static_cast<std::int32_t>(reqs_.size()), 0});
    }
    reqs_.push_back(AllocRequest{vc, out});
    ++groups_.back().count;
  }

  [[nodiscard]] bool empty() const { return reqs_.empty(); }
  [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }
  [[nodiscard]] const std::vector<AllocRequest>& reqs() const { return reqs_; }

 private:
  std::vector<Group> groups_;
  std::vector<AllocRequest> reqs_;
};

class SeparableAllocator {
 public:
  SeparableAllocator(std::int32_t in_ports, std::int32_t out_ports,
                     std::int32_t vcs);

  /// Output arbitration priority for in-network (through) traffic: inputs
  /// at or past `first_injection_port` only win an output no through input
  /// wants that iteration. Low-radix rings/tori need this — with plain
  /// round-robin an injection port takes an equal share of a saturated
  /// through link, which collapses aggregate throughput on >= 3-hop chains
  /// (the classic torus injection-vs-bypass fairness problem; cf. age-based
  /// or bypass-priority arbitration in real torus routers). Off by default:
  /// high-radix dragonfly outputs see many through inputs and figure
  /// parity with the paper's RR allocator matters more there.
  void set_through_priority(std::int32_t first_injection_port) {
    first_injection_port_ = first_injection_port;
  }

  /// Runs one separable iteration over `batch`. The returned span aliases an
  /// internal buffer valid until the next call.
  [[nodiscard]] std::span<const AllocGrant> allocate_iteration(
      const AllocRequestBatch& batch);

  /// Incremental variant for multi-iteration (speedup > 1) allocation:
  /// inputs/outputs granted in earlier iterations of the same cycle are
  /// skipped. Call `begin_cycle()` first, then `iterate` up to `speedup`
  /// times; grants accumulate in `cycle_grants()`.
  void begin_cycle();
  std::span<const AllocGrant> iterate(const AllocRequestBatch& batch);
  [[nodiscard]] std::span<const AllocGrant> cycle_grants() const {
    return {cycle_grants_.data(), cycle_grants_.size()};
  }

  [[nodiscard]] std::int32_t in_ports() const { return in_ports_; }
  [[nodiscard]] std::int32_t out_ports() const { return out_ports_; }
  [[nodiscard]] std::int32_t vcs() const { return vcs_; }

  /// Bound the per-input round-robin counters wrap at: the least common
  /// multiple of 1..vcs, so `in_rr_[in] % n` is identical to an unbounded
  /// counter for every possible per-input request count n <= vcs — the
  /// wrap is observationally invisible (bit-exact goldens) while killing
  /// the overflow an unbounded narrow counter hits after ~2^31 grants on
  /// paper-scale runs (signed overflow is UB). 0 when the lcm would leave
  /// the integer range (vcs >= 23): the counters then run free on int64,
  /// which cannot practically overflow.
  [[nodiscard]] std::int64_t in_rr_wrap() const { return in_rr_wrap_; }
  /// Test hook: current RR pointer of input `in` (bounded by in_rr_wrap).
  [[nodiscard]] std::int64_t debug_in_rr(std::int32_t in) const {
    return in_rr_[static_cast<std::size_t>(in)];
  }

 private:
  std::int32_t in_ports_;
  std::int32_t out_ports_;
  std::int32_t vcs_;
  std::int64_t in_rr_wrap_;                 // lcm(1..vcs); 0 = no wrap
  std::int32_t first_injection_port_ = -1;  // -1: plain round-robin

  std::vector<std::int64_t> in_rr_;   // per input: round-robin VC pointer,
                                      // wrapped at in_rr_wrap_ (see above)
  std::vector<std::int32_t> out_rr_;  // per output: round-robin input
                                      // pointer, bounded by construction
                                      // (always advanced mod in_ports_)

  // Per-cycle scratch (preallocated).
  std::vector<std::int8_t> in_busy_;    // input granted this cycle
  std::vector<std::int8_t> out_busy_;   // output granted this cycle
  // Per-iteration scratch (preallocated, sparse-cleared after stage 2).
  std::vector<AllocGrant> winners_;     // stage-1 winner per requesting input
  std::vector<std::int8_t> out_has_candidate_;
  std::vector<PortIndex> cand_outs_;    // distinct stage-1 outputs
  std::vector<AllocGrant> iter_grants_;
  std::vector<AllocGrant> cycle_grants_;
};

}  // namespace dfsim
