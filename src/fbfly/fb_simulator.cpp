#include "fbfly/fb_simulator.hpp"

#include <algorithm>
#include <cassert>

namespace dfsim::fbfly {

std::string to_string(FbRouting routing) {
  switch (routing) {
    case FbRouting::kMin: return "MIN";
    case FbRouting::kValiant: return "VAL";
    case FbRouting::kUgalQueue: return "UGALq";
    case FbRouting::kContention: return "CB";
  }
  return "?";
}

TrafficTopologyInfo fb_traffic_info(const FbParams& topo) {
  TrafficTopologyInfo info;
  info.nodes = topo.nodes();
  info.groups = topo.routers();
  info.nodes_per_group = topo.c;
  const std::int32_t k = topo.k;
  info.adv_group = [k](std::int32_t r, std::int32_t offset) {
    const std::int32_t c0 = r % k;
    return r - c0 + ((c0 + offset) % k + k) % k;
  };
  return info;
}

FbSimulator::FbSimulator(const FbConfig& config)
    : config_(config),
      rng_(config.seed),
      traffic_(config.traffic, fb_traffic_info(config.topo), 1, config.seed) {
  routers_ = config_.topo.routers();
  channels_ = config_.topo.channels();
  // Auto threshold: 3/4 of the injection heads aligned on one channel. Full
  // alignment (c) is too strict once deep downstream queues absorb the
  // backlog; random uniform alignment of 3c/4 heads stays very unlikely.
  threshold_ = config_.threshold > 0 ? config_.threshold
                                     : std::max(2, (3 * config_.topo.c) / 4);
  ugal_threshold_ = config_.ugal_threshold > 0
                        ? config_.ugal_threshold
                        : std::max(1, config_.buf_packets / 2);

  source_.resize(static_cast<std::size_t>(config_.topo.nodes()));
  source_head_.assign(source_.size(), 0);
  source_decided_.assign(source_.size(), 0);
  queue_.resize(static_cast<std::size_t>(routers_) *
                static_cast<std::size_t>(channels_) * 2);
  queue_head_.assign(queue_.size(), 0);
  counters_.assign(static_cast<std::size_t>(routers_) *
                       static_cast<std::size_t>(channels_),
                   0);
}

std::int32_t FbSimulator::coord(RouterId r, std::int32_t dim) const {
  std::int32_t v = r;
  for (std::int32_t d = 0; d < dim; ++d) v /= config_.topo.k;
  return v % config_.topo.k;
}

std::int32_t FbSimulator::channel_to(RouterId r, std::int32_t dim,
                                     std::int32_t v) const {
  const std::int32_t own = coord(r, dim);
  assert(v != own);
  return dim * (config_.topo.k - 1) + (v < own ? v : v - 1);
}

std::int32_t FbSimulator::dor_channel(RouterId r, RouterId target) const {
  if (r == target) return -1;
  for (std::int32_t dim = 0; dim < config_.topo.n; ++dim) {
    const std::int32_t cr = coord(r, dim);
    const std::int32_t ct = coord(target, dim);
    if (cr != ct) return channel_to(r, dim, ct);
  }
  return -1;
}

RouterId FbSimulator::channel_peer(RouterId r, std::int32_t channel) const {
  const std::int32_t k = config_.topo.k;
  const std::int32_t dim = channel / (k - 1);
  const std::int32_t idx = channel % (k - 1);
  const std::int32_t own = coord(r, dim);
  const std::int32_t v = idx < own ? idx : idx + 1;
  std::int32_t stride = 1;
  for (std::int32_t d = 0; d < dim; ++d) stride *= k;
  return r + (v - own) * stride;
}

std::int32_t FbSimulator::dor_hops(RouterId from, RouterId to) const {
  std::int32_t hops = 0;
  for (std::int32_t dim = 0; dim < config_.topo.n; ++dim) {
    if (coord(from, dim) != coord(to, dim)) ++hops;
  }
  return hops;
}

void FbSimulator::inject() {
  // Destinations come from the shared traffic subsystem; the row adversary
  // of the Section VI-D bench is ADV+1 under fb_traffic_info's dim-0 ring.
  traffic_.begin_cycle(now_);
  Injection inj;
  while (traffic_.next(inj)) {
    ++metrics_.generated;
    auto& src = source_[static_cast<std::size_t>(inj.src)];
    const auto len = static_cast<std::int32_t>(src.size()) -
                     source_head_[static_cast<std::size_t>(inj.src)];
    if (len >= config_.source_queue_packets) {
      ++metrics_.refused;
      continue;
    }
    Packet packet;
    packet.birth = now_;
    packet.dst = inj.dst;
    src.push_back(packet);
  }
}

void FbSimulator::refresh_counters() {
  std::fill(counters_.begin(), counters_.end(), std::int16_t{0});
  const std::int32_t nodes = config_.topo.nodes();
  for (NodeId node = 0; node < nodes; ++node) {
    const auto& src = source_[static_cast<std::size_t>(node)];
    const std::int32_t head = source_head_[static_cast<std::size_t>(node)];
    if (head >= static_cast<std::int32_t>(src.size())) continue;
    const Packet& packet = src[static_cast<std::size_t>(head)];
    const RouterId r = router_of(node);
    const std::int32_t ch = dor_channel(r, router_of(packet.dst));
    if (ch >= 0) {
      ++counters_[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(channels_) +
                  static_cast<std::size_t>(ch)];
    }
  }
}

void FbSimulator::decide(RouterId r, Packet& packet) {
  const RouterId dr = router_of(packet.dst);
  if (dr == r || config_.routing == FbRouting::kMin) return;

  auto random_inter = [&]() -> RouterId {
    for (std::int32_t attempt = 0; attempt < 8; ++attempt) {
      const auto inter = static_cast<RouterId>(
          rng_.next_below(static_cast<std::uint64_t>(routers_)));
      if (inter != r && inter != dr) return inter;
    }
    return -1;
  };

  switch (config_.routing) {
    case FbRouting::kValiant: {
      const RouterId inter = random_inter();
      if (inter >= 0) {
        packet.inter = inter;
        packet.misrouted = true;
      }
      return;
    }
    case FbRouting::kUgalQueue: {
      const RouterId inter = random_inter();
      if (inter < 0) return;
      const std::int32_t ch_min = dor_channel(r, dr);
      const std::int32_t ch_val = dor_channel(r, inter);
      if (ch_min < 0 || ch_val < 0) return;
      const std::int64_t h_min = dor_hops(r, dr);
      const std::int64_t h_val = dor_hops(r, inter) + dor_hops(inter, dr);
      const std::int64_t q_min = queue_len(queue_id(r, ch_min, 1));
      const std::int64_t q_val = queue_len(queue_id(r, ch_val, 0));
      if (q_min * h_min > q_val * h_val + ugal_threshold_) {
        packet.inter = inter;
        packet.misrouted = true;
      }
      return;
    }
    case FbRouting::kContention: {
      const std::int32_t ch_min = dor_channel(r, dr);
      if (ch_min < 0) return;
      const std::int16_t counter =
          counters_[static_cast<std::size_t>(r) *
                        static_cast<std::size_t>(channels_) +
                    static_cast<std::size_t>(ch_min)];
      if (counter >= threshold_) {
        const RouterId inter = random_inter();
        if (inter >= 0) {
          packet.inter = inter;
          packet.misrouted = true;
        }
      }
      return;
    }
    case FbRouting::kMin:
      return;
  }
}

void FbSimulator::advance_links() {
  // Snapshot sizes so a packet moves at most one hop per cycle: a packet
  // pushed into an empty queue this cycle becomes its head, and must not be
  // advanced again when that channel's turn comes.
  const std::size_t n_q = queue_.size();
  size_snapshot_.resize(n_q);
  for (std::size_t q = 0; q < n_q; ++q) {
    size_snapshot_[q] = static_cast<std::int32_t>(queue_[q].size());
  }

  // One packet per physical channel per cycle; the destination-phase queue
  // has priority (it drains toward ejection, which keeps the phase order
  // deadlock-free and live).
  for (RouterId r = 0; r < routers_; ++r) {
    for (std::int32_t ch = 0; ch < channels_; ++ch) {
      for (std::int32_t phase : {1, 0}) {
        const std::size_t q = queue_id(r, ch, phase);
        const std::int32_t head = queue_head_[q];
        if (head >= size_snapshot_[q]) continue;
        Packet packet = queue_[q][static_cast<std::size_t>(head)];
        const RouterId peer = channel_peer(r, ch);
        ++packet.hops;
        if (packet.inter == peer) packet.inter = -1;

        const RouterId target =
            packet.inter >= 0 ? packet.inter : router_of(packet.dst);
        if (peer == target && packet.inter < 0) {
          ++queue_head_[q];
          deliver(packet);
          break;  // channel used this cycle
        }
        const std::int32_t next = dor_channel(peer, target);
        assert(next >= 0);
        const std::int32_t next_phase = packet.inter >= 0 ? 0 : 1;
        const std::size_t nq = queue_id(peer, next, next_phase);
        if (queue_len(nq) >= config_.buf_packets) continue;  // stall; try
                                                             // the other
                                                             // phase
        ++queue_head_[q];
        queue_[nq].push_back(packet);
        break;  // channel used this cycle
      }
    }
  }

  // Compact drained queues.
  for (std::size_t q = 0; q < n_q; ++q) {
    auto& vec = queue_[q];
    auto& head = queue_head_[q];
    if (head > 0 && head >= static_cast<std::int32_t>(vec.size())) {
      vec.clear();
      head = 0;
    } else if (head > 256) {
      vec.erase(vec.begin(), vec.begin() + head);
      head = 0;
    }
  }
}

void FbSimulator::move_sources() {
  const std::int32_t nodes = config_.topo.nodes();
  for (NodeId node = 0; node < nodes; ++node) {
    auto& src = source_[static_cast<std::size_t>(node)];
    auto& head = source_head_[static_cast<std::size_t>(node)];
    if (head >= static_cast<std::int32_t>(src.size())) continue;
    Packet& packet = src[static_cast<std::size_t>(head)];
    const RouterId r = router_of(node);

    if (!source_decided_[static_cast<std::size_t>(node)]) {
      decide(r, packet);
      source_decided_[static_cast<std::size_t>(node)] = 1;
    }

    const RouterId target =
        packet.inter >= 0 ? packet.inter : router_of(packet.dst);
    if (target == r && packet.inter < 0) {
      // Destination attached to the same router.
      Packet done = packet;
      ++head;
      source_decided_[static_cast<std::size_t>(node)] = 0;
      deliver(done);
    } else {
      const std::int32_t ch = dor_channel(r, target);
      assert(ch >= 0);
      const std::size_t q = queue_id(r, ch, packet.inter >= 0 ? 0 : 1);
      if (queue_len(q) >= config_.buf_packets) continue;  // wait at source
      Packet moving = packet;
      ++head;
      source_decided_[static_cast<std::size_t>(node)] = 0;
      queue_[q].push_back(moving);
    }
    if (head > 256) {
      src.erase(src.begin(), src.begin() + head);
      head = 0;
    } else if (head >= static_cast<std::int32_t>(src.size())) {
      src.clear();
      head = 0;
    }
  }
}

void FbSimulator::deliver(Packet& packet) {
  const Cycle latency =
      (now_ - packet.birth) +
      static_cast<Cycle>(packet.hops) * config_.hop_latency + 1;
  ++metrics_.delivered;
  metrics_.latency_sum += static_cast<double>(latency);
  metrics_.latency_hist.add(latency);
  if (packet.misrouted) ++metrics_.misrouted;
  if (log_deliveries_) {
    deliveries_.push_back(Delivery{packet.birth, latency, packet.misrouted});
  }
}

void FbSimulator::step() {
  inject();
  if (config_.routing == FbRouting::kContention) refresh_counters();
  advance_links();
  move_sources();
  ++now_;
}

void FbSimulator::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

void FbSimulator::start_measurement() {
  metrics_ = Metrics{};
  measure_start_ = now_;
}

double FbSimulator::throughput() const {
  const Cycle cycles = now_ - measure_start_;
  if (cycles <= 0) return 0.0;
  return static_cast<double>(metrics_.delivered) /
         (static_cast<double>(config_.topo.nodes()) *
          static_cast<double>(cycles));
}

double FbSimulator::backlog_per_node() const {
  std::int64_t waiting = 0;
  for (std::size_t i = 0; i < source_.size(); ++i) {
    waiting += static_cast<std::int64_t>(source_[i].size()) - source_head_[i];
  }
  return static_cast<double>(waiting) /
         static_cast<double>(config_.topo.nodes());
}

void FbSimulator::set_traffic(const TrafficParams& traffic) {
  config_.traffic = traffic;
  traffic_.reset_spec(traffic);
}

void FbSimulator::start_trace_recording(std::size_t reserve_records) {
  traffic_.start_recording(reserve_records);
}

void FbSimulator::enable_delivery_log() {
  log_deliveries_ = true;
  deliveries_.clear();
}

}  // namespace dfsim::fbfly
