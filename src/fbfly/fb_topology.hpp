// Flattened-butterfly Topology plugin for the unified engine (Section VI-D).
//
// A k-ary n-flat: routers are points of a k^n grid, each dimension fully
// connected ((k-1) channels per dimension per router), c terminals per
// router. Minimal routing is Dimension-Order (unique path); nonminimal
// routing is Valiant through a random intermediate router, taken as DOR
// r -> inter -> dest. The nonminimal phase ends on *arrival* at the
// intermediate (NonminCandidate::via_port = -1), and the VC schedule is the
// usual FB deadlock-avoidance split collapsed to one class per phase:
// VC0 on the leg to the intermediate, VC1 on the leg to the destination
// (configure vcs_local >= 2). All channels are kLocalClass: one buffer
// depth, one link latency.
//
// This replaced the bespoke output-queued FbSimulator: the fbfly now runs
// the engine's input-queued routers, credit flow, separable allocator,
// contention counters, delivery log, trace record/replay, and zero-alloc
// guarantees — the features the fork had silently lost.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "topo/topology.hpp"
#include "util/types.hpp"

namespace dfsim {

class FlattenedButterflyTopology final : public Topology {
 public:
  explicit FlattenedButterflyTopology(const FbflyParams& params);

  [[nodiscard]] const FbflyParams& params() const { return params_; }

  [[nodiscard]] std::int32_t coord(RouterId r, std::int32_t dim) const {
    std::int32_t v = r;
    for (std::int32_t d = 0; d < dim; ++d) v /= params_.k;
    return v % params_.k;
  }
  /// Output channel index toward coordinate `v` in dimension `dim`.
  [[nodiscard]] std::int32_t channel_to(RouterId r, std::int32_t dim,
                                        std::int32_t v) const {
    const std::int32_t own = coord(r, dim);
    return dim * (params_.k - 1) + (v < own ? v : v - 1);
  }
  [[nodiscard]] std::int32_t dor_hops(RouterId from, RouterId to) const {
    std::int32_t hops = 0;
    for (std::int32_t dim = 0; dim < params_.n; ++dim) {
      if (coord(from, dim) != coord(to, dim)) ++hops;
    }
    return hops;
  }

  // --- Topology interface -------------------------------------------------

  [[nodiscard]] PortClass port_class(PortIndex port) const override {
    (void)port;
    return PortClass::kLocalClass;
  }
  [[nodiscard]] RouterId peer(RouterId r, PortIndex port) const override;
  [[nodiscard]] PortIndex peer_port(RouterId r, PortIndex port) const override;
  [[nodiscard]] PortIndex minimal_output(RouterId r,
                                         NodeId dest) const override;
  [[nodiscard]] PortIndex route_toward(RouterId r,
                                       RouterId target) const override;

  [[nodiscard]] VcIndex vc_class(RouterId r, PortIndex out,
                                 std::int8_t vc_state,
                                 bool phase0) const override {
    (void)r;
    (void)out;
    (void)vc_state;
    return phase0 ? 0 : 1;
  }
  [[nodiscard]] HopTransition on_hop(RouterId r, PortIndex out,
                                     std::int8_t vc_state) const override {
    (void)r;
    (void)out;
    return {vc_state, false, false};  // phase 0 ends on arrival at `inter`
  }

  [[nodiscard]] std::int32_t min_channel(RouterId r, NodeId dst) const override;
  [[nodiscard]] std::int32_t nonmin_pool_size(
      RouterId r, bool own_router_only) const override {
    (void)r;
    (void)own_router_only;  // no CRG analogue: every candidate starts here
    return routers();
  }
  [[nodiscard]] bool sample_nonmin(Rng& rng, RouterId r, NodeId dst,
                                   bool own_router_only,
                                   NonminCandidate& out) const override;
  [[nodiscard]] bool nonmin_candidate_at(RouterId r, NodeId dst,
                                         bool own_router_only,
                                         std::int32_t index,
                                         NonminCandidate& out) const override;
  [[nodiscard]] bool sample_valiant(Rng& rng, RouterId r, NodeId dst,
                                    NonminCandidate& out) const override;

  [[nodiscard]] HopEstimate min_hops(RouterId r, RouterId dr) const override {
    return {dor_hops(r, dr), 0};
  }
  [[nodiscard]] HopEstimate nonmin_hops(RouterId r,
                                        const NonminCandidate& cand,
                                        RouterId dr) const override {
    return {dor_hops(r, cand.inter) + dor_hops(cand.inter, dr), 0};
  }
  [[nodiscard]] bool min_link_probe(RouterId r, NodeId dst,
                                    RemoteProbe& out) const override;
  [[nodiscard]] bool min_remote_probe(RouterId r, NodeId dst,
                                      RemoteProbe& out) const override {
    return min_link_probe(r, dst, out);  // one-hop-lookahead queue
  }
  [[nodiscard]] bool nonmin_remote_probe(RouterId r,
                                         const NonminCandidate& cand,
                                         RemoteProbe& out) const override;

  [[nodiscard]] bool can_misroute_in_transit(
      RouterId r, RouterId src_router, std::int8_t vc_state) const override {
    (void)vc_state;
    return r == src_router;  // decisions at the source router only
  }

  [[nodiscard]] TrafficTopologyInfo traffic_info() const override;

  /// Other minimal dimensions first, then a detour coordinate within the
  /// blocked dimension (its row router has a direct channel onward).
  [[nodiscard]] PortIndex fallback_output(RouterId r, RouterId target,
                                          PortIndex avoid) const override;

 private:
  [[nodiscard]] bool make_candidate(RouterId r, RouterId inter,
                                    NonminCandidate& out) const;

  FbflyParams params_;
  std::int32_t channels_ = 0;  // inter-router channels per router: n*(k-1)
};

}  // namespace dfsim
