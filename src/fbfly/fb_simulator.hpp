// Companion simulator for Section VI-D: contention counters on a k-ary
// n-flat flattened butterfly with Dimension-Order (minimal) routing.
//
// Deliberately simpler than the dragonfly engine — output-queued,
// packet-granularity, unit links — because the point of the ablation is the
// *trigger* comparison (queue/UGAL vs contention counters) on a second
// topology, not microarchitectural fidelity. Counters here follow the
// paper's remark that FB only needs injection-head counters: each router
// counts how many of its injection-queue heads would minimally use each
// output channel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/model.hpp"
#include "traffic/spec.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim::fbfly {

struct FbParams {
  std::int32_t k = 4;  // radix per dimension
  std::int32_t n = 2;  // dimensions
  std::int32_t c = 4;  // nodes per router

  [[nodiscard]] std::int32_t routers() const {
    std::int32_t total = 1;
    for (std::int32_t d = 0; d < n; ++d) total *= k;
    return total;
  }
  [[nodiscard]] std::int32_t nodes() const { return routers() * c; }
  /// Inter-router channels per router: (k-1) per dimension.
  [[nodiscard]] std::int32_t channels() const { return n * (k - 1); }
};

enum class FbRouting : std::uint8_t { kMin, kValiant, kUgalQueue, kContention };

[[nodiscard]] std::string to_string(FbRouting routing);

/// Traffic-model grouping for the flattened butterfly: every router is one
/// "group" of its c terminals, and the adversarial mapping advances the
/// dimension-0 coordinate — ADV+1 is the row adversary the Section VI-D
/// bench uses (all nodes of router R target router R+1 in dim 0).
[[nodiscard]] TrafficTopologyInfo fb_traffic_info(const FbParams& topo);

struct FbConfig {
  FbParams topo;
  FbRouting routing = FbRouting::kMin;
  /// Shared workload spec (traffic/spec.hpp); load is packets/node/cycle
  /// here (unit packet size).
  TrafficParams traffic;
  std::uint64_t seed = 1;
  std::int32_t buf_packets = 16;      // per output channel queue
  std::int32_t source_queue_packets = 512;
  std::int32_t hop_latency = 4;       // fixed per-hop pipeline+wire cycles
  /// Contention threshold; 0 = auto (all c injection heads aligned).
  std::int32_t threshold = 0;
  std::int32_t ugal_threshold = 0;    // 0 = auto (buf_packets / 2)
};

class FbSimulator {
 public:
  struct Delivery {
    Cycle birth = 0;
    Cycle latency = 0;
    bool misrouted = false;
  };

  struct Metrics {
    std::int64_t delivered = 0;
    double latency_sum = 0.0;
    std::int64_t misrouted = 0;
    std::int64_t generated = 0;
    std::int64_t refused = 0;
    LatencyHistogram latency_hist;

    [[nodiscard]] double mean_latency() const {
      return delivered > 0 ? latency_sum / static_cast<double>(delivered)
                           : 0.0;
    }
    [[nodiscard]] double misrouted_fraction() const {
      return delivered > 0 ? static_cast<double>(misrouted) /
                                 static_cast<double>(delivered)
                           : 0.0;
    }
  };

  explicit FbSimulator(const FbConfig& config);

  void step();
  void run(Cycle cycles);
  [[nodiscard]] Cycle now() const { return now_; }

  void start_measurement();
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] double throughput() const;
  [[nodiscard]] double backlog_per_node() const;

  void set_traffic(const TrafficParams& traffic);
  [[nodiscard]] const TrafficModel& traffic_model() const { return traffic_; }
  /// Trace record/replay, same format and determinism contract as the
  /// dragonfly engine (traffic/trace.hpp).
  void start_trace_recording(std::size_t reserve_records = 1u << 16);
  void write_recorded_trace(const std::string& path) const {
    traffic_.write_recorded(path);
  }
  void enable_delivery_log();
  [[nodiscard]] const std::vector<Delivery>& delivery_log() const {
    return deliveries_;
  }

 private:
  struct Packet {
    NodeId dst = 0;
    RouterId inter = -1;  // valiant intermediate (-1 = minimal phase)
    Cycle birth = 0;
    std::int16_t hops = 0;
    bool misrouted = false;
  };

  [[nodiscard]] RouterId router_of(NodeId node) const {
    return node / config_.topo.c;
  }
  [[nodiscard]] std::int32_t coord(RouterId r, std::int32_t dim) const;
  /// Output channel index toward coordinate `v` in dimension `dim`.
  [[nodiscard]] std::int32_t channel_to(RouterId r, std::int32_t dim,
                                        std::int32_t v) const;
  /// First DOR hop from `r` toward router `target`; -1 when r == target.
  [[nodiscard]] std::int32_t dor_channel(RouterId r, RouterId target) const;
  [[nodiscard]] RouterId channel_peer(RouterId r, std::int32_t channel) const;
  [[nodiscard]] std::int32_t dor_hops(RouterId from, RouterId to) const;

  void inject();
  void refresh_counters();
  void decide(RouterId r, Packet& packet);
  void move_sources();
  void advance_links();
  void deliver(Packet& packet);

  /// Queue storage is split into two virtual phases per channel (Valiant
  /// leg to the intermediate router vs the leg to the destination), which
  /// breaks the dim1 -> dim0 buffer cycle nonminimal routing introduces —
  /// the usual FB deadlock-avoidance VCs, collapsed to one class per phase.
  [[nodiscard]] std::size_t queue_id(RouterId r, std::int32_t channel,
                                     std::int32_t phase) const {
    return (static_cast<std::size_t>(r) * static_cast<std::size_t>(channels_) +
            static_cast<std::size_t>(channel)) *
               2 +
           static_cast<std::size_t>(phase);
  }
  [[nodiscard]] std::int32_t queue_len(std::size_t q) const {
    return static_cast<std::int32_t>(queue_[q].size()) - queue_head_[q];
  }

  FbConfig config_;
  std::int32_t routers_ = 0;
  std::int32_t channels_ = 0;
  std::int32_t threshold_ = 0;
  std::int32_t ugal_threshold_ = 0;

  // Source queues per node; output queues per (router, channel).
  std::vector<std::vector<Packet>> source_;   // FIFO front at index 0
  std::vector<std::int32_t> source_head_;     // pop index (amortized erase)
  std::vector<std::int8_t> source_decided_;
  std::vector<std::vector<Packet>> queue_;
  std::vector<std::int32_t> queue_head_;
  std::vector<std::int32_t> size_snapshot_;   // advance_links scratch
  std::vector<std::int16_t> counters_;        // injection-head contention

  Cycle now_ = 0;
  Rng rng_;  // routing decisions only; traffic draws live in traffic_
  TrafficModel traffic_;
  Metrics metrics_;
  Cycle measure_start_ = 0;
  bool log_deliveries_ = false;
  std::vector<Delivery> deliveries_;
};

}  // namespace dfsim::fbfly
