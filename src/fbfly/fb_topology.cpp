#include "fbfly/fb_topology.hpp"

#include <stdexcept>

namespace dfsim {

FlattenedButterflyTopology::FlattenedButterflyTopology(
    const FbflyParams& params)
    : params_(params) {
  if (params_.k < 2 || params_.n < 1 || params_.c < 1) {
    throw std::invalid_argument("fbfly: need k>=2, n>=1, c>=1");
  }
  channels_ = params_.n * (params_.k - 1);
  set_shape(params_.routers(), channels_, params_.c);
}

RouterId FlattenedButterflyTopology::peer(RouterId r, PortIndex port) const {
  const std::int32_t k = params_.k;
  const std::int32_t dim = port / (k - 1);
  const std::int32_t idx = port % (k - 1);
  const std::int32_t own = coord(r, dim);
  const std::int32_t v = idx < own ? idx : idx + 1;
  std::int32_t stride = 1;
  for (std::int32_t d = 0; d < dim; ++d) stride *= k;
  return r + (v - own) * stride;
}

PortIndex FlattenedButterflyTopology::peer_port(RouterId r,
                                                PortIndex port) const {
  const std::int32_t k = params_.k;
  const std::int32_t dim = port / (k - 1);
  return channel_to(peer(r, port), dim, coord(r, dim));
}

PortIndex FlattenedButterflyTopology::minimal_output(RouterId r,
                                                     NodeId dest) const {
  const RouterId dr = router_of_node(dest);
  if (dr == r) return forward_ports() + (dest % params_.c);
  return route_toward(r, dr);
}

PortIndex FlattenedButterflyTopology::route_toward(RouterId r,
                                                   RouterId target) const {
  if (r == target) return kInvalidPort;
  for (std::int32_t dim = 0; dim < params_.n; ++dim) {
    const std::int32_t cr = coord(r, dim);
    const std::int32_t ct = coord(target, dim);
    if (cr != ct) return channel_to(r, dim, ct);
  }
  return kInvalidPort;
}

std::int32_t FlattenedButterflyTopology::min_channel(RouterId r,
                                                     NodeId dst) const {
  const RouterId dr = router_of_node(dst);
  return dr == r ? -1 : dr;  // candidate space is router ids
}

bool FlattenedButterflyTopology::make_candidate(RouterId r, RouterId inter,
                                                NonminCandidate& out) const {
  out.channel = inter;
  out.inter = inter;
  out.via_port = -1;  // phase 0 ends on arrival at the intermediate
  out.first_hop = route_toward(r, inter);
  return candidate_usable(r, out);
}

bool FlattenedButterflyTopology::sample_nonmin(Rng& rng, RouterId r,
                                               NodeId dst,
                                               bool own_router_only,
                                               NonminCandidate& out) const {
  (void)own_router_only;
  const RouterId dr = router_of_node(dst);
  const auto inter = static_cast<RouterId>(
      rng.next_below(static_cast<std::uint64_t>(routers())));
  if (inter == r || inter == dr) return false;
  return make_candidate(r, inter, out);
}

bool FlattenedButterflyTopology::nonmin_candidate_at(
    RouterId r, NodeId dst, bool own_router_only, std::int32_t index,
    NonminCandidate& out) const {
  (void)own_router_only;
  const RouterId dr = router_of_node(dst);
  if (index == r || index == dr) return false;  // not a nonminimal option
  return make_candidate(r, index, out);
}

bool FlattenedButterflyTopology::sample_valiant(Rng& rng, RouterId r,
                                                NodeId dst,
                                                NonminCandidate& out) const {
  const RouterId dr = router_of_node(dst);
  for (std::int32_t attempt = 0; attempt < 8; ++attempt) {
    const auto inter = static_cast<RouterId>(
        rng.next_below(static_cast<std::uint64_t>(routers())));
    // With faults attached a drawn candidate may be unusable; keep trying
    // within the attempt budget (draw-for-draw identical when healthy).
    if (inter != r && inter != dr && make_candidate(r, inter, out)) {
      return true;
    }
  }
  return false;
}

PortIndex FlattenedButterflyTopology::fallback_output(RouterId r,
                                                      RouterId target,
                                                      PortIndex avoid) const {
  const std::int32_t k = params_.k;
  // Resolve a different dimension first (still minimal distance overall),
  // then detour to another coordinate of the blocked dimension — that row
  // router keeps a direct channel to the wanted coordinate.
  for (std::int32_t dim = 0; dim < params_.n; ++dim) {
    const std::int32_t ct = coord(target, dim);
    if (coord(r, dim) == ct) continue;
    const PortIndex p = channel_to(r, dim, ct);
    if (p != avoid && link_up(r, p)) return p;
  }
  const std::int32_t dead_dim = avoid / (k - 1);
  for (std::int32_t i = 0; i < k - 1; ++i) {
    const PortIndex p = dead_dim * (k - 1) + i;
    if (p != avoid && link_up(r, p)) return p;
  }
  for (PortIndex p = 0; p < forward_ports(); ++p) {
    if (p != avoid && link_up(r, p)) return p;
  }
  return kInvalidPort;
}

bool FlattenedButterflyTopology::min_link_probe(RouterId r, NodeId dst,
                                                RemoteProbe& out) const {
  // One-hop-lookahead: the next router's own minimal output toward `dst`
  // (an ejection port there reads as zero occupancy).
  const PortIndex first = minimal_output(r, dst);
  if (first >= forward_ports()) return false;
  const RouterId next = peer(r, first);
  out = RemoteProbe{next, minimal_output(next, dst)};
  return true;
}

bool FlattenedButterflyTopology::nonmin_remote_probe(
    RouterId r, const NonminCandidate& cand, RemoteProbe& out) const {
  // One-hop-lookahead on the candidate path: the next router's output
  // continuing toward the intermediate (toward the final destination when
  // the intermediate is already the next router).
  if (cand.first_hop < 0 || cand.first_hop >= forward_ports()) return false;
  const RouterId next = peer(r, cand.first_hop);
  const PortIndex cont = next == cand.inter
                             ? kInvalidPort
                             : route_toward(next, cand.inter);
  if (cont == kInvalidPort) return false;
  out = RemoteProbe{next, cont};
  return true;
}

TrafficTopologyInfo FlattenedButterflyTopology::traffic_info() const {
  TrafficTopologyInfo info;
  info.nodes = nodes();
  info.groups = routers();
  info.nodes_per_group = params_.c;
  const std::int32_t k = params_.k;
  // ADV+o advances the dimension-0 coordinate: ADV+1 is the row adversary
  // of the Section VI-D bench (all nodes of router R target R+1 in dim 0).
  info.adv_group = [k](std::int32_t r, std::int32_t offset) {
    const std::int32_t c0 = r % k;
    return r - c0 + ((c0 + offset) % k + k) % k;
  };
  return info;
}

}  // namespace dfsim
