// Schema-versioned experiment results ("dfsim-results/v1"): the document
// every registered experiment emits, with JSON and CSV serializations and
// the canonical-config hash that ties a result file to the exact SimParams
// that produced it. Missing/invalid measurements are NaN in memory and
// `null` in JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "report/json.hpp"
#include "sim/config.hpp"

namespace dfsim::report {

inline constexpr const char* kSchemaVersion = "dfsim-results/v1";

/// Past this injection backlog per node the run is saturated and delivered-
/// packet latency is no longer meaningful (the paper cuts its curves there);
/// renderers print "sat" for latency cells whose backlog exceeds it.
inline constexpr double kSaturationBacklog = 4.0;

// ---------------------------------------------------------------------------
// Document model

struct Header {
  std::string schema = kSchemaVersion;
  std::string experiment;  // registry name, e.g. "fig5b"
  std::string title;       // "Figure 5b — adversarial traffic (ADV+1)"
  std::string paper_ref;   // "Fig. 5b", "Sec. VI-B", ...
  std::string topology;    // "dragonfly" | "fbfly" | "torus"
  std::string scale;       // preset name the run used
  std::int32_t nodes = 0;
  std::string config_hash;  // hex FNV-1a of canonical_params_text(base)
  std::string git_rev;      // short rev, or "" for goldens
  std::uint64_t seed = 1;
  Cycle warmup = 0;
  Cycle measure = 0;
  std::int32_t reps = 1;
};

/// One result table. Grid panels hold steady-state metrics over an x-axis
/// (load, threshold, %UN, pattern name, ...) x a series line-up (routing
/// mechanisms, variants). Transient panels hold per-cycle timelines.
/// Info panels are preformatted string tables (Table I).
struct Panel {
  enum class Kind : std::uint8_t { kGrid, kTransient, kInfo };

  std::string name;
  Kind kind = Kind::kGrid;

  // Grid / transient layout.
  std::string x_label;                 // "load", "cycle", "pattern", ...
  std::vector<std::string> x_labels;   // formatted tick labels
  std::vector<double> x_values;        // numeric ticks; NaN for categorical
  std::vector<std::string> series;
  /// metric name -> x.size() rows of series.size() values (NaN = missing).
  std::vector<std::pair<std::string, std::vector<std::vector<double>>>>
      metrics;

  // Info layout.
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> cells;

  /// Free-form commentary computed at run time (e.g. a valid-threshold
  /// range); rendered verbatim under the panel.
  std::vector<std::string> notes;

  [[nodiscard]] const std::vector<std::vector<double>>* metric(
      const std::string& name) const;
  /// Cell lookup by x tick label and series name; NaN when absent.
  [[nodiscard]] double value(const std::string& metric_name,
                             const std::string& x_tick,
                             const std::string& series_name) const;
  [[nodiscard]] std::size_t series_index(const std::string& series_name) const;
  [[nodiscard]] std::size_t x_index(const std::string& x_tick) const;
  /// True when the cell's run is past kSaturationBacklog — its latency is
  /// not meaningful (renderers print "sat", golden gates exempt it).
  [[nodiscard]] bool saturated_cell(std::size_t xi, std::size_t si) const;
};

struct ResultsDoc {
  Header header;
  std::vector<Panel> panels;

  [[nodiscard]] const Panel* panel(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Serialization

[[nodiscard]] Json to_json(const ResultsDoc& doc);
/// Throws std::runtime_error on schema mismatch or malformed documents.
[[nodiscard]] ResultsDoc doc_from_json(const Json& json);

/// Long-format CSV: panel,metric,x,series,value — one row per cell, the
/// flat shape spreadsheet/pandas consumers want.
void write_csv(const ResultsDoc& doc, std::ostream& os);

// ---------------------------------------------------------------------------
// Canonical config text + hash

/// Every SimParams knob as "key = value" lines, one per line, in a fixed
/// order, using the exact key names sim/config_io.cpp accepts (the text is
/// itself a loadable INI overlay). Appending new params at the end keeps
/// existing hashes stable only if the new field keeps its default — any
/// behavioral config change is *supposed* to change the hash.
[[nodiscard]] std::string canonical_params_text(const SimParams& params);

/// 64-bit FNV-1a over `text`, as 16 lowercase hex chars.
[[nodiscard]] std::string fnv1a_hex(const std::string& text);

[[nodiscard]] inline std::string config_hash(const SimParams& params) {
  return fnv1a_hex(canonical_params_text(params));
}

/// Short git revision of `HEAD` in the current working directory, or
/// "unknown" when git is unavailable.
[[nodiscard]] std::string current_git_rev();

}  // namespace dfsim::report
