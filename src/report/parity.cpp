#include "report/parity.hpp"

#include <cmath>
#include <limits>

#include "report/runner.hpp"

namespace dfsim::report {

namespace {

GateOutcome outcome(const ResultsDoc& doc, const std::string& gate,
                    bool pass, const std::string& detail) {
  return GateOutcome{doc.header.experiment, gate,
                     pass ? GateStatus::kPass : GateStatus::kFail, detail};
}

GateOutcome skip(const ResultsDoc& doc, const std::string& gate,
                 const std::string& detail) {
  return GateOutcome{doc.header.experiment, gate, GateStatus::kSkip, detail};
}

/// True when the panel carries every named series; a custom --routings
/// line-up that drops one SKIPs the gates needing it instead of failing.
bool has_series(const Panel& panel,
                std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (panel.series_index(name) >= panel.series.size()) return false;
  }
  return true;
}

/// Latency cells past saturation are not meaningful.
bool saturated(const Panel& panel, std::size_t xi, std::size_t si) {
  return panel.saturated_cell(xi, si);
}

double cell(const Panel& panel, const std::string& metric, std::size_t xi,
            std::size_t si) {
  const auto* rows = panel.metric(metric);
  if (!rows || xi >= rows->size() || si >= (*rows)[xi].size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return (*rows)[xi][si];
}

/// Mean misrouted share of packets born in cycles [0, horizon) after the
/// traffic switch — the adaptation-speed statistic: counter triggers react
/// within cycles, credit triggers only once the minimal queues fill.
double early_misroute_avg(const Panel& panel, const std::string& series,
                          double horizon) {
  const std::size_t si = panel.series_index(series);
  const auto* rows = panel.metric("misrouted_pct");
  if (si >= panel.series.size() || !rows) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double sum = 0.0;
  int count = 0;
  for (std::size_t xi = 0; xi < rows->size(); ++xi) {
    if (panel.x_values[xi] < 0 || panel.x_values[xi] >= horizon) continue;
    if (std::isfinite((*rows)[xi][si])) {
      sum += (*rows)[xi][si];
      ++count;
    }
  }
  return count > 0 ? sum / count : std::numeric_limits<double>::quiet_NaN();
}

// -------------------------------------------------------------------------
// Trend gates per experiment

void fig5a_gates(const ResultsDoc& doc, std::vector<GateOutcome>& out) {
  const Panel* panel = doc.panel("UN");
  if (!panel || panel->x_labels.empty()) {
    out.push_back(skip(doc, "un-trends", "panel 'UN' missing or empty"));
    return;
  }
  const std::size_t min_i = panel->series_index("MIN");
  const std::size_t base_i = panel->series_index("Base");
  if (min_i >= panel->series.size() || base_i >= panel->series.size()) {
    out.push_back(skip(doc, "un-trends", "MIN/Base series missing"));
    return;
  }
  // No false triggers: at the lowest load Base must ride MIN's latency.
  const double min_lat = cell(*panel, "latency_avg", 0, min_i);
  const double base_lat = cell(*panel, "latency_avg", 0, base_i);
  out.push_back(outcome(
      doc, "base-rides-min-at-low-load", base_lat <= 1.20 * min_lat,
      "Base " + format_fixed(base_lat, 1) + " vs MIN " +
          format_fixed(min_lat, 1) + " cycles at load " + panel->x_labels[0]));
  // Adaptive mechanisms must not lose meaningful UN throughput vs MIN.
  const std::size_t top = panel->x_labels.size() - 1;
  const double min_thpt = cell(*panel, "throughput", top, min_i);
  if (!has_series(*panel, {"Base", "ECtN"})) {
    out.push_back(skip(doc, "adaptive-keeps-un-throughput",
                       "Base/ECtN not in this line-up"));
    return;
  }
  bool ok = true;
  std::string detail;
  for (const char* mech : {"Base", "ECtN"}) {
    const double t =
        cell(*panel, "throughput", top, panel->series_index(mech));
    if (!(t >= 0.85 * min_thpt)) ok = false;
    detail += std::string(mech) + " " + format_fixed(t, 3) + " ";
  }
  out.push_back(outcome(doc, "adaptive-keeps-un-throughput", ok,
                        detail + "vs MIN " + format_fixed(min_thpt, 3) +
                            " at load " + panel->x_labels[top]));
}

void fig5b_gates(const ResultsDoc& doc, std::vector<GateOutcome>& out) {
  const Panel* panel = doc.panel("ADV+1");
  if (!panel || panel->x_labels.empty()) {
    out.push_back(skip(doc, "adv-trends", "panel 'ADV+1' missing or empty"));
    return;
  }
  const std::size_t top = panel->x_labels.size() - 1;
  const std::size_t min_i = panel->series_index("MIN");
  const std::size_t val_i = panel->series_index("VAL");
  if (min_i >= panel->series.size() || val_i >= panel->series.size()) {
    out.push_back(skip(doc, "adv-trends", "MIN/VAL series missing"));
    return;
  }
  // MIN collapses on the single inter-group link: far below VAL.
  const double min_thpt = cell(*panel, "throughput", top, min_i);
  const double val_thpt = cell(*panel, "throughput", top, val_i);
  out.push_back(outcome(doc, "min-collapses", min_thpt < 0.5 * val_thpt,
                        "MIN " + format_fixed(min_thpt, 3) + " vs VAL " +
                            format_fixed(val_thpt, 3) + " at load " +
                            panel->x_labels[top]));
  // VAL never exceeds its 0.5 phits/node/cycle Valiant bound.
  bool val_bounded = true;
  double val_max = 0.0;
  for (std::size_t xi = 0; xi < panel->x_labels.size(); ++xi) {
    const double t = cell(*panel, "throughput", xi, val_i);
    val_max = std::max(val_max, t);
    if (t > 0.55) val_bounded = false;
  }
  out.push_back(outcome(doc, "val-within-0.5-bound", val_bounded,
                        "max VAL throughput " + format_fixed(val_max, 3)));
  // The adaptive mechanisms recover (near-)Valiant bandwidth.
  if (has_series(*panel, {"Base", "Hybrid", "ECtN"})) {
    bool adaptive_ok = true;
    std::string detail;
    for (const char* mech : {"Base", "Hybrid", "ECtN"}) {
      const double t =
          cell(*panel, "throughput", top, panel->series_index(mech));
      if (!(t >= 2.0 * min_thpt)) adaptive_ok = false;
      detail += std::string(mech) + " " + format_fixed(t, 3) + " ";
    }
    out.push_back(outcome(doc, "counters-recover-bandwidth", adaptive_ok,
                          detail + "vs MIN " + format_fixed(min_thpt, 3)));
  } else {
    out.push_back(skip(doc, "counters-recover-bandwidth",
                       "Base/Hybrid/ECtN not in this line-up"));
  }
  // ECtN's latency win over the credit-triggered mechanisms at mid load.
  if (!has_series(*panel, {"ECtN", "PB", "OLM"})) {
    out.push_back(
        skip(doc, "ectn-latency-win", "ECtN/PB/OLM not in this line-up"));
    return;
  }
  // At tiny scale ECtN's edge over PB is fractions of a percent (the clear
  // paper-scale win is vs the in-transit credit trigger OLM), so the gate
  // demands a real win over OLM and near-parity (10%) with PB — it trips
  // on regressions that cost ECtN its standing, not on noise.
  const std::size_t mid = panel->x_labels.size() / 2;
  const std::size_t ectn_i = panel->series_index("ECtN");
  const std::size_t pb_i = panel->series_index("PB");
  const std::size_t olm_i = panel->series_index("OLM");
  const double ectn_lat = cell(*panel, "latency_avg", mid, ectn_i);
  const double pb_lat = cell(*panel, "latency_avg", mid, pb_i);
  const double olm_lat = cell(*panel, "latency_avg", mid, olm_i);
  bool win = std::isfinite(ectn_lat) && !saturated(*panel, mid, ectn_i);
  if (!saturated(*panel, mid, olm_i) && !(ectn_lat <= 1.02 * olm_lat)) {
    win = false;
  }
  if (!saturated(*panel, mid, pb_i) && !(ectn_lat <= 1.10 * pb_lat)) {
    win = false;
  }
  out.push_back(outcome(doc, "ectn-latency-win", win,
                        "ECtN " + format_fixed(ectn_lat, 1) + " vs PB " +
                            format_fixed(pb_lat, 1) + " vs OLM " +
                            format_fixed(olm_lat, 1) + " cycles at load " +
                            panel->x_labels[mid]));
}

void fig7_gates(const ResultsDoc& doc, std::vector<GateOutcome>& out) {
  if (doc.panels.empty() ||
      doc.panels[0].kind != Panel::Kind::kTransient) {
    out.push_back(skip(doc, "adaptation-speed", "transient panel missing"));
    return;
  }
  const Panel& panel = doc.panels[0];
  for (const char* series : {"Base", "PB", "OLM"}) {
    if (panel.series_index(series) >= panel.series.size()) {
      out.push_back(skip(doc, "adaptation-speed",
                         std::string(series) + " series missing"));
      return;
    }
  }
  // Mean misrouted share of the first 50 post-switch birth cycles: the
  // counter trigger reacts within cycles while the credit triggers wait
  // for the minimal-path queues to fill (paper: ~10 vs ~100 cycles).
  const double horizon = 50.0;
  const double base_a = early_misroute_avg(panel, "Base", horizon);
  const double pb_a = early_misroute_avg(panel, "PB", horizon);
  const double olm_a = early_misroute_avg(panel, "OLM", horizon);
  const std::string detail = "mean misrouted % over cycles [0,50): Base " +
                             format_fixed(base_a, 1) + ", PB " +
                             format_fixed(pb_a, 1) + ", OLM " +
                             format_fixed(olm_a, 1);
  out.push_back(outcome(doc, "counter-adapts-before-credit",
                        std::isfinite(base_a) && base_a >= 2.0 * pb_a &&
                            base_a >= 2.0 * olm_a,
                        detail));
  out.push_back(outcome(doc, "counter-adapts-immediately",
                        std::isfinite(base_a) && base_a >= 5.0,
                        detail + " (gate: Base >= 5%)"));
}

void fault_degradation_gates(const ResultsDoc& doc,
                             std::vector<GateOutcome>& out) {
  if (doc.panels.empty() || doc.panels[0].kind != Panel::Kind::kGrid ||
      doc.panels[0].x_labels.empty()) {
    out.push_back(skip(doc, "fault-invariants", "grid panel missing"));
    return;
  }
  const Panel& panel = doc.panels[0];

  // Hard invariants, every cell: no packet ever departed onto a dead link,
  // and generated = delivered + dropped + undeliverable + in-flight exactly.
  bool invariants_ok = true;
  std::string detail;
  for (const char* metric : {"dead_traversals", "conservation_error"}) {
    double worst = 0.0;
    for (std::size_t xi = 0; xi < panel.x_labels.size(); ++xi) {
      for (std::size_t si = 0; si < panel.series.size(); ++si) {
        const double v = cell(panel, metric, xi, si);
        if (!(v == 0.0)) {
          invariants_ok = false;
          worst = std::max(worst, std::isfinite(v) ? std::fabs(v) : 1.0);
        }
      }
    }
    detail += std::string(metric) + " max " + format_fixed(worst, 1) + " ";
  }
  out.push_back(outcome(doc, "fault-invariants", invariants_ok,
                        detail + "(both must be exactly 0 in every cell)"));

  // No cell may have hit the no-progress watchdog.
  bool no_timeout = true;
  for (std::size_t xi = 0; xi < panel.x_labels.size(); ++xi) {
    for (std::size_t si = 0; si < panel.series.size(); ++si) {
      if (cell(panel, "timed_out", xi, si) != 0.0) no_timeout = false;
    }
  }
  out.push_back(outcome(doc, "no-watchdog-timeouts", no_timeout,
                        no_timeout ? "all cells completed"
                                   : "some cells hit the watchdog"));

  if (!has_series(panel, {"MIN", "Base"})) {
    out.push_back(
        skip(doc, "adaptive-degrades-gracefully", "MIN/Base series missing"));
    return;
  }
  const std::size_t top = panel.x_labels.size() - 1;
  const std::size_t min_i = panel.series_index("MIN");
  const std::size_t base_i = panel.series_index("Base");
  const double min_healthy = cell(panel, "throughput", 0, min_i);
  const double min_faulty = cell(panel, "throughput", top, min_i);
  const double base_faulty = cell(panel, "throughput", top, base_i);
  // Graceful degradation: at the top failure fraction the adaptive
  // mechanism out-delivers MIN, and MIN itself has visibly lost capacity
  // vs its healthy baseline. The throughput margin is deliberately small —
  // the fault-aware fallback keeps MIN connected too, so the headline is
  // ordering, not collapse; the gate trips on a broken overlay (blackholed
  // adaptive traffic, or faults silently not applied), not on noise.
  // Observed at tiny/seed 1: Base 0.235 vs MIN 0.224 (1.05x).
  out.push_back(outcome(
      doc, "adaptive-degrades-gracefully", base_faulty >= 1.02 * min_faulty,
      "Base " + format_fixed(base_faulty, 3) + " vs MIN " +
          format_fixed(min_faulty, 3) + " at fail_fraction " +
          panel.x_labels[top]));
  out.push_back(outcome(doc, "min-loses-capacity",
                        min_faulty <= 0.95 * min_healthy,
                        "MIN " + format_fixed(min_faulty, 3) + " faulty vs " +
                            format_fixed(min_healthy, 3) + " healthy"));
  // The counter trigger visibly routes around the holes (MIN, pinned
  // minimal, reports 0 misrouted by construction). Observed: Base 1.5%.
  const double base_mis = cell(panel, "misrouted_pct", top, base_i);
  out.push_back(outcome(doc, "counters-misroute-around-faults",
                        base_mis >= 0.5,
                        "Base misrouted " + format_fixed(base_mis, 1) +
                            "% at fail_fraction " + panel.x_labels[top]));
}

void fault_transient_gates(const ResultsDoc& doc,
                           std::vector<GateOutcome>& out) {
  if (doc.panels.empty() || doc.panels[0].kind != Panel::Kind::kTransient) {
    out.push_back(skip(doc, "fault-onset-response", "transient panel missing"));
    return;
  }
  const Panel& panel = doc.panels[0];
  if (panel.series_index("Base") >= panel.series.size()) {
    out.push_back(skip(doc, "fault-onset-response", "Base series missing"));
    return;
  }
  // Mean of a metric over pre-onset (x < 0) or early post-onset
  // (0 <= x < 100) birth cycles for one series. An exact 0 in a latency
  // bucket means "no deliveries born that cycle", not zero latency, so
  // latency averages skip zeros; misroute shares keep them.
  const auto window_avg = [&panel](const char* metric, const char* series,
                                   bool post, bool skip_zeros) {
    const std::size_t si = panel.series_index(series);
    const auto* rows = panel.metric(metric);
    double sum = 0.0;
    int n = 0;
    if (rows && si < panel.series.size()) {
      for (std::size_t xi = 0; xi < rows->size(); ++xi) {
        const double x = panel.x_values[xi];
        if (post ? (x < 0 || x >= 100) : (x >= 0)) continue;
        const double v = (*rows)[xi][si];
        if (!std::isfinite(v) || (skip_zeros && v == 0.0)) continue;
        sum += v;
        ++n;
      }
    }
    return n > 0 ? sum / n : std::numeric_limits<double>::quiet_NaN();
  };

  // Primary signal: losing a quarter of the global links under steady load
  // forces detours and queueing on the survivors, so the latency of
  // post-onset births must sit well above the pre-onset baseline.
  // Observed at tiny/seed 1: Base ~114 vs ~79 cycles (1.44x).
  const double lat_pre = window_avg("latency_avg", "Base", false, true);
  const double lat_post = window_avg("latency_avg", "Base", true, true);
  out.push_back(outcome(
      doc, "fault-onset-latency-response",
      std::isfinite(lat_pre) && std::isfinite(lat_post) &&
          lat_post >= 1.15 * lat_pre,
      "Base mean latency pre-onset " + format_fixed(lat_pre, 1) +
          ", post-onset [0,100) " + format_fixed(lat_post, 1) +
          " cycles (gate: post >= 1.15x pre)"));

  // Secondary: the counter trigger starts misrouting once the fault
  // redistributes contention. Observed: ~2.9% post vs ~0.7% pre.
  const double mis_pre = window_avg("misrouted_pct", "Base", false, false);
  const double mis_post = window_avg("misrouted_pct", "Base", true, false);
  out.push_back(outcome(
      doc, "fault-onset-misroute-response",
      std::isfinite(mis_post) &&
          mis_post >= (std::isfinite(mis_pre) ? mis_pre : 0.0) + 1.0,
      "Base mean misrouted % pre-onset " + format_fixed(mis_pre, 1) +
          ", post-onset [0,100) " + format_fixed(mis_post, 1) +
          " (gate: post >= pre + 1)"));
}

void notification_gates(const ResultsDoc& doc,
                        std::vector<GateOutcome>& out) {
  // Panel 0: UN->ADV+1 transient (adaptation speed); panel 1: steady ADV+1
  // load grid (sustained throughput). Registry defaults produce both; a
  // hand-rolled line-up that drops a reference series SKIPs its gate.
  if (doc.panels.empty() || doc.panels[0].kind != Panel::Kind::kTransient) {
    out.push_back(skip(doc, "notify-adaptation", "transient panel missing"));
  } else {
    const Panel& panel = doc.panels[0];
    if (!has_series(panel, {"Base", "ARN"})) {
      out.push_back(skip(doc, "notify-adaptation", "Base/ARN series missing"));
    } else {
      // Notifications must engage within a bounded window of the counter
      // trigger: the first 50 post-switch birth cycles. Observed at
      // tiny/seed 1: ARN ~19% vs Base ~13% (notifications raised during
      // the UN phase give ARN a head start); gate at half the counter
      // trigger's response plus an absolute floor.
      const double arn_a = early_misroute_avg(panel, "ARN", 50.0);
      const double base_a = early_misroute_avg(panel, "Base", 50.0);
      out.push_back(outcome(
          doc, "notify-adapts-with-counter",
          std::isfinite(arn_a) && std::isfinite(base_a) &&
              arn_a >= 0.5 * base_a && arn_a >= 5.0,
          "mean misrouted % over cycles [0,50): ARN " +
              format_fixed(arn_a, 1) + " vs Base " + format_fixed(base_a, 1) +
              " (gate: ARN >= 0.5x Base and >= 5%)"));
    }
    if (!has_series(panel, {"ARN", "ARN+thr"})) {
      out.push_back(
          skip(doc, "throttle-suppresses-misroutes", "ARN+thr missing"));
    } else {
      // The throttle variant refuses exactly the injections ARN would
      // misroute, so its misrouted share must collapse relative to ARN's
      // across the whole post-switch window. Observed: ~1% vs ~40%.
      const double arn_m = early_misroute_avg(panel, "ARN", 250.0);
      const double thr_m = early_misroute_avg(panel, "ARN+thr", 250.0);
      out.push_back(outcome(
          doc, "throttle-suppresses-misroutes",
          std::isfinite(arn_m) && std::isfinite(thr_m) &&
              thr_m <= 0.5 * arn_m,
          "mean misrouted % over cycles [0,250): ARN+thr " +
              format_fixed(thr_m, 1) + " vs ARN " + format_fixed(arn_m, 1) +
              " (gate: ARN+thr <= 0.5x ARN)"));
    }
  }

  if (doc.panels.size() < 2 || doc.panels[1].kind != Panel::Kind::kGrid ||
      doc.panels[1].x_labels.empty()) {
    out.push_back(skip(doc, "notify-sustains-adv", "steady panel missing"));
    return;
  }
  const Panel& panel = doc.panels[1];
  if (!has_series(panel, {"MIN", "VAL", "ARN"})) {
    out.push_back(skip(doc, "notify-sustains-adv", "MIN/VAL/ARN missing"));
    return;
  }
  // Sustained ADV+1 throughput at the top load tick: ARN must stay within
  // the Valiant bound's ballpark and clear MIN's collapse decisively.
  // Observed at tiny/seed 1 (load 0.4): ARN 0.370, VAL 0.395, MIN 0.125.
  const std::size_t top = panel.x_labels.size() - 1;
  const double arn_t = cell(panel, "throughput", top, panel.series_index("ARN"));
  const double val_t = cell(panel, "throughput", top, panel.series_index("VAL"));
  const double min_t = cell(panel, "throughput", top, panel.series_index("MIN"));
  out.push_back(outcome(
      doc, "notify-sustains-adv",
      std::isfinite(arn_t) && arn_t >= 0.8 * val_t && arn_t >= 2.0 * min_t,
      "top-load accepted: ARN " + format_fixed(arn_t, 3) + ", VAL " +
          format_fixed(val_t, 3) + ", MIN " + format_fixed(min_t, 3) +
          " (gate: ARN >= 0.8x VAL and >= 2x MIN)"));
}

void congestion_map_gates(const ResultsDoc& doc,
                          std::vector<GateOutcome>& out) {
  const Panel* panel = doc.panel("mechanism summary");
  if (!panel || panel->x_labels.empty()) {
    out.push_back(
        skip(doc, "min-concentrates-backlog", "summary panel missing"));
    return;
  }
  // This panel is transposed relative to the figure panels: the x axis
  // holds the mechanism line-up and there is a single "network" series.
  const auto col = [&panel](const char* mech) {
    for (std::size_t xi = 0; xi < panel->x_labels.size(); ++xi) {
      if (panel->x_labels[xi] == mech) return xi;
    }
    return panel->x_labels.size();
  };
  const std::size_t min_x = col("MIN");
  const std::size_t base_x = col("Base");
  if (min_x >= panel->x_labels.size() || base_x >= panel->x_labels.size()) {
    out.push_back(
        skip(doc, "min-concentrates-backlog", "MIN/Base columns missing"));
    return;
  }
  // Under ADV+1 every group queues behind its single direct channel, so
  // MIN's worst per-group backlog must dwarf the adaptive mechanisms'.
  // Observed at tiny/seed 1: MIN 479 vs Base 53 phits (9x); the gate's 2x
  // margin trips when the sink or the adversarial funnel breaks, not on
  // noise.
  const double min_peak = cell(*panel, "peak_group_occupancy", min_x, 0);
  const double base_peak = cell(*panel, "peak_group_occupancy", base_x, 0);
  out.push_back(outcome(doc, "min-concentrates-backlog",
                        min_peak >= 2.0 * base_peak,
                        "peak group occupancy MIN " +
                            format_fixed(min_peak, 0) + " vs Base " +
                            format_fixed(base_peak, 0) +
                            " phits (gate: MIN >= 2x Base)"));
  // Cross-check the sink against routing semantics: MIN never records a
  // misroute decision by construction, the counter trigger must record
  // plenty.
  const double min_mis = cell(*panel, "misroute_decisions", min_x, 0);
  const double base_mis = cell(*panel, "misroute_decisions", base_x, 0);
  out.push_back(outcome(doc, "sink-tracks-misroute-decisions",
                        min_mis == 0.0 && base_mis > 0.0,
                        "MIN " + format_fixed(min_mis, 0) + " vs Base " +
                            format_fixed(base_mis, 0) +
                            " decisions (gate: MIN exactly 0, Base > 0)"));
}

}  // namespace

std::vector<GateOutcome> check_trend_gates(const ResultsDoc& doc) {
  std::vector<GateOutcome> out;
  if (doc.header.experiment == "fig5a") fig5a_gates(doc, out);
  if (doc.header.experiment == "fig5b") fig5b_gates(doc, out);
  if (doc.header.experiment == "fig7") fig7_gates(doc, out);
  if (doc.header.experiment == "fault_degradation") {
    fault_degradation_gates(doc, out);
  }
  if (doc.header.experiment == "fault_transient") {
    fault_transient_gates(doc, out);
  }
  if (doc.header.experiment == "notification_transient") {
    notification_gates(doc, out);
  }
  if (doc.header.experiment == "congestion_map") {
    congestion_map_gates(doc, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Golden comparison

std::vector<GateOutcome> check_against_golden(const ResultsDoc& doc,
                                              const ResultsDoc& golden,
                                              double rel_tol, double abs_tol) {
  std::vector<GateOutcome> out;
  const Header& a = doc.header;
  const Header& b = golden.header;
  if (a.experiment != b.experiment) {
    out.push_back(skip(doc, "golden", "golden is for '" + b.experiment + "'"));
    return out;
  }
  if (a.scale != b.scale || a.seed != b.seed || a.warmup != b.warmup ||
      a.measure != b.measure || a.reps != b.reps) {
    out.push_back(skip(doc, "golden",
                       "settings differ from golden (scale/seed/cycles) — "
                       "comparison skipped"));
    return out;
  }
  // A sharded run (engine_threads != 1) may gate against the serial golden
  // it approximates: its config_hash covers engine.threads, but the header
  // carries the hash of the same params with threads forced to 1.
  const bool serial_match = !a.config_hash_serial.empty() &&
                            a.config_hash_serial == b.config_hash;
  if (a.config_hash != b.config_hash && !serial_match) {
    out.push_back(outcome(
        doc, "golden-config", false,
        "config hash " + a.config_hash + " != golden " + b.config_hash +
            " at identical settings — regenerate goldens deliberately"));
    return out;
  }

  std::size_t compared = 0;
  std::size_t mismatches = 0;
  std::string first_mismatch;
  for (const Panel& gp : golden.panels) {
    const Panel* dp = doc.panel(gp.name);
    if (!dp || dp->kind != gp.kind) {
      ++mismatches;
      if (first_mismatch.empty()) {
        first_mismatch = "panel '" + gp.name + "' missing";
      }
      continue;
    }
    if (gp.kind == Panel::Kind::kInfo) continue;
    const double kind_mult = gp.kind == Panel::Kind::kTransient ? 2.0 : 1.0;
    for (const auto& [metric, grows] : gp.metrics) {
      const auto* drows = dp->metric(metric);
      if (!drows || drows->size() != grows.size()) {
        ++mismatches;
        if (first_mismatch.empty()) {
          first_mismatch = gp.name + "/" + metric + ": shape mismatch";
        }
        continue;
      }
      const bool is_latency = metric.rfind("latency", 0) == 0;
      for (std::size_t xi = 0; xi < grows.size(); ++xi) {
        if (grows[xi].size() != (*drows)[xi].size()) {
          ++mismatches;
          if (first_mismatch.empty()) {
            first_mismatch = gp.name + "/" + metric + ": row " +
                             std::to_string(xi) + " shape mismatch";
          }
          continue;
        }
        for (std::size_t si = 0; si < grows[xi].size(); ++si) {
          const double gv = grows[xi][si];
          const double dv = (*drows)[xi][si];
          // Latency past saturation is unstable by design; skip those
          // cells (the renderer prints "sat" for them too).
          if (is_latency &&
              (saturated(gp, xi, si) || saturated(*dp, xi, si))) {
            continue;
          }
          if (!std::isfinite(gv) && !std::isfinite(dv)) continue;
          ++compared;
          const bool pass =
              std::isfinite(gv) && std::isfinite(dv) &&
              std::fabs(dv - gv) <=
                  kind_mult * (abs_tol +
                               rel_tol * std::max(std::fabs(gv),
                                                  std::fabs(dv)));
          if (!pass) {
            ++mismatches;
            if (first_mismatch.empty()) {
              first_mismatch = gp.name + "/" + metric + "[" +
                               (xi < gp.x_labels.size() ? gp.x_labels[xi]
                                                        : std::to_string(xi)) +
                               "," +
                               (si < gp.series.size() ? gp.series[si]
                                                      : std::to_string(si)) +
                               "]: " + Json::number_to_string(dv) + " vs " +
                               Json::number_to_string(gv);
            }
          }
        }
      }
    }
  }
  out.push_back(outcome(doc, "golden-curves", mismatches == 0,
                        std::to_string(compared) + " cells compared, " +
                            std::to_string(mismatches) + " outside band" +
                            (first_mismatch.empty()
                                 ? ""
                                 : "; first: " + first_mismatch)));
  return out;
}

bool all_passed(const std::vector<GateOutcome>& outcomes) {
  for (const GateOutcome& o : outcomes) {
    if (o.status == GateStatus::kFail) return false;
  }
  return true;
}

std::string to_string(GateStatus status) {
  switch (status) {
    case GateStatus::kPass: return "PASS";
    case GateStatus::kFail: return "FAIL";
    case GateStatus::kSkip: return "SKIP";
  }
  return "?";
}

}  // namespace dfsim::report
