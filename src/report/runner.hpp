// Execution helpers for registered experiments: a RunContext carrying the
// scale preset + cycle budget + user overrides, and panel executors that
// fan (series x x-tick) steady grids through engine/sweep and transient
// series through engine/experiment, returning schema Panels with every
// SteadyResult metric captured.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "report/schema.hpp"
#include "sim/config.hpp"

namespace dfsim::report {

/// Everything a registered experiment needs to run: the scale's base
/// parameters (with any --config/--set/--traffic overrides already applied)
/// plus measurement windows and optional user overrides of the x-grid and
/// the mechanism line-up.
struct RunContext {
  SimParams base;
  std::string scale = "medium";
  SteadyOptions options;  // warmup/measure; reps = steady-state default
  int threads = 0;
  /// --loads override (steady load sweeps honor it; other x-axes ignore it).
  std::optional<std::vector<double>> loads;
  /// --routings override of a figure's mechanism line-up.
  std::optional<std::vector<RoutingKind>> lineup;
  /// --reps override; transients otherwise use their own (higher) defaults.
  std::optional<std::int32_t> reps;
  /// --with-ugal appends the UGAL-L/UGAL-G extra baselines to whatever
  /// line-up (default or --routings) is in effect.
  bool with_ugal = false;
  /// --traffic/--trace/--adv-offset were given: figure-mandated patterns
  /// must not clobber them (same contract as the old bench default_traffic).
  bool traffic_forced = false;
  bool adv_offset_forced = false;
  /// Explicit workload knobs (CLI flags) that experiment-specific defaults
  /// (e.g. ablation_workloads' shift/hotspot sizing) must not override.
  bool injection_forced = false;
  bool shift_offset_forced = false;
  bool hotspot_count_forced = false;
  bool hotspot_fraction_forced = false;

  [[nodiscard]] std::vector<double> loads_or(
      const std::vector<double>& defaults) const {
    return loads && !loads->empty() ? *loads : defaults;
  }
  [[nodiscard]] std::vector<RoutingKind> lineup_or(
      const std::vector<RoutingKind>& defaults) const {
    std::vector<RoutingKind> result =
        lineup && !lineup->empty() ? *lineup : defaults;
    if (with_ugal) {
      result.push_back(RoutingKind::kUgalL);
      result.push_back(RoutingKind::kUgalG);
    }
    return result;
  }
  [[nodiscard]] std::int32_t reps_or(std::int32_t fallback) const {
    return reps ? *reps : fallback;
  }
  /// Applies a figure's default pattern unless the user forced one.
  void default_traffic(TrafficKind kind, std::int32_t adv_offset = 1) {
    if (!traffic_forced) base.traffic.kind = kind;
    if (!adv_offset_forced) base.traffic.adv_offset = adv_offset;
  }
};

/// One line of a grid panel (a routing mechanism, a threshold variant, ...).
struct GridSeries {
  std::string label;
  std::function<void(SimParams&)> mutate;  // applied after the x mutation
};

/// One x tick of a grid panel.
struct GridTick {
  std::string label;
  double value = 0.0;  // NaN for categorical axes
  std::function<void(SimParams&)> mutate;
};

/// Runs the full (tick x series) matrix as one parallel sweep and captures
/// every SteadyResult metric.
[[nodiscard]] Panel run_grid_panel(const std::string& name,
                                   const std::string& x_label,
                                   const SimParams& base,
                                   const std::vector<GridTick>& ticks,
                                   const std::vector<GridSeries>& series,
                                   const SteadyOptions& options, int threads);

/// Mechanisms-by-loads grid, the shape most figures share.
[[nodiscard]] Panel run_load_grid(const std::string& name,
                                  const SimParams& base,
                                  const std::vector<RoutingKind>& mechanisms,
                                  const std::vector<double>& loads,
                                  const SteadyOptions& options, int threads);

/// Ticks helper: loads formatted at `precision` decimals.
[[nodiscard]] std::vector<GridTick> load_ticks(const std::vector<double>& loads,
                                               int precision = 2);
/// Series helper: one GridSeries per routing mechanism.
[[nodiscard]] std::vector<GridSeries> mechanism_series(
    const std::vector<RoutingKind>& mechanisms);

/// One line of a transient panel.
struct TransientSeries {
  std::string label;
  SimParams params;
};

/// Runs every series (parallel across series, reps inside run_transient) and
/// samples latency/misrouted_pct at `step`-spaced cycles with a `window`-
/// cycle smoothing window, as the paper's transient figures do.
[[nodiscard]] Panel run_transient_panel(
    const std::string& name, const std::vector<TransientSeries>& series,
    const TransientOptions& options, Cycle step, Cycle window);

/// Formats a double with fixed decimals (tick labels, notes).
[[nodiscard]] std::string format_fixed(double v, int precision);

/// Human label of a TrafficParams ("ADV+1", "HOTSPOT(n=8,f=0.50)+bursty").
[[nodiscard]] std::string traffic_label(const TrafficParams& traffic);

}  // namespace dfsim::report
