#include "report/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/ectn_state.hpp"
#include "engine/simulator.hpp"

namespace dfsim::report {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The adaptive line-up the paper compares everywhere.
std::vector<RoutingKind> adaptive_lineup() {
  return {RoutingKind::kPiggyback, RoutingKind::kOlm, RoutingKind::kCbBase,
          RoutingKind::kCbHybrid, RoutingKind::kCbEctn};
}

std::vector<RoutingKind> with_min_first(std::vector<RoutingKind> lineup) {
  lineup.insert(lineup.begin(), RoutingKind::kMin);
  return lineup;
}

std::vector<RoutingKind> with_val_first(std::vector<RoutingKind> lineup) {
  lineup.insert(lineup.begin(), RoutingKind::kValiant);
  return lineup;
}

/// Companion-topology shapes per --scale (the dragonfly presets do not
/// apply; these keep node counts in the same ballpark per scale step).
SimParams fbfly_base_for(const std::string& scale) {
  if (scale == "tiny") return presets::fbfly(3, 2, 2);
  if (scale == "small") return presets::fbfly(4, 2, 2);
  if (scale == "medium") return presets::fbfly(4, 2, 4);
  if (scale == "paper") return presets::fbfly(8, 2, 8);
  throw std::invalid_argument("unknown scale '" + scale + "'");
}

SimParams torus_base_for(const std::string& scale) {
  if (scale == "tiny") return presets::torus(4, 2, 2);
  if (scale == "small") return presets::torus(6, 2, 2);
  if (scale == "medium") return presets::torus(8, 2, 2);
  if (scale == "paper") return presets::torus(16, 2, 4);
  throw std::invalid_argument("unknown scale '" + scale + "'");
}

/// Re-bases a companion-topology context on the topology's own per-scale
/// preset. When the user already selected this topology themselves
/// (`--set=topology=fbfly;fbfly.k=5...` or a --config file), their fully
/// configured base is kept instead — rebasing would silently discard those
/// overrides.
RunContext rebase(RunContext ctx, SimParams base) {
  if (ctx.base.topology == base.topology) return ctx;
  base.seed = ctx.base.seed;
  ctx.base = std::move(base);
  return ctx;
}

/// The paper's Section VI-B analytic ECtN full-array estimate, per preset —
/// shared by table1 and ablation_ectn_overhead.
Panel ectn_estimate_panel(const std::string& name) {
  Panel panel;
  panel.name = name;
  panel.kind = Panel::Kind::kInfo;
  panel.columns = {"preset", "counters", "bits/counter", "phits/update",
                   "bandwidth_pct"};
  for (const char* preset : {"paper", "medium", "small", "tiny"}) {
    SimParams p = presets::by_name(preset);
    p.routing.kind = RoutingKind::kCbEctn;
    const EctnOverheadEstimate est = estimate_ectn_overhead(p);
    panel.cells.push_back({preset, std::to_string(est.counters),
                           std::to_string(est.bits_per_counter),
                           format_fixed(est.phits, 1),
                           format_fixed(100.0 * est.bandwidth_fraction, 1)});
  }
  panel.notes.push_back(
      "Section VI-B analytic full-array estimate; paper: ~6 phits per "
      "100-cycle update, ~6% of a local link at Table I scale.");
  return panel;
}

// -------------------------------------------------------------------------
// Steady-state figures

ResultsDoc run_fig5a(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kUniform);
  const auto mechanisms = ctx.lineup_or(with_min_first(adaptive_lineup()));
  const auto loads =
      ctx.loads_or({0.05, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  ResultsDoc doc;
  doc.panels.push_back(run_load_grid("UN", ctx.base, mechanisms, loads,
                                     ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_fig5b(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kAdversarial, 1);
  // MIN rides along (the old bench dropped it): its collapse on the single
  // inter-group link is one of the paper-parity gates.
  const auto mechanisms =
      ctx.lineup_or(with_min_first(with_val_first(adaptive_lineup())));
  const auto loads = ctx.loads_or({0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45});
  ResultsDoc doc;
  doc.panels.push_back(run_load_grid("ADV+1", ctx.base, mechanisms, loads,
                                     ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_fig5c(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kAdversarial, ctx.base.topo.h);
  const auto mechanisms = ctx.lineup_or(with_val_first(adaptive_lineup()));
  const auto loads = ctx.loads_or({0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45});
  ResultsDoc doc;
  doc.panels.push_back(run_load_grid("ADV+h", ctx.base, mechanisms, loads,
                                     ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_fig6(RunContext ctx) {
  const double load = 0.35;
  const auto mechanisms = ctx.lineup_or(adaptive_lineup());
  std::vector<GridTick> ticks;
  for (const double f : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    ticks.push_back(GridTick{format_fixed(100.0 * f, 0), 100.0 * f,
                             [f, load](SimParams& p) {
                               p.traffic.kind = TrafficKind::kMixed;
                               p.traffic.adv_offset = 1;
                               p.traffic.mixed_uniform_fraction = f;
                               p.traffic.load = load;
                             }});
  }
  ResultsDoc doc;
  doc.panels.push_back(run_grid_panel("mixed@0.35", "pct_UN", ctx.base, ticks,
                                      mechanism_series(mechanisms),
                                      ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

// -------------------------------------------------------------------------
// Transient figures

TransientOptions un_to_adv_switch(const RunContext& ctx, double load,
                                  Cycle pre, Cycle post, std::int32_t reps) {
  TransientOptions topt;
  topt.before = ctx.base.traffic;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after = ctx.base.traffic;
  topt.after.kind = TrafficKind::kAdversarial;
  topt.after.adv_offset = 1;
  topt.after.load = load;
  topt.warmup = ctx.options.warmup;
  topt.pre = pre;
  topt.post = post;
  topt.reps = reps;
  topt.heartbeat = ctx.options.heartbeat;
  return topt;
}

std::vector<TransientSeries> mechanism_transient_series(
    const RunContext& ctx, const std::vector<RoutingKind>& mechanisms) {
  std::vector<TransientSeries> series;
  for (const RoutingKind kind : mechanisms) {
    SimParams p = ctx.base;
    p.routing.kind = kind;
    series.push_back(TransientSeries{to_string(kind), p});
  }
  return series;
}

ResultsDoc run_fig7(RunContext ctx) {
  const std::int32_t reps = ctx.reps_or(5);
  const TransientOptions topt = un_to_adv_switch(ctx, 0.2, 50, 250, reps);
  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel(
      "UN->ADV+1@0.2",
      mechanism_transient_series(ctx, ctx.lineup_or(adaptive_lineup())), topt,
      /*step=*/10, /*window=*/10));
  fill_header(doc, ctx, reps);
  return doc;
}

ResultsDoc run_fig8(RunContext ctx) {
  // Large buffers (Figure 8 caption): 256/2048 phits per VC.
  ctx.base.router.buf_local_phits = 256;
  ctx.base.router.buf_global_phits = 2048;
  const std::int32_t reps = ctx.reps_or(3);
  const TransientOptions topt = un_to_adv_switch(ctx, 0.2, 50, 1600, reps);
  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel(
      "UN->ADV+1@0.2 large-buffers",
      mechanism_transient_series(ctx, ctx.lineup_or(adaptive_lineup())), topt,
      /*step=*/50, /*window=*/25));
  fill_header(doc, ctx, reps);
  return doc;
}

ResultsDoc run_fig9(RunContext ctx) {
  const std::int32_t reps = ctx.reps_or(5);
  const TransientOptions topt = un_to_adv_switch(ctx, 0.2, 0, 1600, reps);
  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel(
      "UN->ADV+1@0.2 long",
      mechanism_transient_series(
          ctx, ctx.lineup_or({RoutingKind::kPiggyback, RoutingKind::kCbEctn})),
      topt, /*step=*/25, /*window=*/25));
  fill_header(doc, ctx, reps);
  return doc;
}

// -------------------------------------------------------------------------
// Figure 10 + Section VI ablations

ResultsDoc run_fig10(RunContext ctx) {
  const std::int32_t nominal = ctx.base.routing.contention_threshold;
  std::vector<std::int32_t> un_ths;
  std::vector<std::int32_t> adv_ths;
  for (std::int32_t t = nominal - 3; t <= nominal + 1; ++t) {
    if (t >= 1) un_ths.push_back(t);
  }
  for (std::int32_t t = nominal; t <= nominal + 6; ++t) adv_ths.push_back(t);

  auto panel = [&](const std::string& name, TrafficKind traffic,
                   const std::vector<std::int32_t>& ths,
                   const std::vector<double>& loads, RoutingKind reference) {
    std::vector<GridSeries> series;
    for (const std::int32_t th : ths) {
      series.push_back(GridSeries{"th=" + std::to_string(th),
                                  [th, traffic](SimParams& p) {
                                    p.routing.kind = RoutingKind::kCbBase;
                                    p.routing.contention_threshold = th;
                                    p.traffic.kind = traffic;
                                    p.traffic.adv_offset = 1;
                                  }});
    }
    series.push_back(GridSeries{to_string(reference),
                                [reference, traffic](SimParams& p) {
                                  p.routing.kind = reference;
                                  p.traffic.kind = traffic;
                                  p.traffic.adv_offset = 1;
                                }});
    return run_grid_panel(name, "load", ctx.base, load_ticks(loads), series,
                          ctx.options, ctx.threads);
  };

  ResultsDoc doc;
  doc.panels.push_back(panel("UN", TrafficKind::kUniform, un_ths,
                             ctx.loads_or({0.1, 0.3, 0.5, 0.7, 0.8}),
                             RoutingKind::kMin));
  doc.panels.push_back(panel("ADV+1", TrafficKind::kAdversarial, adv_ths,
                             ctx.loads_or({0.1, 0.2, 0.3, 0.4, 0.45}),
                             RoutingKind::kValiant));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_radix_range(RunContext ctx) {
  const double un_load = 0.80;
  const double adv_load = 0.30;
  const double un_tolerance = 0.97;
  const double adv_tolerance = 1.15;

  // Radix scaling (Section VI-A's closing remark): at tiny reproduce scale
  // skip the 1056-node medium preset to keep the registry run quick.
  std::vector<std::pair<std::string, std::string>> radixes{
      {"tiny", "11-port (p2 a4 h2)"}, {"small", "14-port (p3 a6 h3)"}};
  if (ctx.scale != "tiny") {
    radixes.emplace_back("medium", "18-port (p4 a8 h4)");
  }
  const std::vector<std::int32_t> thresholds{2, 3, 4, 5, 6, 7, 8, 9, 10};

  ResultsDoc doc;
  for (const auto& [preset, label] : radixes) {
    SimParams base = presets::by_name(preset);
    base.seed = ctx.base.seed;

    std::vector<GridTick> ticks;
    for (const std::int32_t th : thresholds) {
      ticks.push_back(GridTick{std::to_string(th), static_cast<double>(th),
                               [th](SimParams& p) {
                                 p.routing.contention_threshold = th;
                               }});
    }
    const std::vector<GridSeries> series{
        {"UN", [un_load](SimParams& p) {
           p.routing.kind = RoutingKind::kCbBase;
           p.traffic.kind = TrafficKind::kUniform;
           p.traffic.load = un_load;
         }},
        {"ADV+1", [adv_load](SimParams& p) {
           p.routing.kind = RoutingKind::kCbBase;
           p.traffic.kind = TrafficKind::kAdversarial;
           p.traffic.adv_offset = 1;
           p.traffic.load = adv_load;
         }},
    };
    Panel panel = run_grid_panel(label, "threshold", base, ticks, series,
                                 ctx.options, ctx.threads);

    // MIN reference under UN at the probe load: the Section VI-A floor.
    SimParams ref = base;
    ref.routing.kind = RoutingKind::kMin;
    ref.traffic.kind = TrafficKind::kUniform;
    ref.traffic.load = un_load;
    const double min_throughput =
        run_steady(ref, ctx.options).throughput;

    const auto* throughput = panel.metric("throughput");
    const auto* latency = panel.metric("latency_avg");
    const auto* backlog = panel.metric("backlog_per_node");
    double best_adv_latency = std::numeric_limits<double>::infinity();
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      if ((*backlog)[ti][1] <= kSaturationBacklog) {
        best_adv_latency = std::min(best_adv_latency, (*latency)[ti][1]);
      }
    }
    std::int32_t lo = -1;
    std::int32_t hi = -1;
    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      const bool un_ok =
          (*throughput)[ti][0] >= un_tolerance * min_throughput;
      const bool adv_ok = (*backlog)[ti][1] <= kSaturationBacklog &&
                          (*latency)[ti][1] <=
                              adv_tolerance * best_adv_latency;
      if (un_ok && adv_ok) {
        if (lo < 0) lo = thresholds[ti];
        hi = thresholds[ti];
      }
    }
    panel.notes.push_back("MIN UN throughput reference: " +
                          format_fixed(min_throughput, 3));
    panel.notes.push_back(
        lo >= 0 ? "valid threshold range: [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "], width " +
                      std::to_string(hi - lo + 1)
                : "valid threshold range: none at these tolerances");
    doc.panels.push_back(std::move(panel));
  }
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_ectn_overhead(RunContext ctx) {
  constexpr std::int32_t kPhitBits = 80;  // 10-byte phits (Section IV-B)
  const std::int32_t async_mult = 4;
  const std::int32_t urgent_delta = 4;

  ResultsDoc doc;
  doc.panels.push_back(ectn_estimate_panel("analytic full-array estimate"));

  // Measured wire cost per encoding on live traffic.
  struct Scenario {
    const char* name;
    TrafficKind kind;
    double load;
  };
  const std::vector<Scenario> scenarios{
      {"UN 0.30", TrafficKind::kUniform, 0.30},
      {"UN 0.60", TrafficKind::kUniform, 0.60},
      {"ADV+1 0.20", TrafficKind::kAdversarial, 0.20},
      {"ADV+1 0.40", TrafficKind::kAdversarial, 0.40},
  };
  Panel measured;
  measured.name = "measured broadcast encodings";
  measured.kind = Panel::Kind::kGrid;
  measured.x_label = "scenario";
  measured.series = {"ECtN"};
  std::vector<std::vector<std::vector<double>>> columns(7);
  for (const Scenario& sc : scenarios) {
    SimParams p = ctx.base;
    p.routing.kind = RoutingKind::kCbEctn;
    p.traffic.kind = sc.kind;
    p.traffic.adv_offset = 1;
    p.traffic.load = sc.load;
    Simulator sim(p);
    sim.run(ctx.options.warmup);
    sim.enable_ectn_monitor(async_mult, urgent_delta);
    sim.run(ctx.options.measure);
    const EctnOverheadReport rep = sim.ectn_monitor().report();

    measured.x_labels.push_back(sc.name);
    measured.x_values.push_back(kNaN);
    columns[0].push_back({rep.avg_bits_full});
    columns[1].push_back({rep.avg_bits_nonempty});
    columns[2].push_back({rep.avg_bits_incremental});
    columns[3].push_back({rep.avg_bits_async});
    columns[4].push_back({rep.phits_full(kPhitBits)});
    columns[5].push_back(
        {100.0 * rep.overhead_fraction(kPhitBits, p.routing.ectn_update_period,
                                       rep.avg_bits_full)});
    columns[6].push_back({static_cast<double>(rep.async_urgent_messages)});
  }
  const char* metric_names[7] = {
      "bits_full",  "bits_nonempty", "bits_incremental", "bits_async",
      "phits_full", "overhead_pct",  "urgent_messages"};
  for (int i = 0; i < 7; ++i) {
    measured.metrics.emplace_back(metric_names[i], std::move(columns[i]));
  }
  measured.notes.push_back(
      "nonempty beats full while few counters are hot (uniform); incr wins "
      "once the pattern is stable; async amortizes the broadcast over " +
      std::to_string(async_mult) +
      "x the period and falls back to urgent (id,value) messages on abrupt "
      "changes.");
  doc.panels.push_back(std::move(measured));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_minpath(RunContext ctx) {
  const std::vector<double> loads = ctx.loads_or({0.20, 0.30, 0.40});
  struct Variant {
    const char* name;
    bool statistical;
    std::int32_t window;
    double inorder;
  };
  const std::vector<Variant> variants{
      {"fixed", false, 0, 0.0},   {"stat_w2", true, 2, 0.0},
      {"stat_w4", true, 4, 0.0},  {"stat_w8", true, 8, 0.0},
      {"inord10", false, 0, 0.10}, {"inord30", false, 0, 0.30},
  };
  std::vector<GridSeries> series;
  for (const Variant& v : variants) {
    series.push_back(GridSeries{v.name, [v](SimParams& p) {
                                  p.routing.kind = RoutingKind::kCbBase;
                                  p.routing.statistical_trigger = v.statistical;
                                  if (v.statistical) {
                                    p.routing.statistical_window = v.window;
                                  }
                                  p.traffic.kind = TrafficKind::kAdversarial;
                                  p.traffic.adv_offset = 1;
                                  p.traffic.inorder_fraction = v.inorder;
                                }});
  }
  ResultsDoc doc;
  doc.panels.push_back(run_grid_panel("ADV+1 (Base)", "load", ctx.base,
                                      load_ticks(loads), series, ctx.options,
                                      ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_misrouting(RunContext ctx) {
  struct Variant {
    const char* name;
    GlobalMisroutePolicy policy;
    bool local_misroute;
  };
  const std::vector<Variant> variants{
      {"MM+L_localmis", GlobalMisroutePolicy::kMmL, true},  // paper policy
      {"CRG_localmis", GlobalMisroutePolicy::kCrg, true},
      {"MM+L_nolocal", GlobalMisroutePolicy::kMmL, false},
      {"CRG_nolocal", GlobalMisroutePolicy::kCrg, false},
  };
  const std::vector<double> loads = ctx.loads_or({0.1, 0.2, 0.3, 0.4});

  auto panel = [&](const std::string& name, std::int32_t offset) {
    std::vector<GridSeries> series;
    for (const Variant& v : variants) {
      series.push_back(GridSeries{v.name, [v, offset](SimParams& p) {
                                    p.routing.kind = RoutingKind::kCbBase;
                                    p.routing.global_policy = v.policy;
                                    p.routing.allow_local_misroute =
                                        v.local_misroute;
                                    p.traffic.kind = TrafficKind::kAdversarial;
                                    p.traffic.adv_offset = offset;
                                  }});
    }
    return run_grid_panel(name, "load", ctx.base, load_ticks(loads), series,
                          ctx.options, ctx.threads);
  };

  ResultsDoc doc;
  doc.panels.push_back(panel("ADV+1 (source-group funnel)", 1));
  doc.panels.push_back(
      panel("ADV+h (intermediate-group local funnel)", ctx.base.topo.h));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_workloads(RunContext ctx) {
  const double load = 0.30;
  const auto mechanisms = ctx.lineup_or(
      {RoutingKind::kMin, RoutingKind::kUgalL, RoutingKind::kPiggyback,
       RoutingKind::kCbBase, RoutingKind::kCbEctn});

  std::vector<GridTick> ticks;
  if (ctx.traffic_forced) {
    TrafficParams traffic = ctx.base.traffic;
    traffic.load = load;
    ticks.push_back(GridTick{traffic_label(traffic), kNaN,
                             [traffic](SimParams& p) { p.traffic = traffic; }});
  } else {
    // Bench defaults (explicit flags always win): shift by a group's worth
    // of nodes plus one so destinations straddle a router boundary; hot-set
    // sizing keeps per-hot-node demand under the 1 phit/cycle ejection
    // bound so HOTSPOT separates mechanisms instead of saturating.
    const std::int32_t npg = ctx.base.topo.a * ctx.base.topo.p;
    TrafficParams base_traffic = ctx.base.traffic;
    base_traffic.load = load;
    if (!ctx.shift_offset_forced) base_traffic.shift_offset = npg + 1;
    if (!ctx.hotspot_count_forced) {
      base_traffic.hotspot_count =
          std::max<std::int32_t>(1, ctx.base.topo.nodes() / 8);
    }
    if (!ctx.hotspot_fraction_forced) base_traffic.hotspot_fraction = 0.3;
    auto add = [&](const char* name, TrafficKind kind,
                   InjectionProcess injection = InjectionProcess::kBernoulli) {
      TrafficParams traffic = base_traffic;
      traffic.kind = kind;
      // An explicit --injection applies to every pattern row; the two
      // *-bursty rows are only defaults.
      if (!ctx.injection_forced) traffic.injection = injection;
      ticks.push_back(
          GridTick{name, kNaN,
                   [traffic](SimParams& p) { p.traffic = traffic; }});
    };
    add("SHIFT", TrafficKind::kShift);
    add("BITCOMP", TrafficKind::kBitComplement);
    add("TRANSPOSE", TrafficKind::kTranspose);
    add("TORNADO", TrafficKind::kTornado);
    add("GROUPLOCAL", TrafficKind::kGroupLocal);
    add("HOTSPOT", TrafficKind::kHotspot);
    add("UN+bursty", TrafficKind::kUniform, InjectionProcess::kBursty);
    add("ADV+1+bursty", TrafficKind::kAdversarial, InjectionProcess::kBursty);
  }

  ResultsDoc doc;
  doc.panels.push_back(run_grid_panel("patterns@0.30", "pattern", ctx.base,
                                      ticks, mechanism_series(mechanisms),
                                      ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

// -------------------------------------------------------------------------
// Companion topologies (Section VI-D + torus)

ResultsDoc run_ablation_fbfly(RunContext outer) {
  RunContext ctx = rebase(outer, fbfly_base_for(outer.scale));
  const auto mechanisms =
      ctx.lineup_or({RoutingKind::kMin, RoutingKind::kValiant,
                     RoutingKind::kUgalL, RoutingKind::kCbBase});

  SimParams un = ctx.base;
  un.traffic.kind = TrafficKind::kUniform;
  // "ADJ" (the row adversary) is ADV+1 under the FB traffic grouping: all
  // nodes of router R target router R+1 in dimension 0.
  SimParams adj = ctx.base;
  adj.traffic.kind = TrafficKind::kAdversarial;
  adj.traffic.adv_offset = 1;

  ResultsDoc doc;
  doc.panels.push_back(run_load_grid(
      "UN", un, mechanisms, ctx.loads_or({0.1, 0.3, 0.5, 0.7, 0.9}),
      ctx.options, ctx.threads));
  doc.panels.push_back(run_load_grid(
      "ADJ", adj, mechanisms, ctx.loads_or({0.1, 0.2, 0.3, 0.4, 0.5, 0.6}),
      ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_ablation_fbfly_transient(RunContext outer) {
  RunContext ctx = rebase(outer, fbfly_base_for(outer.scale));
  const double load = 0.3;
  const std::int32_t reps = ctx.reps_or(3);

  struct Variant {
    const char* name;
    RoutingKind routing;
    std::int32_t buf;
  };
  const std::vector<Variant> variants{
      {"UGAL_b8", RoutingKind::kUgalL, 8},
      {"UGAL_b32", RoutingKind::kUgalL, 32},
      {"CB_b8", RoutingKind::kCbBase, 8},
      {"CB_b32", RoutingKind::kCbBase, 32},
  };
  std::vector<TransientSeries> series;
  for (const Variant& v : variants) {
    SimParams p = presets::fbfly(ctx.base.fbfly.k, ctx.base.fbfly.n,
                                 ctx.base.fbfly.c, v.buf);
    p.routing.kind = v.routing;
    p.seed = ctx.base.seed;
    series.push_back(TransientSeries{v.name, p});
  }

  TransientOptions topt;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after.kind = TrafficKind::kAdversarial;  // the FB row adversary
  topt.after.adv_offset = 1;
  topt.after.load = load;
  topt.warmup = ctx.options.warmup;
  topt.pre = 25;
  topt.post = 350;
  topt.reps = reps;
  topt.heartbeat = ctx.options.heartbeat;

  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel("UN->ADJ@0.3", series, topt,
                                           /*step=*/25, /*window=*/25));
  fill_header(doc, ctx, reps);
  return doc;
}

ResultsDoc run_ablation_torus(RunContext outer) {
  RunContext ctx = rebase(outer, torus_base_for(outer.scale));
  const auto mechanisms = ctx.lineup_or(
      {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kUgalL,
       RoutingKind::kPiggyback, RoutingKind::kCbBase, RoutingKind::kCbHybrid});

  const std::int32_t k = ctx.base.torus.k;
  const std::int32_t c = ctx.base.torus.c;
  SimParams un = ctx.base;
  un.traffic.kind = TrafficKind::kUniform;
  // Tornado: ADV at offset k/2 under the torus traffic grouping advances
  // the dimension-0 ring coordinate halfway around.
  SimParams tornado = ctx.base;
  tornado.traffic.kind = TrafficKind::kAdversarial;
  tornado.traffic.adv_offset = k / 2;
  const double ring_cap =
      1.0 / (static_cast<double>(c) * static_cast<double>(k / 2));

  ResultsDoc doc;
  doc.panels.push_back(run_load_grid(
      "UN", un, mechanisms, ctx.loads_or({0.1, 0.2, 0.3, 0.4, 0.5}),
      ctx.options, ctx.threads));
  Panel tor = run_load_grid(
      "TORNADO", tornado, mechanisms,
      ctx.loads_or({0.5 * ring_cap, ring_cap, 1.2 * ring_cap, 1.6 * ring_cap,
                    2.0 * ring_cap}),
      ctx.options, ctx.threads);
  tor.x_labels.clear();
  for (const double v : tor.x_values) {
    tor.x_labels.push_back(format_fixed(v, 3));
  }
  tor.notes.push_back("one-direction ring cap: " + format_fixed(ring_cap, 3) +
                      " phits/node/cycle — MIN flatlines there, the "
                      "nonminimal mechanisms climb past it");
  doc.panels.push_back(std::move(tor));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

// -------------------------------------------------------------------------
// Fault overlay (beyond the paper)

ResultsDoc run_fault_degradation(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kUniform);
  ctx.base.traffic.load = 0.30;
  const auto mechanisms = ctx.lineup_or(
      {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kPiggyback,
       RoutingKind::kCbBase, RoutingKind::kCbEctn});

  // x = fraction of failed *global* links, dead from cycle 0. f = 0 keeps
  // the overlay entirely detached (the zero-overhead-when-off baseline).
  std::vector<GridTick> ticks;
  for (const double f : {0.0, 0.05, 0.10, 0.20}) {
    ticks.push_back(GridTick{format_fixed(f, 2), f, [f](SimParams& p) {
                               if (f > 0.0) {
                                 p = presets::with_link_faults(std::move(p), f,
                                                               "global");
                               }
                             }});
  }

  ResultsDoc doc;
  doc.panels.push_back(run_grid_panel(
      "UN@0.30 dead global links", "fail_fraction", ctx.base, ticks,
      mechanism_series(mechanisms), ctx.options, ctx.threads));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

ResultsDoc run_fault_transient(RunContext ctx) {
  const std::int32_t reps = ctx.reps_or(5);
  const double load = 0.30;
  const Cycle pre = 50;
  const Cycle post = 250;

  // Figure-7 machinery with the traffic switch replaced by a fault onset:
  // traffic stays uniform throughout and a quarter of the global links die
  // at t=0 (onset = warmup + pre, the transient panel's switch cycle).
  TransientOptions topt;
  topt.before = ctx.base.traffic;
  topt.before.kind = TrafficKind::kUniform;
  topt.before.load = load;
  topt.after = topt.before;
  topt.warmup = ctx.options.warmup;
  topt.pre = pre;
  topt.post = post;
  topt.reps = reps;
  topt.heartbeat = ctx.options.heartbeat;

  std::vector<TransientSeries> series;
  for (const RoutingKind kind :
       ctx.lineup_or({RoutingKind::kCbBase, RoutingKind::kOlm,
                      RoutingKind::kPiggyback})) {
    SimParams p = presets::with_link_faults(ctx.base, 0.25, "global",
                                            topt.warmup + pre);
    p.routing.kind = kind;
    series.push_back(TransientSeries{to_string(kind), p});
  }

  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel("UN@0.3 global faults at t=0",
                                           series, topt,
                                           /*step=*/10, /*window=*/10));
  fill_header(doc, ctx, reps);
  return doc;
}

// -------------------------------------------------------------------------
// Notification family (ARN): adaptation speed and sustained throughput.

ResultsDoc run_notification_transient(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kAdversarial, 1);
  const std::int32_t reps = ctx.reps_or(5);
  const TransientOptions topt = un_to_adv_switch(ctx, 0.2, 50, 250, reps);

  // Transient panel: the counter trigger (Base) and the credit trigger
  // (PB) frame the notification family's adaptation speed; the throttle
  // variant rides along to show refusal does not stall recovery.
  std::vector<TransientSeries> series;
  for (const RoutingKind kind :
       ctx.lineup_or({RoutingKind::kCbBase, RoutingKind::kPiggyback})) {
    SimParams p = ctx.base;
    p.routing.kind = kind;
    series.push_back(TransientSeries{to_string(kind), p});
  }
  {
    SimParams p = ctx.base;
    p.routing.kind = RoutingKind::kArn;
    p.notify.enabled = true;
    series.push_back(TransientSeries{"ARN", p});
    p.notify.throttle_injection = true;
    series.push_back(TransientSeries{"ARN+thr", p});
  }

  ResultsDoc doc;
  doc.panels.push_back(run_transient_panel("UN->ADV+1@0.2", series, topt,
                                           /*step=*/10, /*window=*/10));

  // Steady ADV+1 panel for the throughput gates: VAL is the 0.5-bound
  // reference the notification family must not fall under at saturating
  // load; MIN marks the un-adaptive floor it must clear.
  std::vector<GridSeries> steady;
  for (const RoutingKind kind :
       {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kCbBase}) {
    steady.push_back(GridSeries{
        to_string(kind), [kind](SimParams& p) { p.routing.kind = kind; }});
  }
  steady.push_back(GridSeries{"ARN", [](SimParams& p) {
                                p.routing.kind = RoutingKind::kArn;
                                p.notify.enabled = true;
                              }});
  steady.push_back(GridSeries{"ARN+thr", [](SimParams& p) {
                                p.routing.kind = RoutingKind::kArn;
                                p.notify.enabled = true;
                                p.notify.throttle_injection = true;
                              }});
  doc.panels.push_back(run_grid_panel(
      "ADV+1 steady", "load", ctx.base,
      load_ticks(ctx.loads_or({0.1, 0.2, 0.3, 0.4})), steady, ctx.options,
      ctx.threads));
  fill_header(doc, ctx, reps);
  return doc;
}

// -------------------------------------------------------------------------
// Observability: backlog formation through the spatial telemetry sink.

ResultsDoc run_congestion_map(RunContext ctx) {
  ctx.default_traffic(TrafficKind::kAdversarial, 1);
  ctx.base.traffic.load = ctx.loads_or({0.30}).front();
  const std::vector<RoutingKind> mechanisms = ctx.lineup_or(
      {RoutingKind::kMin, RoutingKind::kCbBase, RoutingKind::kCbEctn});

  // ~24 frames across the whole run, warmup included: the backlog builds
  // during warmup and the map should show it building, not just built.
  const Cycle span = ctx.options.warmup + ctx.options.measure;
  const Cycle period = std::max<Cycle>(1, span / 24);

  ResultsDoc doc;
  Panel summary;
  summary.name = "mechanism summary";
  summary.kind = Panel::Kind::kGrid;
  summary.x_label = "mechanism";
  summary.series = {"network"};
  std::vector<std::vector<std::vector<double>>> cols(5);

  for (const RoutingKind kind : mechanisms) {
    SimParams p = ctx.base;
    p.routing.kind = kind;
    p.telemetry.enabled = true;
    p.telemetry.sample_period = period;
    p.telemetry.max_samples = 64;
    Simulator sim(p);
    sim.run(ctx.options.warmup);
    sim.begin_measurement();
    sim.run(ctx.options.measure);

    const telemetry::TelemetrySink& sink = sim.telemetry_sink();
    const std::int32_t frames = sink.frames();
    const std::int32_t ga = std::max<std::int32_t>(1, p.topo.a);
    const std::int32_t groups = sink.routers() / ga;

    // Per-group time series: ADV+1 funnels every group g's traffic onto
    // its single direct channel to group g+1, so under MIN each group's
    // routers pile up behind their own exit funnel while the adaptive
    // mechanisms divert onto intermediate groups and stay flat.
    Panel panel;
    panel.name = "per-group " + std::string(to_string(kind));
    panel.kind = Panel::Kind::kTransient;
    panel.x_label = "cycle";
    for (std::int32_t f = 0; f < frames; ++f) {
      panel.x_labels.push_back(std::to_string(sink.sample_cycle(f)));
      panel.x_values.push_back(static_cast<double>(sink.sample_cycle(f)));
    }
    for (std::int32_t g = 0; g < groups; ++g) {
      panel.series.push_back("g" + std::to_string(g));
    }
    auto group_rows = [&](auto&& cell) {
      std::vector<std::vector<double>> rows;
      rows.reserve(static_cast<std::size_t>(frames));
      for (std::int32_t f = 0; f < frames; ++f) {
        std::vector<double> row(static_cast<std::size_t>(groups), 0.0);
        for (RouterId r = 0; r < sink.routers(); ++r) {
          row[static_cast<std::size_t>(r / ga)] += cell(f, r);
        }
        rows.push_back(std::move(row));
      }
      return rows;
    };
    panel.metrics.emplace_back(
        "occupancy", group_rows([&](std::int32_t f, RouterId r) {
          return static_cast<double>(sink.occupancy(f, r));
        }));
    panel.metrics.emplace_back(
        "misroutes", group_rows([&](std::int32_t f, RouterId r) {
          return static_cast<double>(sink.misroutes(f, r));
        }));
    panel.metrics.emplace_back(
        "credit_stalls", group_rows([&](std::int32_t f, RouterId r) {
          return static_cast<double>(sink.credit_stalls(f, r));
        }));
    doc.panels.push_back(std::move(panel));

    // Summary row: the worst group's peak backlog is the headline number.
    double peak = 0.0;
    for (std::int32_t f = 0; f < frames; ++f) {
      std::vector<double> group_occ(static_cast<std::size_t>(groups), 0.0);
      for (RouterId r = 0; r < sink.routers(); ++r) {
        group_occ[static_cast<std::size_t>(r / ga)] +=
            static_cast<double>(sink.occupancy(f, r));
      }
      for (const double occ : group_occ) peak = std::max(peak, occ);
    }
    summary.x_labels.push_back(to_string(kind));
    summary.x_values.push_back(kNaN);
    cols[0].push_back({sim.metrics().mean_latency()});
    cols[1].push_back({peak});
    cols[2].push_back({static_cast<double>(sink.total_misroutes())});
    cols[3].push_back({static_cast<double>(sink.total_credit_stalls())});
    cols[4].push_back({static_cast<double>(sink.total_deliveries())});
  }
  const char* col_names[5] = {"latency_avg", "peak_group_occupancy",
                              "misroute_decisions", "credit_stalls",
                              "deliveries"};
  for (int i = 0; i < 5; ++i) {
    summary.metrics.emplace_back(col_names[i], std::move(cols[i]));
  }
  summary.notes.push_back(
      "peak per-group backlog under ADV+1: MIN queues every group behind "
      "its single direct channel; the counter mechanisms divert onto "
      "intermediate groups and the peak flattens.");
  doc.panels.push_back(std::move(summary));
  fill_header(doc, ctx, 1);
  return doc;
}

// -------------------------------------------------------------------------
// Table I

ResultsDoc run_table1(RunContext ctx) {
  const SimParams presets_list[4] = {presets::paper(), presets::medium(),
                                     presets::small(), presets::tiny()};

  Panel table;
  table.name = "configuration presets";
  table.kind = Panel::Kind::kInfo;
  table.columns = {"parameter", "paper", "medium", "small", "tiny"};
  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const SimParams& p : presets_list) cells.push_back(getter(p));
    table.cells.push_back(std::move(cells));
  };
  auto str = [](auto v) { return std::to_string(v); };

  row("router ports (fwd)", [&](const SimParams& p) {
    return str(p.topo.forward_ports()) + " (h=" + str(p.topo.h) +
           " p=" + str(p.topo.p) + " local=" + str(p.topo.a - 1) + ")";
  });
  row("router latency (cycles)",
      [&](const SimParams& p) { return str(p.router.pipeline_cycles); });
  row("frequency speedup",
      [&](const SimParams& p) { return str(p.router.speedup) + "x"; });
  row("group size", [&](const SimParams& p) {
    return str(p.topo.a) + " routers, " + str(p.topo.a * p.topo.p) + " nodes";
  });
  row("system size", [&](const SimParams& p) {
    return str(p.topo.groups()) + " groups, " + str(p.topo.nodes()) + " nodes";
  });
  row("link latency local/global", [&](const SimParams& p) {
    return str(p.link.local_latency) + "/" + str(p.link.global_latency);
  });
  row("VCs global/local/injection", [&](const SimParams& p) {
    return str(p.router.vcs_global) + "/" + str(p.router.vcs_local) +
           "(+1 VAL,PB)/" + str(p.router.vcs_injection);
  });
  row("buffers out/local/global (phits)", [&](const SimParams& p) {
    return str(p.router.buf_output_phits) + "/" +
           str(p.router.buf_local_phits) + "/" +
           str(p.router.buf_global_phits);
  });
  row("packet size (phits)",
      [&](const SimParams& p) { return str(p.packet_size_phits); });
  row("congestion thresholds", [&](const SimParams& p) {
    return "OLM " + format_fixed(p.routing.olm_credit_fraction, 2) +
           ", Hybrid " + format_fixed(p.routing.hybrid_credit_fraction, 2) +
           ", PB T=" + str(p.routing.pb_ugal_threshold);
  });
  row("contention thresholds", [&](const SimParams& p) {
    return "Base/ECtN " + str(p.routing.contention_threshold) + ", Hybrid " +
           str(p.routing.hybrid_contention_threshold) + ", combined " +
           str(p.routing.ectn_combined_threshold);
  });
  row("ECtN partial update (cycles)", [&](const SimParams& p) {
    return str(p.routing.ectn_update_period);
  });

  ResultsDoc doc;
  doc.panels.push_back(std::move(table));
  doc.panels.push_back(
      ectn_estimate_panel("ECtN partial-broadcast overhead estimate"));
  fill_header(doc, ctx, ctx.options.reps);
  return doc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry

const std::vector<ExperimentSpec>& experiment_registry() {
  static const std::vector<ExperimentSpec> kRegistry{
      {"table1", "Table I — simulation parameters (presets)", "Table I",
       "dragonfly",
       "The paper's exact configuration plus the scaled presets, with the "
       "Section VI-B analytic ECtN broadcast-overhead estimate per preset.",
       run_table1},
      {"fig5a", "Figure 5a — uniform traffic (UN)", "Fig. 5a", "dragonfly",
       "MIN sets the latency floor; Base and ECtN match it before "
       "congestion; Hybrid sits between MIN and OLM; PB/OLM pay a latency "
       "premium for credit-triggered misrouting. Peak throughput: Hybrid "
       "highest, Base/ECtN close to OLM, all above MIN.",
       run_fig5a},
      {"fig5b", "Figure 5b — adversarial traffic (ADV+1)", "Fig. 5b",
       "dragonfly",
       "VAL is the reference (saturates at 0.5); MIN collapses on the "
       "single inter-group link; OLM/Base/Hybrid/ECtN all reach the Valiant "
       "throughput bound, with ECtN obtaining the best latency thanks to "
       "injection-time misrouting from combined counters.",
       run_fig5b},
      {"fig5c", "Figure 5c — adversarial traffic (ADV+h)", "Fig. 5c",
       "dragonfly",
       "The pathological pattern that additionally saturates local links in "
       "the intermediate group, exercising local misrouting: same ordering "
       "as ADV+1 but VAL/PB closer to the adaptive mechanisms.",
       run_fig5c},
      {"fig6", "Figure 6 — mixed ADV+1/UN traffic at 35% load", "Fig. 6",
       "dragonfly",
       "Average latency as the UN share sweeps 0..100%: contention counters "
       "stay competitive with OLM at every blend; ECtN clearly the best.",
       run_fig6},
      {"fig7", "Figure 7 — transient UN->ADV+1, small buffers", "Fig. 7",
       "dragonfly",
       "Traffic switches UN->ADV+1 at t=0 under load 0.2. Base/Hybrid adapt "
       "within ~10 cycles; OLM and PB need ~100 (credits must fill); ECtN "
       "follows Base until the next partial broadcast, then misroutes "
       "directly at injection. Misrouted share converges near 0% before and "
       "~100% after for the counter-based mechanisms.",
       run_fig7},
      {"fig8", "Figure 8 — transient UN->ADV+1, large buffers", "Fig. 8",
       "dragonfly",
       "Same transient with 256/2048-phit VC buffers: the credit-based "
       "mechanisms adapt far more slowly (deeper buffers must fill before "
       "credits signal congestion) while the contention-based response "
       "stays put — buffer size is decoupled from the trigger.",
       run_fig8},
      {"fig9", "Figure 9 — oscillations after UN->ADV+1, PB vs ECtN",
       "Fig. 9", "dragonfly",
       "PB's delayed ECN control loop oscillates with a ~500-cycle decaying "
       "period; ECtN converges to a flat latency because contention does "
       "not depend on the routing decision.",
       run_fig9},
      {"fig10", "Figure 10 — Base threshold sensitivity", "Fig. 10",
       "dragonfly",
       "Low thresholds penalize UN (spurious misrouting); high thresholds "
       "penalize ADV+1 (late misrouting). A valid middle band exists around "
       "2x the average number of VCs per input port.",
       run_fig10},
      {"ablation_radix_range", "Section VI-A — valid threshold range vs radix",
       "Sec. VI-A", "dragonfly",
       "Sweeps the misrouting threshold across router radixes: the valid "
       "window (UN throughput preserved AND ADV latency near the best) "
       "should widen with the radix, the paper's closing Section VI-A "
       "remark.",
       run_ablation_radix_range},
      {"ablation_ectn_overhead", "Section VI-B — ECtN broadcast overhead",
       "Sec. VI-B", "dragonfly",
       "The paper's analytic full-array estimate reproduced per preset, "
       "plus the measured wire cost of the alternative encodings (nonempty-"
       "with-id, incremental, asynchronous) on live traffic.",
       run_ablation_ectn_overhead},
      {"ablation_minpath", "Section VI-C — minimal-path usage under ADV+1",
       "Sec. VI-C", "dragonfly",
       "With a fixed threshold and heavy ADV load nearly all adaptive "
       "traffic diverts nonminimally. The paper's two un-evaluated "
       "remedies — in-order traffic pinned to the minimal path, and a "
       "statistical trigger ramping misroute probability below the "
       "threshold — re-fill the minimal path at a quantified cost.",
       run_ablation_minpath},
      {"ablation_misrouting", "Section V — misrouting policy ablation",
       "Sec. V", "dragonfly",
       "MM+L vs CRG global candidates and opportunistic local misrouting "
       "on/off, isolated on Base: CRG squeezes the source-group funnel "
       "through h-1 spare links; disabling local misrouting costs latency "
       "exactly where ADV+h funnels intermediate-group traffic.",
       run_ablation_misrouting},
      {"ablation_workloads", "Workload ablation — mechanisms x traffic models",
       "beyond the paper", "dragonfly",
       "The routing line-up across the traffic/ subsystem's patterns "
       "(permutations, hotspot, bursty layers) at load 0.3: group-crossing "
       "permutations funnel groups onto few global channels so MIN "
       "saturates while the adaptive mechanisms recover bandwidth; HOTSPOT "
       "and the bursty layers separate mechanisms mostly in the p99 tail.",
       run_ablation_workloads},
      {"ablation_fbfly", "Section VI-D — flattened butterfly steady state",
       "Sec. VI-D", "fbfly",
       "Contention counters on a second topology (k-ary n-flat, DOR "
       "minimal): under UN, CB matches MIN's optimal latency with zero "
       "misrouting; under the row adversary ADJ, MIN caps at the single "
       "direct channel while CB recovers the nonminimal bandwidth like "
       "VAL/UGAL-L.",
       run_ablation_fbfly},
      {"ablation_fbfly_transient",
       "Section VI-D x Fig. 7/8 — FB trigger adaptation speed", "Sec. VI-D",
       "fbfly",
       "UN -> row-adversary switch at t=0 on the flattened butterfly: the "
       "queue trigger (UGAL-L) adapts slower as buffers deepen (b8 vs b32) "
       "while the counter trigger (Base) keeps the same fast response.",
       run_ablation_fbfly_transient},
      {"ablation_torus", "Torus — trigger line-up under UN + tornado",
       "beyond the paper", "torus",
       "k-ary n-cube through the same engine: under TORNADO minimal DOR "
       "flatlines at the one-direction ring cap 1/(c*k/2) while UGAL-L and "
       "the contention triggers recover nonminimal bandwidth; under UN "
       "every mechanism rides MIN with (near-)zero misrouting.",
       run_ablation_torus},
      {"fault_degradation",
       "Fault overlay — throughput/latency vs dead global links",
       "beyond the paper", "dragonfly",
       "Uniform traffic at 0.3 load while a growing fraction of global "
       "links is dead from cycle 0: MIN loses the failed direct routes and "
       "degrades, the adaptive mechanisms route around the holes and retain "
       "disproportionate throughput. Hard invariants per cell: zero "
       "traversals of dead links, exact packet conservation.",
       run_fault_degradation},
      {"fault_transient",
       "Fault overlay — trigger response to a fault onset",
       "beyond the paper", "dragonfly",
       "Figure-7 machinery with the traffic switch replaced by a fault "
       "onset: 15% of global links die at t=0 under steady uniform load. "
       "The contention-counter trigger (Base) reacts to the redistributed "
       "head-of-line contention within tens of cycles; the credit triggers "
       "(OLM, PB) respond only after the surviving links' buffers fill.",
       run_fault_transient},
      {"notification_transient",
       "ARN — congestion-notification response to an ADV+1 onset",
       "beyond the paper", "dragonfly",
       "The adaptive-routing-notification family (arXiv 2502.00616; "
       "throttle variant arXiv 2502.00597) on Figure-7 machinery: routers "
       "over the notify.threshold occupancy broadcast notifications that go "
       "live propagation_delay cycles later and decay only by expiry. "
       "Sources misroute (ARN) or additionally refuse injection (ARN+thr) "
       "while the minimal route is under a live notification. The transient "
       "panel frames adaptation speed between the counter trigger (Base) "
       "and the credit trigger (PB); the steady ADV+1 panel holds the "
       "family to the Valiant throughput bound.",
       run_notification_transient},
      {"congestion_map",
       "Observability — per-group backlog formation under ADV+1",
       "beyond the paper", "dragonfly",
       "Spatial telemetry (per-router occupancy, misroute decisions, credit "
       "stalls, aggregated per group) sampled across warmup + measurement "
       "under ADV+1: MIN queues every group behind its single direct "
       "channel while Base and ECtN divert onto intermediate groups. The "
       "summary table reports each mechanism's peak per-group backlog.",
       run_congestion_map},
  };
  return kRegistry;
}

const ExperimentSpec* find_experiment(const std::string& name) {
  for (const ExperimentSpec& spec : experiment_registry()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

void fill_header(ResultsDoc& doc, const RunContext& ctx, std::int32_t reps) {
  Header& h = doc.header;
  h.topology = to_string(ctx.base.topology);
  h.scale = ctx.scale;
  h.nodes = ctx.base.nodes();
  h.config_hash = config_hash(ctx.base);
  h.engine_threads = ctx.base.engine.threads;
  if (h.engine_threads != 1) {
    SimParams serial = ctx.base;
    serial.engine.threads = 1;
    h.config_hash_serial = config_hash(serial);
  }
  h.seed = ctx.base.seed;
  h.warmup = ctx.options.warmup;
  h.measure = ctx.options.measure;
  h.reps = reps;
}

ResultsDoc run_experiment(const ExperimentSpec& spec, const RunContext& ctx) {
  ResultsDoc doc = spec.run(ctx);
  doc.header.schema = kSchemaVersion;
  doc.header.experiment = spec.name;
  doc.header.title = spec.title;
  doc.header.paper_ref = spec.paper_ref;
  return doc;
}

}  // namespace dfsim::report
