// Generated-RESULTS.md renderer: turns a set of results documents plus the
// parity-gate outcomes into the figure-by-figure markdown report
// scripts/reproduce.sh commits. Pure function of its inputs — no
// timestamps, so regenerating from identical JSON is a no-op diff.
#pragma once

#include <string>
#include <vector>

#include "report/parity.hpp"
#include "report/schema.hpp"

namespace dfsim::report {

/// Pretty-prints one document to a terminal (the `dfsim_run run` default
/// output) using the shared ResultTable writers.
void print_doc(const ResultsDoc& doc, bool csv, std::ostream& os);

/// Renders the full markdown report: header, parity-gate table, then one
/// section per document (tables per metric + computed trend commentary).
[[nodiscard]] std::string render_markdown(
    const std::vector<ResultsDoc>& docs,
    const std::vector<GateOutcome>& gates);

}  // namespace dfsim::report
