#include "report/render.hpp"

#include <cmath>
#include <limits>
#include <ostream>

#include "report/registry.hpp"
#include "report/runner.hpp"
#include "util/table.hpp"

namespace dfsim::report {

namespace {

struct MetricStyle {
  const char* name;
  const char* label;
  int precision;
  bool sat_markable;  // latency cells past saturation print "sat"
};

/// Metrics worth a table, in print order (the full set stays in the JSON).
const std::vector<MetricStyle>& grid_styles() {
  static const std::vector<MetricStyle> kStyles{
      {"latency_avg", "average packet latency (cycles)", 1, true},
      {"latency_p99", "p99 packet latency (cycles)", 1, true},
      {"throughput", "accepted load (phits/node/cycle)", 3, false},
      {"misrouted_pct", "globally misrouted packets (%)", 1, false},
      {"minpath_pct", "fully minimal paths (%)", 1, false},
  };
  return kStyles;
}

const std::vector<MetricStyle>& transient_styles() {
  static const std::vector<MetricStyle> kStyles{
      {"latency_avg", "average latency of delivered packets (cycles)", 1,
       false},
      {"misrouted_pct", "misrouted packets (%)", 1, false},
  };
  return kStyles;
}

std::string format_cell(const Panel& panel, const MetricStyle& style,
                        const std::vector<std::vector<double>>& rows,
                        std::size_t xi, std::size_t si) {
  if (style.sat_markable && panel.saturated_cell(xi, si)) return "sat";
  const double v = rows[xi][si];
  if (!std::isfinite(v)) return "-";
  return format_fixed(v, style.precision);
}

/// Which styles apply to this panel (only metrics it actually carries, and
/// minpath only when some cell is below 100% — i.e. the panel is about it).
std::vector<MetricStyle> styles_for(const Panel& panel) {
  const auto& candidates = panel.kind == Panel::Kind::kTransient
                               ? transient_styles()
                               : grid_styles();
  std::vector<MetricStyle> styles;
  for (const MetricStyle& style : candidates) {
    const auto* rows = panel.metric(style.name);
    if (!rows) continue;
    if (std::string(style.name) == "minpath_pct") {
      bool interesting = false;
      for (const auto& row : *rows) {
        for (const double v : row) {
          if (std::isfinite(v) && v < 99.0) interesting = true;
        }
      }
      if (!interesting) continue;
    }
    styles.push_back(style);
  }
  // Panels with custom metrics only (e.g. the ECtN encodings): print every
  // metric raw.
  if (styles.empty() && panel.kind != Panel::Kind::kInfo) {
    for (const auto& [name, rows] : panel.metrics) {
      styles.push_back(MetricStyle{name.c_str(), name.c_str(), 2, false});
    }
  }
  return styles;
}

/// Single-series panels pivot to rows=x, cols=metrics (the ECtN overhead
/// shape); everything else is rows=x, cols=series per metric.
bool pivoted(const Panel& panel) {
  return panel.kind == Panel::Kind::kGrid && panel.series.size() == 1 &&
         panel.metrics.size() > 3 && !panel.metric("latency_avg");
}

ResultTable info_table(const Panel& panel) {
  ResultTable table(panel.columns);
  for (const auto& row : panel.cells) {
    table.begin_row();
    for (std::size_t ci = 0; ci < panel.columns.size() && ci < row.size();
         ++ci) {
      table.set(panel.columns[ci], row[ci]);
    }
  }
  return table;
}

ResultTable metric_table(const Panel& panel, const MetricStyle& style) {
  std::vector<std::string> columns{panel.x_label.empty() ? "x"
                                                         : panel.x_label};
  for (const std::string& s : panel.series) columns.push_back(s);
  ResultTable table(columns);
  const auto* rows = panel.metric(style.name);
  for (std::size_t xi = 0; xi < panel.x_labels.size() && rows; ++xi) {
    table.begin_row();
    table.set(columns[0], panel.x_labels[xi]);
    for (std::size_t si = 0; si < panel.series.size(); ++si) {
      table.set(panel.series[si], format_cell(panel, style, *rows, xi, si));
    }
  }
  return table;
}

ResultTable pivot_table(const Panel& panel) {
  std::vector<std::string> columns{panel.x_label.empty() ? "x"
                                                         : panel.x_label};
  for (const auto& [name, rows] : panel.metrics) columns.push_back(name);
  ResultTable table(columns);
  for (std::size_t xi = 0; xi < panel.x_labels.size(); ++xi) {
    table.begin_row();
    table.set(columns[0], panel.x_labels[xi]);
    for (const auto& [name, rows] : panel.metrics) {
      const double v = xi < rows.size() && !rows[xi].empty()
                           ? rows[xi][0]
                           : std::numeric_limits<double>::quiet_NaN();
      table.set(name, std::isfinite(v) ? format_fixed(v, 2) : "-");
    }
  }
  return table;
}

// -------------------------------------------------------------------------
// Trend commentary computed from the data

std::string peak_throughput_line(const Panel& panel) {
  const auto* thpt = panel.metric("throughput");
  if (!thpt || panel.series.empty()) return {};
  std::string line = "peak accepted load: ";
  for (std::size_t si = 0; si < panel.series.size(); ++si) {
    double peak = 0.0;
    for (const auto& row : *thpt) {
      if (si < row.size() && std::isfinite(row[si])) {
        peak = std::max(peak, row[si]);
      }
    }
    if (si) line += ", ";
    line += panel.series[si] + " " + format_fixed(peak, 3);
  }
  return line;
}

std::string adaptation_line(const Panel& panel) {
  const auto* mis = panel.metric("misrouted_pct");
  if (!mis) return {};
  std::string line = "cycles to 50% misrouted after the switch: ";
  bool any = false;
  for (std::size_t si = 0; si < panel.series.size(); ++si) {
    std::string when = "never";
    for (std::size_t xi = 0; xi < mis->size(); ++xi) {
      if (panel.x_values[xi] < 0) continue;
      if (si < (*mis)[xi].size() && (*mis)[xi][si] >= 50.0) {
        when = format_fixed(panel.x_values[xi], 0);
        any = true;
        break;
      }
    }
    if (si) line += ", ";
    line += panel.series[si] + " " + when;
  }
  return any ? line : std::string{};
}

std::vector<std::string> commentary(const Panel& panel) {
  std::vector<std::string> lines;
  if (panel.kind == Panel::Kind::kGrid && panel.metric("throughput") &&
      panel.series.size() > 1) {
    lines.push_back(peak_throughput_line(panel));
  }
  if (panel.kind == Panel::Kind::kTransient) {
    const std::string line = adaptation_line(panel);
    if (!line.empty()) lines.push_back(line);
  }
  for (const std::string& note : panel.notes) lines.push_back(note);
  return lines;
}

void write_markdown_table(const ResultTable& table, std::string& out) {
  const auto& columns = table.columns();
  out += '|';
  for (const std::string& c : columns) out += ' ' + c + " |";
  out += "\n|";
  for (std::size_t i = 0; i < columns.size(); ++i) out += "---|";
  out += '\n';
  for (std::size_t r = 0; r < table.rows(); ++r) {
    out += '|';
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out += ' ' + table.cell(r, c) + " |";
    }
    out += '\n';
  }
}

}  // namespace

void print_doc(const ResultsDoc& doc, bool csv, std::ostream& os) {
  os << "# " << doc.header.experiment << " — " << doc.header.title
     << "\n# scale=" << doc.header.scale << " (" << doc.header.nodes
     << " nodes, " << doc.header.topology
     << "), warmup=" << doc.header.warmup << " measure=" << doc.header.measure
     << " reps=" << doc.header.reps << " seed=" << doc.header.seed
     << " config=" << doc.header.config_hash << "\n\n";
  auto emit = [&](const ResultTable& table, const std::string& title) {
    os << "== " << title << " ==\n";
    if (csv) {
      table.write_csv(os);
    } else {
      table.write_pretty(os);
    }
    os << "\n";
  };
  for (const Panel& panel : doc.panels) {
    if (panel.kind == Panel::Kind::kInfo) {
      emit(info_table(panel), panel.name);
    } else if (pivoted(panel)) {
      emit(pivot_table(panel), panel.name);
    } else {
      for (const MetricStyle& style : styles_for(panel)) {
        emit(metric_table(panel, style),
             panel.name + " — " + style.label);
      }
    }
    for (const std::string& line : commentary(panel)) {
      os << "  " << line << "\n";
    }
    if (!panel.notes.empty() || panel.kind != Panel::Kind::kInfo) os << "\n";
  }
}

std::string render_markdown(const std::vector<ResultsDoc>& docs,
                            const std::vector<GateOutcome>& gates) {
  std::string out;
  out +=
      "# dfsim results\n\n"
      "Generated by `dfsim_run render` from schema-versioned result "
      "documents (`" +
      std::string(kSchemaVersion) +
      "`).\nRegenerate everything with `scripts/reproduce.sh "
      "--scale=<tiny|small|medium|paper>`.\nDo not edit by hand.\n\n";
  if (!docs.empty()) {
    out += "Run configuration: scale `" + docs.front().header.scale +
           "`, git `" +
           (docs.front().header.git_rev.empty() ? "-"
                                                : docs.front().header.git_rev) +
           "`.\n\n";
  }

  out += "## Paper-parity gates\n\n";
  if (gates.empty()) {
    out += "No gates evaluated.\n\n";
  } else {
    out += "| experiment | gate | status | detail |\n|---|---|---|---|\n";
    for (const GateOutcome& g : gates) {
      const char* mark = g.status == GateStatus::kPass   ? "✅ PASS"
                         : g.status == GateStatus::kFail ? "❌ FAIL"
                                                         : "⏭️ SKIP";
      out += "| " + g.experiment + " | " + g.gate + " | " + mark + " | " +
             g.detail + " |\n";
    }
    out += "\n";
  }

  for (const ResultsDoc& doc : docs) {
    const Header& h = doc.header;
    out += "## " + h.experiment + " — " + h.title + "\n\n";
    out += "*" + h.paper_ref + " · " + h.topology + " · scale " + h.scale +
           " (" + std::to_string(h.nodes) + " nodes) · warmup " +
           std::to_string(h.warmup) + " · measure " +
           std::to_string(h.measure) + " · reps " + std::to_string(h.reps) +
           " · seed " + std::to_string(h.seed) + " · config `" +
           h.config_hash + "`*\n\n";
    if (const ExperimentSpec* spec = find_experiment(h.experiment)) {
      out += std::string(spec->description) + "\n\n";
    }
    for (const Panel& panel : doc.panels) {
      out += "### " + panel.name + "\n\n";
      if (panel.kind == Panel::Kind::kInfo) {
        write_markdown_table(info_table(panel), out);
        out += '\n';
      } else if (pivoted(panel)) {
        write_markdown_table(pivot_table(panel), out);
        out += '\n';
      } else {
        for (const MetricStyle& style : styles_for(panel)) {
          out += "**" + std::string(style.label) + "**\n\n";
          write_markdown_table(metric_table(panel, style), out);
          out += '\n';
        }
      }
      const std::vector<std::string> lines = commentary(panel);
      if (!lines.empty()) {
        for (const std::string& line : lines) {
          out += "- " + line + "\n";
        }
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace dfsim::report
