// The declarative experiment registry: every paper figure, table, and
// ablation is a registered ExperimentSpec executed through the shared
// runner instead of a standalone bench binary. `dfsim_run` lists and runs
// these; scripts/reproduce.sh runs the whole registry; the paper-parity
// gates and RESULTS.md renderer consume the emitted documents.
#pragma once

#include <string>
#include <vector>

#include "report/runner.hpp"
#include "report/schema.hpp"

namespace dfsim::report {

struct ExperimentSpec {
  const char* name;       // registry key: "fig5a", "ablation_torus", ...
  const char* title;      // figure title used in headers and RESULTS.md
  const char* paper_ref;  // "Fig. 5a", "Sec. VI-B", "beyond the paper"
  const char* topology;   // "dragonfly" | "fbfly" | "torus"
  const char* description;  // expectations commentary rendered in RESULTS.md
  ResultsDoc (*run)(RunContext ctx);
};

/// All registered experiments, in paper order.
[[nodiscard]] const std::vector<ExperimentSpec>& experiment_registry();

/// nullptr when `name` is not registered.
[[nodiscard]] const ExperimentSpec* find_experiment(const std::string& name);

/// Runs a spec and stamps the document header (name/title/ref + config hash
/// + scale + cycle budget) — the only way results documents are produced.
[[nodiscard]] ResultsDoc run_experiment(const ExperimentSpec& spec,
                                        const RunContext& ctx);

/// Fills the context-dependent header fields from the (possibly mutated)
/// context an experiment actually ran with.
void fill_header(ResultsDoc& doc, const RunContext& ctx, std::int32_t reps);

}  // namespace dfsim::report
