#include "report/schema.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace dfsim::report {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

// ---------------------------------------------------------------------------
// Panel lookups

const std::vector<std::vector<double>>* Panel::metric(
    const std::string& metric_name) const {
  for (const auto& [n, rows] : metrics) {
    if (n == metric_name) return &rows;
  }
  return nullptr;
}

std::size_t Panel::series_index(const std::string& series_name) const {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] == series_name) return i;
  }
  return series.size();
}

std::size_t Panel::x_index(const std::string& x_tick) const {
  for (std::size_t i = 0; i < x_labels.size(); ++i) {
    if (x_labels[i] == x_tick) return i;
  }
  return x_labels.size();
}

double Panel::value(const std::string& metric_name, const std::string& x_tick,
                    const std::string& series_name) const {
  const auto* rows = metric(metric_name);
  const std::size_t xi = x_index(x_tick);
  const std::size_t si = series_index(series_name);
  if (!rows || xi >= rows->size() || si >= (*rows)[xi].size()) return kNaN;
  return (*rows)[xi][si];
}

bool Panel::saturated_cell(std::size_t xi, std::size_t si) const {
  const auto* backlog = metric("backlog_per_node");
  return backlog && xi < backlog->size() && si < (*backlog)[xi].size() &&
         (*backlog)[xi][si] > kSaturationBacklog;
}

const Panel* ResultsDoc::panel(const std::string& name) const {
  for (const Panel& p : panels) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// JSON serialization

namespace {

Json number_or_null(double v) {
  return std::isfinite(v) ? Json(v) : Json();
}

Json string_array(const std::vector<std::string>& items) {
  Json arr = Json::array();
  for (const std::string& s : items) arr.push_back(Json(s));
  return arr;
}

std::vector<std::string> strings_from(const Json& arr) {
  std::vector<std::string> out;
  out.reserve(arr.size());
  for (const Json& item : arr.items()) out.push_back(item.as_string());
  return out;
}

const char* kind_name(Panel::Kind kind) {
  switch (kind) {
    case Panel::Kind::kGrid: return "grid";
    case Panel::Kind::kTransient: return "transient";
    case Panel::Kind::kInfo: return "info";
  }
  return "grid";
}

Panel::Kind kind_from_name(const std::string& name) {
  if (name == "grid") return Panel::Kind::kGrid;
  if (name == "transient") return Panel::Kind::kTransient;
  if (name == "info") return Panel::Kind::kInfo;
  throw std::runtime_error("results: unknown panel kind '" + name + "'");
}

}  // namespace

Json to_json(const ResultsDoc& doc) {
  Json root = Json::object();
  const Header& h = doc.header;
  root.set("schema", Json(h.schema));
  root.set("experiment", Json(h.experiment));
  root.set("title", Json(h.title));
  root.set("paper_ref", Json(h.paper_ref));
  root.set("topology", Json(h.topology));
  root.set("scale", Json(h.scale));
  root.set("nodes", Json(static_cast<double>(h.nodes)));
  root.set("config_hash", Json(h.config_hash));
  // Schema-additive shard metadata: absent for serial runs so existing
  // goldens and v1/v2 readers are untouched.
  if (h.engine_threads != 1) {
    root.set("engine_threads", Json(static_cast<double>(h.engine_threads)));
    root.set("config_hash_serial", Json(h.config_hash_serial));
  }
  root.set("git_rev", Json(h.git_rev));
  root.set("seed", Json(static_cast<double>(h.seed)));
  root.set("warmup", Json(static_cast<double>(h.warmup)));
  root.set("measure", Json(static_cast<double>(h.measure)));
  root.set("reps", Json(static_cast<double>(h.reps)));

  Json panels = Json::array();
  for (const Panel& panel : doc.panels) {
    Json p = Json::object();
    p.set("name", Json(panel.name));
    p.set("kind", Json(kind_name(panel.kind)));
    if (panel.kind == Panel::Kind::kInfo) {
      p.set("columns", string_array(panel.columns));
      Json rows = Json::array();
      for (const auto& row : panel.cells) rows.push_back(string_array(row));
      p.set("rows", std::move(rows));
    } else {
      p.set("x_label", Json(panel.x_label));
      p.set("x_labels", string_array(panel.x_labels));
      Json xs = Json::array();
      for (const double v : panel.x_values) xs.push_back(number_or_null(v));
      p.set("x_values", std::move(xs));
      p.set("series", string_array(panel.series));
      Json metrics = Json::object();
      for (const auto& [name, rows] : panel.metrics) {
        Json table = Json::array();
        for (const auto& row : rows) {
          Json r = Json::array();
          for (const double v : row) r.push_back(number_or_null(v));
          table.push_back(std::move(r));
        }
        metrics.set(name, std::move(table));
      }
      p.set("metrics", std::move(metrics));
    }
    if (!panel.notes.empty()) p.set("notes", string_array(panel.notes));
    panels.push_back(std::move(p));
  }
  root.set("panels", std::move(panels));
  return root;
}

ResultsDoc doc_from_json(const Json& json) {
  ResultsDoc doc;
  Header& h = doc.header;
  h.schema = json.get("schema").as_string();
  if (h.schema != kSchemaVersion && h.schema != kSchemaVersionLegacy) {
    throw std::runtime_error("results: unsupported schema '" + h.schema +
                             "' (want " + kSchemaVersion + " or " +
                             kSchemaVersionLegacy + ")");
  }
  h.experiment = json.get("experiment").as_string();
  h.title = json.get_string("title");
  h.paper_ref = json.get_string("paper_ref");
  h.topology = json.get_string("topology");
  h.scale = json.get_string("scale");
  h.nodes = static_cast<std::int32_t>(json.get_number("nodes"));
  h.config_hash = json.get_string("config_hash");
  h.engine_threads =
      static_cast<std::int32_t>(json.get_number("engine_threads", 1));
  h.config_hash_serial = json.get_string("config_hash_serial", "");
  h.git_rev = json.get_string("git_rev");
  h.seed = static_cast<std::uint64_t>(json.get_number("seed", 1));
  h.warmup = static_cast<Cycle>(json.get_number("warmup"));
  h.measure = static_cast<Cycle>(json.get_number("measure"));
  h.reps = static_cast<std::int32_t>(json.get_number("reps", 1));

  for (const Json& p : json.get("panels").items()) {
    Panel panel;
    panel.name = p.get("name").as_string();
    panel.kind = kind_from_name(p.get("kind").as_string());
    if (panel.kind == Panel::Kind::kInfo) {
      panel.columns = strings_from(p.get("columns"));
      for (const Json& row : p.get("rows").items()) {
        panel.cells.push_back(strings_from(row));
      }
    } else {
      panel.x_label = p.get_string("x_label");
      panel.x_labels = strings_from(p.get("x_labels"));
      for (const Json& v : p.get("x_values").items()) {
        panel.x_values.push_back(v.is_number() ? v.as_number() : kNaN);
      }
      panel.series = strings_from(p.get("series"));
      if (panel.x_values.size() != panel.x_labels.size()) {
        throw std::runtime_error("results: panel '" + panel.name +
                                 "': x_values/x_labels size mismatch");
      }
      for (const auto& [name, table] : p.get("metrics").members()) {
        std::vector<std::vector<double>> rows;
        for (const Json& row : table.items()) {
          std::vector<double> r;
          r.reserve(row.size());
          for (const Json& v : row.items()) {
            r.push_back(v.is_number() ? v.as_number() : kNaN);
          }
          // Reject ragged/truncated documents here so downstream consumers
          // (renderer, gates) can index by x/series position safely.
          if (r.size() != panel.series.size()) {
            throw std::runtime_error("results: panel '" + panel.name +
                                     "' metric '" + name +
                                     "': row width != series count");
          }
          rows.push_back(std::move(r));
        }
        if (rows.size() != panel.x_labels.size()) {
          throw std::runtime_error("results: panel '" + panel.name +
                                   "' metric '" + name +
                                   "': row count != x tick count");
        }
        panel.metrics.emplace_back(name, std::move(rows));
      }
    }
    if (const Json* notes = p.find("notes")) {
      panel.notes = strings_from(*notes);
    }
    doc.panels.push_back(std::move(panel));
  }
  return doc;
}

namespace {

/// RFC-4180 escaping: labels like "HOTSPOT(n=9,f=0.30)" carry commas.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_csv(const ResultsDoc& doc, std::ostream& os) {
  os << "experiment,panel,metric,x,series,value\n";
  for (const Panel& panel : doc.panels) {
    if (panel.kind == Panel::Kind::kInfo) continue;
    for (const auto& [metric, rows] : panel.metrics) {
      for (std::size_t xi = 0; xi < rows.size(); ++xi) {
        for (std::size_t si = 0; si < rows[xi].size(); ++si) {
          os << csv_field(doc.header.experiment) << ','
             << csv_field(panel.name) << ',' << csv_field(metric) << ','
             << csv_field(xi < panel.x_labels.size() ? panel.x_labels[xi]
                                                     : std::string{})
             << ','
             << csv_field(si < panel.series.size() ? panel.series[si]
                                                   : std::string{})
             << ',';
          if (std::isfinite(rows[xi][si])) {
            os << Json::number_to_string(rows[xi][si]);
          }
          os << '\n';
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical config text + hash

std::string canonical_params_text(const SimParams& p) {
  std::string out;
  auto line = [&out](const std::string& key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  };
  auto i32 = [&line](const std::string& key, std::int32_t v) {
    line(key, std::to_string(v));
  };
  auto f64 = [&line](const std::string& key, double v) {
    line(key, Json::number_to_string(v));
  };
  auto boolean = [&line](const std::string& key, bool v) {
    line(key, v ? "true" : "false");
  };

  line("topology", to_string(p.topology));
  i32("topo.p", p.topo.p);
  i32("topo.a", p.topo.a);
  i32("topo.h", p.topo.h);
  i32("fbfly.k", p.fbfly.k);
  i32("fbfly.n", p.fbfly.n);
  i32("fbfly.c", p.fbfly.c);
  i32("torus.k", p.torus.k);
  i32("torus.n", p.torus.n);
  i32("torus.c", p.torus.c);
  i32("router.pipeline_cycles", p.router.pipeline_cycles);
  i32("router.speedup", p.router.speedup);
  i32("router.vcs_local", p.router.vcs_local);
  i32("router.vcs_global", p.router.vcs_global);
  i32("router.vcs_injection", p.router.vcs_injection);
  i32("router.buf_output_phits", p.router.buf_output_phits);
  i32("router.buf_local_phits", p.router.buf_local_phits);
  i32("router.buf_global_phits", p.router.buf_global_phits);
  i32("router.injection_queue_packets", p.router.injection_queue_packets);
  boolean("router.through_priority", p.router.through_priority);
  i32("link.local_latency", p.link.local_latency);
  i32("link.global_latency", p.link.global_latency);
  line("routing.kind", to_string(p.routing.kind));
  i32("routing.contention_threshold", p.routing.contention_threshold);
  i32("routing.hybrid_contention_threshold",
      p.routing.hybrid_contention_threshold);
  i32("routing.ectn_combined_threshold", p.routing.ectn_combined_threshold);
  i32("routing.ectn_update_period",
      static_cast<std::int32_t>(p.routing.ectn_update_period));
  i32("routing.counter_saturation", p.routing.counter_saturation);
  f64("routing.olm_credit_fraction", p.routing.olm_credit_fraction);
  f64("routing.hybrid_credit_fraction", p.routing.hybrid_credit_fraction);
  i32("routing.pb_ugal_threshold", p.routing.pb_ugal_threshold);
  line("routing.global_policy",
       p.routing.global_policy == GlobalMisroutePolicy::kMmL ? "MM+L" : "CRG");
  boolean("routing.allow_local_misroute", p.routing.allow_local_misroute);
  boolean("routing.statistical_trigger", p.routing.statistical_trigger);
  i32("routing.statistical_window", p.routing.statistical_window);
  line("traffic.kind", to_string(p.traffic.kind));
  f64("traffic.load", p.traffic.load);
  i32("traffic.adv_offset", p.traffic.adv_offset);
  f64("traffic.mixed_uniform_fraction", p.traffic.mixed_uniform_fraction);
  i32("traffic.shift_offset", p.traffic.shift_offset);
  i32("traffic.hotspot_count", p.traffic.hotspot_count);
  f64("traffic.hotspot_fraction", p.traffic.hotspot_fraction);
  line("traffic.injection", to_string(p.traffic.injection));
  f64("traffic.burst_factor", p.traffic.burst_factor);
  f64("traffic.burst_len", p.traffic.burst_len);
  if (!p.traffic.trace_path.empty()) {
    line("traffic.trace_path", p.traffic.trace_path);
  }
  f64("traffic.inorder_fraction", p.traffic.inorder_fraction);
  i32("packet_size_phits", p.packet_size_phits);
  line("seed", std::to_string(p.seed));
  // Fault overlay, emitted only when enabled: healthy configs keep their
  // exact pre-fault canonical text (and hash), so pinned hashes and v1
  // goldens stay valid.
  if (p.fault.enabled) {
    boolean("fault.enabled", true);
    line("fault.seed", std::to_string(p.fault.seed));
    i32("fault.onset", static_cast<std::int32_t>(p.fault.onset));
    f64("fault.link_fail_fraction", p.fault.link_fail_fraction);
    line("fault.link_class", p.fault.link_class);
    i32("fault.flap_period", static_cast<std::int32_t>(p.fault.flap_period));
    i32("fault.flap_down", static_cast<std::int32_t>(p.fault.flap_down));
    f64("fault.router_fail_fraction", p.fault.router_fail_fraction);
    f64("fault.degrade_fraction", p.fault.degrade_fraction);
    i32("fault.degrade_latency", p.fault.degrade_latency);
    i32("fault.hop_cap", p.fault.hop_cap);
  }
  // Telemetry and tracing follow the fault-axis precedent: observability
  // knobs only enter the hash when enabled, so hashes of uninstrumented
  // runs never move when the observability layer grows.
  if (p.telemetry.enabled) {
    boolean("telemetry.enabled", true);
    i32("telemetry.sample_period",
        static_cast<std::int32_t>(p.telemetry.sample_period));
    i32("telemetry.max_samples", p.telemetry.max_samples);
  }
  if (p.trace.enabled) {
    boolean("trace.enabled", true);
    line("trace.seed", std::to_string(p.trace.seed));
    f64("trace.sample_rate", p.trace.sample_rate);
    i32("trace.max_events", static_cast<std::int32_t>(p.trace.max_events));
  }
  // Notification plane (ARN family), same gating discipline: configs that
  // never enable it keep their exact pre-notification hashes.
  if (p.notify.enabled) {
    boolean("notify.enabled", true);
    f64("notify.threshold", p.notify.threshold);
    i32("notify.update_period",
        static_cast<std::int32_t>(p.notify.update_period));
    i32("notify.propagation_delay",
        static_cast<std::int32_t>(p.notify.propagation_delay));
    i32("notify.expiry", static_cast<std::int32_t>(p.notify.expiry));
    boolean("notify.throttle_injection", p.notify.throttle_injection);
  }
  // Sharded execution, emitted only off-default: serial configs keep their
  // exact pre-sharding canonical text (and hash). Thread count is in the
  // hash because parallel results are deterministic per (seed, threads) but
  // not bit-identical across thread counts.
  if (p.engine.threads != 1) {
    i32("engine.threads", p.engine.threads);
  }
  return out;
}

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string current_git_rev() {
  std::string rev = "unknown";
  if (FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe)) {
      rev.assign(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
      if (rev.empty()) rev = "unknown";
    }
    ::pclose(pipe);
  }
  return rev;
}

}  // namespace dfsim::report
