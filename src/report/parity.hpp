// Paper-parity regression gates over results documents:
//  * trend gates — qualitative claims the reproduction must keep (MIN
//    collapses on ADV+1, VAL respects its 0.5 bound, ECtN keeps its latency
//    win, counter triggers adapt faster than credit triggers), evaluated on
//    any scale;
//  * golden gates — tolerance-banded numeric comparison against a committed
//    reference curve produced at the same scale/seed/cycle budget.
#pragma once

#include <string>
#include <vector>

#include "report/schema.hpp"

namespace dfsim::report {

enum class GateStatus : std::uint8_t { kPass, kFail, kSkip };

struct GateOutcome {
  std::string experiment;
  std::string gate;
  GateStatus status = GateStatus::kSkip;
  std::string detail;
};

/// Evaluates the registered trend gates for this experiment (none -> empty).
[[nodiscard]] std::vector<GateOutcome> check_trend_gates(const ResultsDoc& doc);

/// Cell-by-cell comparison: pass when |a-b| <= abs_tol + rel_tol*max(|a|,|b|)
/// (transient panels get doubled tolerances — per-birth-window means are
/// noisier). Latency cells where either side is saturated (backlog_per_node
/// beyond kSaturationBacklog) are skipped, matching how the paper cuts its
/// curves. Mismatched settings (scale/seed/cycles) skip the comparison;
/// a config-hash mismatch at identical settings FAILS — the config drifted
/// and the goldens must be regenerated deliberately.
[[nodiscard]] std::vector<GateOutcome> check_against_golden(
    const ResultsDoc& doc, const ResultsDoc& golden, double rel_tol = 0.05,
    double abs_tol = 0.05);

[[nodiscard]] bool all_passed(const std::vector<GateOutcome>& outcomes);

[[nodiscard]] std::string to_string(GateStatus status);

}  // namespace dfsim::report
