#include "report/runner.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

#include "engine/sweep.hpp"

namespace dfsim::report {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The standard steady-state metric set captured for every grid cell.
/// misrouted/minpath shares are stored as percentages (paper units).
const std::vector<std::string>& steady_metric_names() {
  static const std::vector<std::string> kNames{
      "latency_avg",    "latency_p50",     "latency_p95",
      "latency_p99",    "throughput",      "misrouted_pct",
      "local_misrouted_pct", "minpath_pct", "backlog_per_node",
      "generated_load", "latency_overflow",
      // Fault-overlay columns — all exactly 0 for healthy runs. Golden
      // comparison iterates the *golden's* metric list, so pre-fault goldens
      // stay valid without regeneration.
      "dropped_pct",    "undeliverable_pct", "dead_traversals",
      "conservation_error", "timed_out"};
  return kNames;
}

std::vector<double> steady_metric_values(const SteadyResult& r) {
  return {r.latency_avg,
          r.latency_p50,
          r.latency_p95,
          r.latency_p99,
          r.throughput,
          100.0 * r.misrouted_fraction,
          100.0 * r.local_misrouted_fraction,
          100.0 * r.minimal_path_fraction,
          r.backlog_per_node,
          r.generated_load,
          r.latency_overflow,
          r.dropped_pct,
          r.undeliverable_pct,
          r.dead_traversals,
          r.conservation_error,
          r.timed_out};
}

}  // namespace

std::string format_fixed(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Panel run_grid_panel(const std::string& name, const std::string& x_label,
                     const SimParams& base, const std::vector<GridTick>& ticks,
                     const std::vector<GridSeries>& series,
                     const SteadyOptions& options, int threads) {
  std::vector<SweepPoint> points;
  points.reserve(ticks.size() * series.size());
  for (const GridTick& tick : ticks) {
    for (const GridSeries& line : series) {
      SweepPoint pt{base, options};
      if (tick.mutate) tick.mutate(pt.params);
      if (line.mutate) line.mutate(pt.params);
      points.push_back(std::move(pt));
    }
  }
  const std::vector<SteadyResult> results = run_sweep(points, threads);

  Panel panel;
  panel.name = name;
  panel.kind = Panel::Kind::kGrid;
  panel.x_label = x_label;
  for (const GridTick& tick : ticks) {
    panel.x_labels.push_back(tick.label);
    panel.x_values.push_back(tick.value);
  }
  for (const GridSeries& line : series) panel.series.push_back(line.label);

  const auto& metric_names = steady_metric_names();
  panel.metrics.reserve(metric_names.size());
  for (const std::string& metric : metric_names) {
    panel.metrics.emplace_back(
        metric, std::vector<std::vector<double>>(
                    ticks.size(), std::vector<double>(series.size(), kNaN)));
  }
  for (std::size_t xi = 0; xi < ticks.size(); ++xi) {
    for (std::size_t si = 0; si < series.size(); ++si) {
      const std::vector<double> values =
          steady_metric_values(results[xi * series.size() + si]);
      for (std::size_t mi = 0; mi < values.size(); ++mi) {
        panel.metrics[mi].second[xi][si] = values[mi];
      }
    }
  }
  return panel;
}

std::vector<GridTick> load_ticks(const std::vector<double>& loads,
                                 int precision) {
  std::vector<GridTick> ticks;
  ticks.reserve(loads.size());
  for (const double load : loads) {
    ticks.push_back(GridTick{
        format_fixed(load, precision), load,
        [load](SimParams& p) { p.traffic.load = load; }});
  }
  return ticks;
}

std::vector<GridSeries> mechanism_series(
    const std::vector<RoutingKind>& mechanisms) {
  std::vector<GridSeries> series;
  series.reserve(mechanisms.size());
  for (const RoutingKind kind : mechanisms) {
    series.push_back(GridSeries{
        to_string(kind), [kind](SimParams& p) { p.routing.kind = kind; }});
  }
  return series;
}

Panel run_load_grid(const std::string& name, const SimParams& base,
                    const std::vector<RoutingKind>& mechanisms,
                    const std::vector<double>& loads,
                    const SteadyOptions& options, int threads) {
  return run_grid_panel(name, "load", base, load_ticks(loads),
                        mechanism_series(mechanisms), options, threads);
}

Panel run_transient_panel(const std::string& name,
                          const std::vector<TransientSeries>& series,
                          const TransientOptions& options, Cycle step,
                          Cycle window) {
  std::vector<TransientResult> results(series.size(),
                                       TransientResult(options.pre, options.post));
  {
    // One thread per series: each run_transient is single-threaded and the
    // series count is small (<= 6), so this mirrors the sweep fan-out.
    std::vector<std::thread> workers;
    workers.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      workers.emplace_back([&, i] {
        results[i] = run_transient(series[i].params, options);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  Panel panel;
  panel.name = name;
  panel.kind = Panel::Kind::kTransient;
  panel.x_label = "cycle";
  for (const TransientSeries& line : series) {
    panel.series.push_back(line.label);
  }
  std::vector<std::vector<double>> latency;
  std::vector<std::vector<double>> misrouted;
  std::vector<std::vector<double>> p99;
  for (Cycle t = -options.pre; t < options.post; t += step) {
    panel.x_labels.push_back(std::to_string(t));
    panel.x_values.push_back(static_cast<double>(t));
    std::vector<double> lat_row(series.size(), kNaN);
    std::vector<double> mis_row(series.size(), kNaN);
    std::vector<double> p99_row(series.size(), kNaN);
    for (std::size_t si = 0; si < series.size(); ++si) {
      lat_row[si] = results[si].latency_at(t, window);
      mis_row[si] = results[si].misrouted_pct_at(t, window);
      p99_row[si] = results[si].latency_p99_at(t, window);
    }
    latency.push_back(std::move(lat_row));
    misrouted.push_back(std::move(mis_row));
    p99.push_back(std::move(p99_row));
  }
  panel.metrics.emplace_back("latency_avg", std::move(latency));
  panel.metrics.emplace_back("misrouted_pct", std::move(misrouted));
  // Schema-additive: golden comparison iterates the golden's metric list,
  // so transient goldens recorded before this column stay valid.
  panel.metrics.emplace_back("latency_p99", std::move(p99));
  return panel;
}

std::string traffic_label(const TrafficParams& traffic) {
  std::string label = to_string(traffic.kind);
  switch (traffic.kind) {
    case TrafficKind::kAdversarial:
      label += "+";
      label += std::to_string(traffic.adv_offset);
      break;
    case TrafficKind::kMixed:
      label += "(un=";
      label += format_fixed(traffic.mixed_uniform_fraction, 2);
      label += ")";
      break;
    case TrafficKind::kShift:
      label += "(";
      label += std::to_string(traffic.shift_offset);
      label += ")";
      break;
    case TrafficKind::kHotspot:
      label += "(n=";
      label += std::to_string(traffic.hotspot_count);
      label += ",f=";
      label += format_fixed(traffic.hotspot_fraction, 2);
      label += ")";
      break;
    case TrafficKind::kTrace:
      label += "(";
      label += traffic.trace_path;
      label += ")";
      break;
    default:
      break;
  }
  if (traffic.injection == InjectionProcess::kBursty) label += "+bursty";
  return label;
}

}  // namespace dfsim::report
