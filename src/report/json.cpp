#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dfsim::report {

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  expect(Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::get(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == 0.0) return "0";  // normalize -0.0 as well
  // Integers up to 2^53 print exactly without an exponent or fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest %.*g form that survives strtod round-trip.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

void Json::write(std::string& out, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: out += number_to_string(number_); return;
    case Type::kString: write_escaped(out, string_); return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars stay on one line; nested containers get one
      // element per line (keeps metric rows compact and panels readable).
      bool scalar_only = true;
      for (const Json& item : items_) {
        if (item.is_array() || item.is_object()) {
          scalar_only = false;
          break;
        }
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (scalar_only) {
          if (i) out += ", ";
        } else {
          if (i) out += ',';
          out += '\n';
          indent(out, depth + 1);
        }
        items_[i].write(out, depth + 1);
      }
      if (!scalar_only) {
        out += '\n';
        indent(out, depth);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        out += '\n';
        indent(out, depth + 1);
        write_escaped(out, object_[i].first);
        out += ": ";
        object_[i].second.write(out, depth + 1);
      }
      out += '\n';
      indent(out, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json();
    }
    return number();
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode the
          // BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0') fail("bad number '" + token + "'");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace dfsim::report
