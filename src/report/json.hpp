// Minimal self-contained JSON value for the results pipeline: ordered
// objects (insertion order is preserved so document layout is stable),
// a strict parser, and a canonical writer. The writer formats numbers with
// the shortest representation that round-trips through strtod, so
// emit -> parse -> re-emit is byte-identical — the property the golden
// files and the schema round-trip test rely on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dfsim::report {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(std::int64_t v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const {
    expect(Type::kBool);
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    expect(Type::kNumber);
    return number_;
  }
  [[nodiscard]] const std::string& as_string() const {
    expect(Type::kString);
    return string_;
  }

  // -- arrays
  void push_back(Json v) {
    expect(Type::kArray);
    items_.push_back(std::move(v));
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Json& at(std::size_t i) const {
    expect(Type::kArray);
    return items_.at(i);
  }
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  // -- objects
  /// Insert-or-assign; preserves first-insertion order.
  Json& set(const std::string& key, Json value);
  /// nullptr when the key is absent (or this is not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Throws std::runtime_error naming the missing key.
  [[nodiscard]] const Json& get(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return object_;
  }

  // -- convenience typed lookups with fallback
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback = 0.0) const;

  /// Canonical serialization: 2-space indent, keys in insertion order,
  /// shortest round-trip number formatting, "\n"-terminated at top level.
  [[nodiscard]] std::string dump() const;

  /// Strict JSON parse; throws std::runtime_error with an offset on error.
  [[nodiscard]] static Json parse(const std::string& text);

  /// Shortest string that strtod parses back to exactly `v`. Non-finite
  /// values serialize as null (they mean "no data" throughout the schema).
  [[nodiscard]] static std::string number_to_string(double v);

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong type access");
  }
  void write(std::string& out, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace dfsim::report
