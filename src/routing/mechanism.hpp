// Pluggable routing-mechanism layer.
//
// Every misrouting decision family the paper compares (MIN/VAL/UGAL-L/
// UGAL-G/PB/OLM/Base/Hybrid/ECtN) is one RoutingMechanism instance living in
// src/routing/; the engine (src/engine/simulator.cpp) owns queues, credits,
// links, allocation and delivery, and dispatches through this interface
// only — it holds no RoutingKind switch (CHK-DISPATCH) and no mechanism
// state. Mechanism selection happens exactly once, in make_mechanism
// (factory.hpp).
//
// Contract, mirroring the engine's bit-exactness rule (ARCHITECTURE.md):
//  - RNG-draw discipline: a mechanism draws ONLY from the `rng` reference the
//    engine passes in (the owning shard's routing stream), only inside the
//    decision the engine asked for, and every draw site is allowlisted in
//    tools/dfsim_check/rng_sites.txt under the `routing` stream. Parameters
//    must be named `rng` so CHK-RNG can see the sites.
//  - Per-shard state slice: decide_* is invoked only for routers the calling
//    shard owns; update() receives the shard's [r_lo, r_hi) range and may
//    write only state slices that are disjoint per shard (the engine fences
//    the update window with barriers — see "Sharded execution").
//  - Remote reads go through EngineProbe::probe_occupancy_phits, which
//    serves the live value for owned routers and the cycle-start snapshot
//    for remote ones; mechanisms never touch engine queue state directly.
//  - The shared contention counters are owned HERE (every mechanism carries
//    them: telemetry gauges and the ECtN overhead monitor read them even
//    under MIN), maintained by the engine's head/tail hooks.
//
// Decision flow per packet:
//  - decide_injection: once, when an unrouted packet becomes head of an
//    injection queue (engine pre-checks: mechanism opted in, not in-order,
//    a nonminimal option applies).
//  - decide_transit: at every head event while the topology's in-transit
//    policy allows (engine pre-checks: mechanism opted in, not already
//    globally misrouted / in-order, min_channel >= 0).
//  - local_detour_fires: trigger half of the opportunistic local detour; the
//    engine keeps the port-selection loop (it owns link/credit state).
#pragma once

#include <cstdint>
#include <memory>

#include "core/contention_counters.hpp"
#include "core/triggers.hpp"
#include "sim/config.hpp"
#include "telemetry/telemetry_sink.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dfsim::routing {

/// Read-only view of engine state a mechanism may consult. Implemented by
/// Simulator (privately); mechanisms hold it by const reference and never
/// see queue internals. `shard` is the calling shard's index — remote
/// routers' live credit state is unreadable mid-cycle, so probe reads serve
/// the cycle-start snapshot for them (serial: always the live value).
class EngineProbe {
 public:
  /// Buffered phits queued at the downstream of (r, out); 0 for ejection.
  [[nodiscard]] virtual std::int32_t occupancy_phits(RouterId r,
                                                     PortIndex out) const = 0;
  /// Reference capacity for occupancy-fraction triggers (one VC buffer).
  [[nodiscard]] virtual std::int32_t port_capacity_phits(
      PortIndex out) const = 0;
  /// occupancy_phits through the cycle-start snapshot when `r` belongs to
  /// another shard; the live value — serial behavior — otherwise.
  [[nodiscard]] virtual std::int32_t probe_occupancy_phits(
      std::int32_t shard, RouterId r, PortIndex out) const = 0;
  /// Free credits on the VC a packet in state `vc_state` would take on
  /// (r, out) — the per-VC complement of occupancy_phits (OLM's blocked
  /// test). Only meaningful for non-phase-0 packets on owned routers.
  [[nodiscard]] virtual std::int32_t free_credits(
      RouterId r, PortIndex out, std::int8_t vc_state) const = 0;
  /// Extra serialization latency the fault overlay currently imposes on
  /// (r, out); 0 whenever faults are disabled.
  [[nodiscard]] virtual std::int32_t fault_extra_latency(
      RouterId r, PortIndex out) const = 0;
  /// True when the fault overlay is active (mechanisms then add the
  /// observable degradation to their path-latency estimates).
  [[nodiscard]] virtual bool fault_overlay() const = 0;

 protected:
  ~EngineProbe() = default;
};

/// The single credit-occupancy congestion test shared by every mechanism
/// (OLM's deep-buffer trigger, Hybrid's credit half, PB's remote link
/// state, local-detour triggers). Local and remote reads go through the
/// same probe so the two can never drift apart: for routers the calling
/// shard owns, probe_occupancy_phits IS the live occupancy.
[[nodiscard]] inline bool credit_fires(const EngineProbe& eng,
                                       std::int32_t shard, RouterId r,
                                       PortIndex out, double fraction) {
  return CreditOccupancyTrigger{fraction}.fires(
      eng.probe_occupancy_phits(shard, r, out), eng.port_capacity_phits(out));
}

/// Outcome of an injection-time or in-transit decision. For in-transit
/// decisions the engine attributes the cause itself (kTrigger at the source
/// router, kInTransit beyond it), so only injection deciders set `cause`.
struct Decision {
  bool misroute = false;
  telemetry::MisrouteCause cause = telemetry::MisrouteCause::kValiant;
  NonminCandidate cand{};
};

class RoutingMechanism {
 public:
  RoutingMechanism(const SimParams& params, const Topology& topo,
                   const EngineProbe& engine);
  virtual ~RoutingMechanism();
  RoutingMechanism(const RoutingMechanism&) = delete;
  RoutingMechanism& operator=(const RoutingMechanism&) = delete;

  // --- contention counters (engine head/tail hooks; hot path, non-virtual)
  void on_head(std::int32_t flat) { counters_.on_head(flat); }
  void on_tail_departure(std::int32_t flat) {
    counters_.on_tail_departure(flat);
  }
  [[nodiscard]] std::int32_t counter_value(std::int32_t flat) const {
    return counters_.value(flat);
  }

  // --- capabilities (constant per instance; the engine caches them at
  // construction so disabled paths cost one predicted branch)
  /// Mechanism decides global misrouting when a packet is injected.
  [[nodiscard]] virtual bool decides_at_injection() const { return false; }
  /// Mechanism re-decides at head events in transit (also gates the
  /// opportunistic local detour, which only the in-transit family uses).
  [[nodiscard]] virtual bool decides_in_transit() const { return false; }
  /// Mechanism reads remote routers' occupancy, so sharded runs must
  /// publish the cycle-start snapshot (Simulator::snap_on_).
  [[nodiscard]] virtual bool wants_remote_probes() const { return false; }
  /// Mechanism may refuse injections (admit_injection consulted per packet).
  [[nodiscard]] virtual bool throttles_injection() const { return false; }

  // --- decisions
  virtual Decision decide_injection(Rng& rng, Cycle now, std::int32_t shard,
                                    RouterId r, NodeId dst);
  virtual Decision decide_transit(Rng& rng, std::int32_t shard, RouterId r,
                                  NodeId dst, std::int8_t vc_state,
                                  PortIndex min_port, std::int32_t min_channel);
  /// Trigger half of the opportunistic local detour at (r, requested port);
  /// the engine runs the port-selection loop when this fires.
  [[nodiscard]] virtual bool local_detour_fires(Rng& rng, std::int32_t shard,
                                                RouterId r, PortIndex rp);
  /// Consulted per generated packet when throttles_injection(); refusing
  /// counts the packet as refused (same accounting as a full queue).
  [[nodiscard]] virtual bool admit_injection(Cycle now, RouterId r,
                                             NodeId dst) const;

  // --- per-cycle update window (the engine barriers around it when
  // sharded; shards call update() for their own [r_lo, r_hi) ranges and
  // every shard observes the same update_due schedule)
  [[nodiscard]] virtual bool update_due(Cycle now) const;
  virtual void update(Cycle now, std::int32_t shard, RouterId r_lo,
                      RouterId r_hi);

 protected:
  [[nodiscard]] std::int32_t flat_port(RouterId r, PortIndex port) const {
    return r * radix_ + port;
  }
  /// HopEstimate in cycles under this run's link latencies.
  [[nodiscard]] Cycle hops_to_latency(const HopEstimate& est) const {
    return static_cast<Cycle>(est.local_hops) * link_.local_latency +
           static_cast<Cycle>(est.global_hops) * link_.global_latency;
  }
  /// Scored candidate sampling over the topology's nonminimal pool:
  /// contention counters plus candidate_bias() plus (optionally) local
  /// occupancy; false when no candidate was drawn.
  [[nodiscard]] bool pick_misroute_channel(Rng& rng, RouterId r, NodeId dst,
                                           bool use_occupancy,
                                           NonminCandidate& best);
  /// Additional per-candidate score a mechanism contributes (ECtN: the
  /// remote-contention snapshot for the candidate's channel). Default 0.
  [[nodiscard]] virtual std::int64_t candidate_bias(
      RouterId r, const NonminCandidate& c) const;
  /// The UGAL comparison: min-path queue*latency vs candidate queue*latency
  /// plus the configured threshold offset (fault degradation and — with
  /// global_info — remote probe terms included).
  [[nodiscard]] bool ugal_prefers_misroute(std::int32_t shard, RouterId r,
                                           NodeId dst,
                                           const NonminCandidate& cand,
                                           bool global_info) const;
  /// pick_misroute_channel wrapped as an (uncaused) transit Decision.
  [[nodiscard]] Decision transit_decision(Rng& rng, RouterId r, NodeId dst,
                                          bool use_occupancy);

  const RoutingParams params_;
  const LinkParams link_;
  const Topology& topo_;
  const EngineProbe& eng_;
  ContentionCounters counters_;
  const std::int32_t radix_;
  const std::int32_t fwd_;
  const std::int32_t psize_;
  const bool fault_on_;
};

}  // namespace dfsim::routing
