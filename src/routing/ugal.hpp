// Source-adaptive UGAL family: UGAL-L (local credit estimates), UGAL-G
// (idealized remote queue knowledge via the topology's probe points) and
// Piggyback (UGAL-L plus the piggybacked remote link-state flag for the
// minimal route). All decide once, at injection.
#pragma once

#include "routing/mechanism.hpp"

namespace dfsim::routing {

class UgalMechanism : public RoutingMechanism {
 public:
  UgalMechanism(const SimParams& params, const Topology& topo,
                const EngineProbe& engine, bool global_info)
      : RoutingMechanism(params, topo, engine), global_info_(global_info) {}

  [[nodiscard]] bool decides_at_injection() const override { return true; }
  [[nodiscard]] bool wants_remote_probes() const override {
    return global_info_;
  }
  Decision decide_injection(Rng& rng, Cycle now, std::int32_t shard,
                            RouterId r, NodeId dst) override;

 private:
  bool global_info_;
};

class PiggybackMechanism final : public RoutingMechanism {
 public:
  using RoutingMechanism::RoutingMechanism;

  [[nodiscard]] bool decides_at_injection() const override { return true; }
  [[nodiscard]] bool wants_remote_probes() const override { return true; }
  Decision decide_injection(Rng& rng, Cycle now, std::int32_t shard,
                            RouterId r, NodeId dst) override;
};

}  // namespace dfsim::routing
