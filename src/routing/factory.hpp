// The one place that maps RoutingKind to a RoutingMechanism instance. The
// engine calls this once at construction and dispatches through the
// interface from then on (CHK-DISPATCH keeps RoutingKind out of the engine).
#pragma once

#include <memory>

#include "routing/mechanism.hpp"

namespace dfsim::routing {

/// Instantiates the mechanism `params.routing.kind` selects. Throws
/// std::invalid_argument when the topology cannot satisfy the mechanism's
/// preconditions (ECtN off-dragonfly).
[[nodiscard]] std::unique_ptr<RoutingMechanism> make_mechanism(
    const SimParams& params, const Topology& topo, const EngineProbe& engine);

}  // namespace dfsim::routing
