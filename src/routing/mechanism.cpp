#include "routing/mechanism.hpp"

#include <algorithm>

namespace dfsim::routing {

RoutingMechanism::RoutingMechanism(const SimParams& params,
                                   const Topology& topo,
                                   const EngineProbe& engine)
    : params_(params.routing),
      link_(params.link),
      topo_(topo),
      eng_(engine),
      counters_(topo.routers() * topo.radix(),
                params.routing.counter_saturation),
      radix_(topo.radix()),
      fwd_(topo.forward_ports()),
      psize_(std::max(1, params.packet_size_phits)),
      fault_on_(engine.fault_overlay()) {}

RoutingMechanism::~RoutingMechanism() = default;

Decision RoutingMechanism::decide_injection(Rng&, Cycle, std::int32_t,
                                            RouterId, NodeId) {
  return {};
}

Decision RoutingMechanism::decide_transit(Rng&, std::int32_t, RouterId, NodeId,
                                          std::int8_t, PortIndex,
                                          std::int32_t) {
  return {};
}

bool RoutingMechanism::local_detour_fires(Rng&, std::int32_t, RouterId,
                                          PortIndex) {
  return false;
}

bool RoutingMechanism::admit_injection(Cycle, RouterId, NodeId) const {
  return true;
}

bool RoutingMechanism::update_due(Cycle) const { return false; }

void RoutingMechanism::update(Cycle, std::int32_t, RouterId, RouterId) {}

std::int64_t RoutingMechanism::candidate_bias(RouterId,
                                              const NonminCandidate&) const {
  return 0;
}

bool RoutingMechanism::pick_misroute_channel(Rng& rng, RouterId r, NodeId dst,
                                             bool use_occupancy,
                                             NonminCandidate& best) {
  // Target number of distinct scored options per decision (the paper's CRG
  // candidate set size at its h=8 router; pools at or below this are
  // enumerated exhaustively).
  constexpr std::int32_t kCandidates = 4;

  const bool crg = params_.global_policy == GlobalMisroutePolicy::kCrg;
  const std::int32_t pool_size = topo_.nonmin_pool_size(r, crg);
  if (!topo_.nonmin_viable(r, dst, crg)) return false;

  bool have = false;
  std::int64_t best_score = 0;
  NonminCandidate cand;
  const auto consider = [&](const NonminCandidate& c) {
    std::int64_t score = counters_.value(flat_port(r, c.first_hop));
    score += candidate_bias(r, c);
    if (use_occupancy) {
      score += eng_.occupancy_phits(r, c.first_hop) / psize_;
    }
    if (!have || score < best_score) {
      have = true;
      best = c;
      best_score = score;
    }
  };

  if (pool_size <= kCandidates) {
    // Small pool (e.g. CRG with few global channels per router): enumerate
    // every distinct option. Sampling WITH replacement here double-scored
    // duplicates and compared fewer distinct options than the paper's CRG
    // candidate set.
    for (std::int32_t i = 0; i < pool_size; ++i) {
      if (topo_.nonmin_candidate_at(r, dst, crg, i, cand)) consider(cand);
    }
    return have;
  }

  // Large pool: sample DISTINCT candidates — duplicates are never scored
  // twice and burn a draw slot, with one spare draw beyond the target so a
  // single duplicate/minimal hit still yields a full candidate set. The
  // budget is deliberately tight: chasing full distinctness harder
  // (e.g. 2x draws) measurably herds saturated traffic onto the momentary
  // argmin channel on topologies whose candidate scores are near-uniform
  // (fbfly/torus adversarial saturation loses ~5-10% throughput), while
  // one retry recovers the lost comparison diversity on the dragonfly
  // without that side effect.
  std::int32_t seen[kCandidates];
  std::int32_t n_seen = 0;
  for (std::int32_t draw = 0;
       draw < kCandidates + 1 && n_seen < kCandidates; ++draw) {
    if (!topo_.sample_nonmin(rng, r, dst, crg, cand)) continue;
    bool duplicate = false;
    for (std::int32_t s = 0; s < n_seen; ++s) {
      duplicate |= seen[s] == cand.channel;
    }
    if (duplicate) continue;
    seen[n_seen++] = cand.channel;
    consider(cand);
  }
  return have;
}

bool RoutingMechanism::ugal_prefers_misroute(std::int32_t shard, RouterId r,
                                             NodeId dst,
                                             const NonminCandidate& cand,
                                             bool global_info) const {
  const RouterId dr = topo_.router_of_node(dst);

  const PortIndex min_port = topo_.minimal_output(r, dst);
  std::int64_t q_min = eng_.occupancy_phits(r, min_port);
  Cycle h_min = std::max<Cycle>(1, hops_to_latency(topo_.min_hops(r, dr)));

  std::int64_t q_val = eng_.occupancy_phits(r, cand.first_hop);
  Cycle h_val = hops_to_latency(topo_.nonmin_hops(r, cand, dr));

  if (fault_on_) {
    // Degradation the deciding router can observe: extra serialization on
    // each option's first hop raises that path's latency estimate.
    if (min_port >= 0 && min_port < fwd_) {
      h_min += eng_.fault_extra_latency(r, min_port);
    }
    if (cand.first_hop >= 0 && cand.first_hop < fwd_) {
      h_val += eng_.fault_extra_latency(r, cand.first_hop);
    }
  }

  if (global_info) {
    // Add the remote queues the idealized-global variant may consult —
    // unless a term is this router's own first hop, already counted above.
    RemoteProbe probe;
    if (topo_.min_remote_probe(r, dst, probe)) {
      q_min += eng_.probe_occupancy_phits(shard, probe.router, probe.port);
    }
    if (topo_.nonmin_remote_probe(r, cand, probe)) {
      q_val += eng_.probe_occupancy_phits(shard, probe.router, probe.port);
    }
  }
  const std::int64_t threshold =
      static_cast<std::int64_t>(params_.pb_ugal_threshold) * psize_;
  return q_min * h_min > q_val * h_val + threshold * h_min;
}

Decision RoutingMechanism::transit_decision(Rng& rng, RouterId r, NodeId dst,
                                            bool use_occupancy) {
  Decision dec;
  NonminCandidate cand;
  if (pick_misroute_channel(rng, r, dst, use_occupancy, cand)) {
    dec.misroute = true;
    dec.cand = cand;
  }
  return dec;
}

}  // namespace dfsim::routing
