#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/contention.hpp"
#include "routing/notification.hpp"
#include "routing/oblivious.hpp"
#include "routing/ugal.hpp"

namespace dfsim::routing {

std::unique_ptr<RoutingMechanism> make_mechanism(const SimParams& params,
                                                 const Topology& topo,
                                                 const EngineProbe& engine) {
  switch (params.routing.kind) {
    case RoutingKind::kMin:
      return std::make_unique<MinMechanism>(params, topo, engine);
    case RoutingKind::kValiant:
      return std::make_unique<ValiantMechanism>(params, topo, engine);
    case RoutingKind::kUgalL:
      return std::make_unique<UgalMechanism>(params, topo, engine, false);
    case RoutingKind::kUgalG:
      return std::make_unique<UgalMechanism>(params, topo, engine, true);
    case RoutingKind::kPiggyback:
      return std::make_unique<PiggybackMechanism>(params, topo, engine);
    case RoutingKind::kOlm:
      return std::make_unique<OlmMechanism>(params, topo, engine);
    case RoutingKind::kCbBase:
      return std::make_unique<CbBaseMechanism>(params, topo, engine);
    case RoutingKind::kCbHybrid:
      return std::make_unique<CbHybridMechanism>(params, topo, engine);
    case RoutingKind::kCbEctn:
      return std::make_unique<EctnMechanism>(params, topo, engine);
    case RoutingKind::kArn:
      return std::make_unique<ArnMechanism>(params, topo, engine);
  }
  throw std::invalid_argument("unknown routing kind");
}

}  // namespace dfsim::routing
