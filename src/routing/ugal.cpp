#include "routing/ugal.hpp"

namespace dfsim::routing {

Decision UgalMechanism::decide_injection(Rng& rng, Cycle, std::int32_t shard,
                                         RouterId r, NodeId dst) {
  Decision dec;
  NonminCandidate cand;
  if (pick_misroute_channel(rng, r, dst, /*use_occupancy=*/true, cand) &&
      ugal_prefers_misroute(shard, r, dst, cand, global_info_)) {
    dec.misroute = true;
    dec.cause = telemetry::MisrouteCause::kUgal;
    dec.cand = cand;
  }
  return dec;
}

Decision PiggybackMechanism::decide_injection(Rng& rng, Cycle,
                                              std::int32_t shard, RouterId r,
                                              NodeId dst) {
  // Remote link-state flag for the minimal route (piggybacked state in the
  // paper; read directly here) OR the local UGAL estimate.
  RemoteProbe probe;
  const bool min_congested =
      topo_.min_link_probe(r, dst, probe) &&
      credit_fires(eng_, shard, probe.router, probe.port,
                   params_.olm_credit_fraction);
  Decision dec;
  NonminCandidate cand;
  if (pick_misroute_channel(rng, r, dst, /*use_occupancy=*/true, cand) &&
      (min_congested ||
       ugal_prefers_misroute(shard, r, dst, cand, false))) {
    dec.misroute = true;
    // The piggybacked flag gets its own cause so heatmap per-cause panels
    // can separate PB's remote-state misroutes from the UGAL estimate's.
    dec.cause = min_congested ? telemetry::MisrouteCause::kPiggyback
                              : telemetry::MisrouteCause::kUgal;
    dec.cand = cand;
  }
  return dec;
}

}  // namespace dfsim::routing
