#include "routing/notification.hpp"

#include <stdexcept>

namespace dfsim::routing {

ArnMechanism::ArnMechanism(const SimParams& params, const Topology& topo,
                           const EngineProbe& engine)
    : RoutingMechanism(params, topo, engine), notify_(params.notify) {
  if (!notify_.enabled) {
    throw std::invalid_argument(
        "ARN routing needs notify.enabled = true (without the notification "
        "plane it would silently degenerate to MIN)");
  }
  const auto slots =
      static_cast<std::size_t>(topo.routers()) *
      static_cast<std::size_t>(topo.radix());
  active_at_.assign(slots, -1);
  expires_at_.assign(slots, 0);
}

Decision ArnMechanism::decide_injection(Rng& rng, Cycle now, std::int32_t,
                                        RouterId r, NodeId dst) {
  decision_now_ = now;
  // The candidate pick always runs so the RNG draw count per decision
  // stays fixed (bit-exactness rule) even when the route is not hot.
  const bool min_hot = min_route_notified(now, r, dst);
  Decision dec;
  NonminCandidate cand;
  if (pick_misroute_channel(rng, r, dst, /*use_occupancy=*/true, cand) &&
      min_hot) {
    dec.misroute = true;
    dec.cause = telemetry::MisrouteCause::kNotify;
    dec.cand = cand;
  }
  return dec;
}

std::int64_t ArnMechanism::candidate_bias(RouterId r,
                                          const NonminCandidate& c) const {
  // Steer the candidate pick away from first hops that are themselves
  // under a live notification; the penalty weighs like a saturated
  // contention counter, so un-notified candidates win ties decisively.
  return notified(decision_now_, r, c.first_hop)
             ? static_cast<std::int64_t>(params_.counter_saturation)
             : 0;
}

bool ArnMechanism::min_route_notified(Cycle now, RouterId r,
                                      NodeId dst) const {
  // Two probe points cover the minimal route: the first hop out of the
  // source (where injection backlog pools — the hot buffers under an
  // adversarial pattern sit on the links INTO the bottleneck router, which
  // the flagged-link probe alone cannot see) and the minimal route's
  // flagged remote link (PB's probe point). Either being under a live
  // notification marks the route hot.
  const PortIndex first = topo_.minimal_output(r, dst);
  if (first < fwd_ && notified(now, r, first)) return true;
  RemoteProbe probe;
  return topo_.min_link_probe(r, dst, probe) &&
         notified(now, probe.router, probe.port);
}

bool ArnMechanism::admit_injection(Cycle now, RouterId r, NodeId dst) const {
  return !min_route_notified(now, r, dst);
}

bool ArnMechanism::update_due(Cycle now) const {
  return notify_.update_period > 0 && now % notify_.update_period == 0;
}

void ArnMechanism::update(Cycle now, std::int32_t shard, RouterId r_lo,
                          RouterId r_hi) {
  // Scan own routers' forward links; a hot link's slot is refreshed, a
  // cool one keeps its previous schedule and decays by expiry alone (no
  // retraction message in the ARN design). Writes stay inside this
  // shard's [r_lo, r_hi) slice — disjoint across shards by construction.
  for (RouterId r = r_lo; r < r_hi; ++r) {
    for (PortIndex out = 0; out < fwd_; ++out) {
      if (!credit_fires(eng_, shard, r, out, notify_.threshold)) continue;
      const auto fp = static_cast<std::size_t>(flat_port(r, out));
      const Cycle live_at = now + notify_.propagation_delay;
      // A fresh (or lapsed) notification pays the propagation delay; a
      // refresh of a pending/live one only extends its expiry — resetting
      // active_at_ would push activation ahead of every scan and the
      // notification would never go live at scan periods <= the delay.
      if (active_at_[fp] < 0 || now >= expires_at_[fp]) {
        active_at_[fp] = live_at;
      }
      expires_at_[fp] = live_at + notify_.expiry;
    }
  }
}

}  // namespace dfsim::routing
