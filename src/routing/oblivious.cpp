#include "routing/oblivious.hpp"

namespace dfsim::routing {

Decision ValiantMechanism::decide_injection(Rng& rng, Cycle, std::int32_t,
                                            RouterId r, NodeId dst) {
  Decision dec;
  NonminCandidate cand;
  if (topo_.sample_valiant(rng, r, dst, cand)) {
    dec.misroute = true;
    dec.cause = telemetry::MisrouteCause::kValiant;
    dec.cand = cand;
  }
  return dec;
}

}  // namespace dfsim::routing
