// In-transit mechanism family (the paper's contributions plus OLM): decide
// at every head event wherever the topology's in-transit policy allows, and
// participate in the opportunistic local detour.
//
//  - OLM: credit-triggered — fire when the minimal output is actually out
//    of credits or, on deep global buffers, past an occupancy fraction.
//  - Base: contention-counter threshold trigger (optionally statistical).
//  - Hybrid: Base's trigger OR a lower counter threshold agreeing with a
//    credit-occupancy test.
//  - ECtN: Base's trigger OR own counter + the group-broadcast snapshot of
//    the minimal channel's remote contention past a combined threshold;
//    candidate scoring adds the snapshot term (candidate_bias), and the
//    snapshot refreshes in the engine's barrier-fenced update window.
#pragma once

#include "core/ectn_state.hpp"
#include "routing/mechanism.hpp"

namespace dfsim::routing {

/// Shared base of the in-transit family: opts into transit decisions and
/// the local detour, and owns the Base threshold trigger every member
/// (except OLM, which overrides the detour trigger) consults.
class TransitMechanism : public RoutingMechanism {
 public:
  TransitMechanism(const SimParams& params, const Topology& topo,
                   const EngineProbe& engine)
      : RoutingMechanism(params, topo, engine),
        base_trigger_{params.routing.contention_threshold,
                      params.routing.statistical_trigger,
                      params.routing.statistical_window} {}

  [[nodiscard]] bool decides_in_transit() const override { return true; }
  [[nodiscard]] bool local_detour_fires(Rng& rng, std::int32_t shard,
                                        RouterId r, PortIndex rp) override;

 protected:
  ContentionThresholdTrigger base_trigger_;
};

class OlmMechanism final : public TransitMechanism {
 public:
  using TransitMechanism::TransitMechanism;

  Decision decide_transit(Rng& rng, std::int32_t shard, RouterId r, NodeId dst,
                          std::int8_t vc_state, PortIndex min_port,
                          std::int32_t min_channel) override;
  [[nodiscard]] bool local_detour_fires(Rng& rng, std::int32_t shard,
                                        RouterId r, PortIndex rp) override;
};

class CbBaseMechanism final : public TransitMechanism {
 public:
  using TransitMechanism::TransitMechanism;

  Decision decide_transit(Rng& rng, std::int32_t shard, RouterId r, NodeId dst,
                          std::int8_t vc_state, PortIndex min_port,
                          std::int32_t min_channel) override;
};

class CbHybridMechanism final : public TransitMechanism {
 public:
  CbHybridMechanism(const SimParams& params, const Topology& topo,
                    const EngineProbe& engine)
      : TransitMechanism(params, topo, engine),
        hybrid_trigger_{params.routing.hybrid_contention_threshold, false, 0} {}

  Decision decide_transit(Rng& rng, std::int32_t shard, RouterId r, NodeId dst,
                          std::int8_t vc_state, PortIndex min_port,
                          std::int32_t min_channel) override;

 private:
  ContentionThresholdTrigger hybrid_trigger_;
};

class EctnMechanism final : public TransitMechanism {
 public:
  /// Throws std::invalid_argument when the topology lacks ECtN broadcast
  /// support (construction contract pinned by test_routing_mechanisms).
  EctnMechanism(const SimParams& params, const Topology& topo,
                const EngineProbe& engine);

  Decision decide_transit(Rng& rng, std::int32_t shard, RouterId r, NodeId dst,
                          std::int8_t vc_state, PortIndex min_port,
                          std::int32_t min_channel) override;
  [[nodiscard]] bool update_due(Cycle now) const override;
  void update(Cycle now, std::int32_t shard, RouterId r_lo,
              RouterId r_hi) override;

 private:
  [[nodiscard]] std::int64_t candidate_bias(
      RouterId r, const NonminCandidate& c) const override;

  EctnSnapshot ectn_;
};

}  // namespace dfsim::routing
