#include "routing/contention.hpp"

#include <stdexcept>

namespace dfsim::routing {

bool TransitMechanism::local_detour_fires(Rng& rng, std::int32_t, RouterId r,
                                          PortIndex rp) {
  return base_trigger_.fires(counters_.value(flat_port(r, rp)), rng);
}

Decision OlmMechanism::decide_transit(Rng& rng, std::int32_t shard, RouterId r,
                                      NodeId dst, std::int8_t vc_state,
                                      PortIndex min_port, std::int32_t) {
  // Opportunistic: misroute when the minimal output is actually out of
  // credits (blocked) or, on the large global buffers, past the occupancy
  // fraction. Credit exhaustion is what ties OLM's response time to the
  // buffer depth (Figure 8).
  const bool blocked = eng_.free_credits(r, min_port, vc_state) <= 0;
  const bool deep = topo_.port_class(min_port) == PortClass::kGlobalClass &&
                    credit_fires(eng_, shard, r, min_port,
                                 params_.olm_credit_fraction);
  if (!blocked && !deep) return {};
  return transit_decision(rng, r, dst, /*use_occupancy=*/true);
}

bool OlmMechanism::local_detour_fires(Rng&, std::int32_t shard, RouterId r,
                                      PortIndex rp) {
  return credit_fires(eng_, shard, r, rp, params_.olm_credit_fraction);
}

Decision CbBaseMechanism::decide_transit(Rng& rng, std::int32_t, RouterId r,
                                         NodeId dst, std::int8_t,
                                         PortIndex min_port, std::int32_t) {
  if (!base_trigger_.fires(counters_.value(flat_port(r, min_port)), rng)) {
    return {};
  }
  return transit_decision(rng, r, dst, /*use_occupancy=*/false);
}

Decision CbHybridMechanism::decide_transit(Rng& rng, std::int32_t shard,
                                           RouterId r, NodeId dst, std::int8_t,
                                           PortIndex min_port, std::int32_t) {
  // Base's full-threshold trigger, plus an earlier escape hatch when a
  // lower contention threshold and credit occupancy agree — misroutes a
  // little sooner than Base, never less.
  const std::int32_t counter = counters_.value(flat_port(r, min_port));
  const bool fire = base_trigger_.fires(counter, rng) ||
                    (hybrid_trigger_.fires(counter, rng) &&
                     credit_fires(eng_, shard, r, min_port,
                                  params_.hybrid_credit_fraction));
  if (!fire) return {};
  return transit_decision(rng, r, dst, /*use_occupancy=*/true);
}

EctnMechanism::EctnMechanism(const SimParams& params, const Topology& topo,
                             const EngineProbe& engine)
    : TransitMechanism(params, topo, engine) {
  if (!topo.supports_ectn()) {
    throw std::invalid_argument(
        "ECtN routing needs a topology with contention-broadcast support "
        "(dragonfly); pick Base/Hybrid here");
  }
  ectn_.resize(topo.ectn_domains(), topo.ectn_channels());
}

Decision EctnMechanism::decide_transit(Rng& rng, std::int32_t, RouterId r,
                                       NodeId dst, std::int8_t,
                                       PortIndex min_port,
                                       std::int32_t min_channel) {
  const std::int32_t own = counters_.value(flat_port(r, min_port));
  const bool fire = base_trigger_.fires(own, rng) ||
                    own + ectn_.value(topo_.ectn_domain(r), min_channel) >=
                        params_.ectn_combined_threshold;
  if (!fire) return {};
  return transit_decision(rng, r, dst, /*use_occupancy=*/false);
}

std::int64_t EctnMechanism::candidate_bias(RouterId r,
                                           const NonminCandidate& c) const {
  return ectn_.value(topo_.ectn_domain(r), c.channel);
}

bool EctnMechanism::update_due(Cycle now) const {
  const Cycle period = params_.ectn_update_period;
  return period > 0 && now % period == 0;
}

void EctnMechanism::update(Cycle, std::int32_t, RouterId r_lo, RouterId r_hi) {
  // Each router's slots map to distinct (domain, channel) cells (the
  // dragonfly assigns channel local_index * h + i), so shards write
  // disjoint parts of the snapshot; the engine's barriers order the writes
  // against every reader.
  const std::int32_t slots = topo_.ectn_router_slots();
  for (RouterId r = r_lo; r < r_hi; ++r) {
    for (std::int32_t i = 0; i < slots; ++i) {
      const EctnSlot slot = topo_.ectn_slot(r, i);
      ectn_.set(slot.domain, slot.channel,
                counters_.value(flat_port(r, slot.port)));
    }
  }
}

}  // namespace dfsim::routing
