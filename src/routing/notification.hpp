// ARN: the adaptive-routing-notification mechanism family (arxiv
// 2502.00616, with the injection-throttling variant of arxiv 2502.00597).
//
// Every notify.update_period cycles each router scans its own forward
// links; a link whose downstream occupancy exceeds notify.threshold of its
// buffer broadcasts a congestion notification. The notification becomes
// live at every source notify.propagation_delay cycles later and expires
// notify.expiry cycles after arrival unless a later scan refreshes it —
// there is no retraction message, staleness is the only decay (the ARN
// papers' design point, and the reason the mechanism reacts to onsets fast
// but releases pressure only on the expiry timescale).
//
// Decisions are injection-time only: a source misroutes a packet (UGAL-style
// candidate pick, biased away from notified first hops) when its minimal
// route crosses a live-notified link — the first hop out of the source or
// the route's flagged remote link — tagged MisrouteCause::kNotify. The
// throttle variant additionally refuses such injections outright.
//
// Sharded execution: the scan runs inside the engine's barrier-fenced
// mechanism-update window — each shard writes only its own routers'
// notification slots (disjoint), and every shard reads the full table
// outside the window (cross-shard reads see values fenced by the update
// barriers, so (seed, threads) byte-reproducibility holds).
#pragma once

#include <vector>

#include "routing/mechanism.hpp"

namespace dfsim::routing {

class ArnMechanism final : public RoutingMechanism {
 public:
  /// Throws std::invalid_argument unless params.notify.enabled — ARN with
  /// the notification plane off would silently degenerate to MIN.
  ArnMechanism(const SimParams& params, const Topology& topo,
               const EngineProbe& engine);

  [[nodiscard]] bool decides_at_injection() const override { return true; }
  [[nodiscard]] bool wants_remote_probes() const override { return true; }
  [[nodiscard]] bool throttles_injection() const override {
    return notify_.throttle_injection;
  }

  Decision decide_injection(Rng& rng, Cycle now, std::int32_t shard,
                            RouterId r, NodeId dst) override;
  [[nodiscard]] bool admit_injection(Cycle now, RouterId r,
                                     NodeId dst) const override;

  [[nodiscard]] bool update_due(Cycle now) const override;
  void update(Cycle now, std::int32_t shard, RouterId r_lo,
              RouterId r_hi) override;

  /// True while the notification for (r, out) is live at the sources:
  /// arrived (now >= active cycle) and not yet expired. Exposed for tests.
  [[nodiscard]] bool notified(Cycle now, RouterId r, PortIndex out) const {
    const auto fp = static_cast<std::size_t>(flat_port(r, out));
    return active_at_[fp] >= 0 && now >= active_at_[fp] &&
           now < expires_at_[fp];
  }

 private:
  /// Whether the minimal route for (r, dst) crosses a live-notified link:
  /// the first hop out of the source or the flagged remote link.
  [[nodiscard]] bool min_route_notified(Cycle now, RouterId r,
                                        NodeId dst) const;

  [[nodiscard]] std::int64_t candidate_bias(
      RouterId r, const NonminCandidate& c) const override;

  const NotifyParams notify_;
  // Per-(router, forward port) notification slots, flat_port-indexed:
  // the cycle the latest broadcast goes live at the sources and the cycle
  // it expires. -1 = never notified. Written only by the owning shard
  // inside the update window; read by every shard outside it.
  std::vector<Cycle> active_at_;
  std::vector<Cycle> expires_at_;
  // Decision-time cycle, cached by decide_injection so candidate_bias
  // (called from pick_misroute_channel) can test liveness.
  Cycle decision_now_ = 0;
};

}  // namespace dfsim::routing
