// Oblivious mechanisms: minimal routing (no decision at all — the shared
// contention counters still run, feeding telemetry and the ECtN overhead
// monitor) and Valiant (uniform-random intermediate, misroutes every
// eligible packet at injection).
#pragma once

#include "routing/mechanism.hpp"

namespace dfsim::routing {

class MinMechanism final : public RoutingMechanism {
 public:
  using RoutingMechanism::RoutingMechanism;
};

class ValiantMechanism final : public RoutingMechanism {
 public:
  using RoutingMechanism::RoutingMechanism;

  [[nodiscard]] bool decides_at_injection() const override { return true; }
  Decision decide_injection(Rng& rng, Cycle now, std::int32_t shard,
                            RouterId r, NodeId dst) override;
};

}  // namespace dfsim::routing
