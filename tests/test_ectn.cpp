// ECtN overhead: the analytic estimate reproduces the paper's Section VI-B
// numbers at Table I scale, and the live monitor's encodings behave sanely.
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "core/ectn_state.hpp"

int main() {
  using namespace dfsim;

  // Paper scale: a=16, h=8 -> 128 counters x 4 bits = 512 bits = 6.4 phits
  // per update; at a 100-cycle period that is 6.4% of a 1 phit/cycle link —
  // the paper's "~6 phits, ~6%" estimate.
  {
    const EctnOverheadEstimate est = estimate_ectn_overhead(presets::paper());
    assert(est.counters == 128);
    assert(est.bits_per_counter == 4);
    assert(est.payload_bits == 512);
    assert(std::abs(est.phits - 6.4) < 1e-9);
    assert(std::abs(est.bandwidth_fraction - 0.064) < 1e-9);
  }

  // Monitor: all-zero counters -> nonempty/incremental encodings cost 0,
  // full always pays the array.
  {
    EctnOverheadMonitor monitor;
    monitor.configure(/*routers=*/2, /*counters=*/4, /*bits=*/4, /*id_bits=*/5,
                      /*async_mult=*/2, /*urgent_delta=*/3);
    const std::vector<std::int16_t> zeros(4, 0);
    monitor.on_update(0, zeros.data());
    monitor.on_update(1, zeros.data());
    EctnOverheadReport rep = monitor.report();
    assert(rep.avg_bits_full == 16.0);  // 4 counters x 4 bits
    assert(rep.avg_bits_nonempty == 0.0);
    assert(rep.avg_bits_incremental == 0.0);
    assert(rep.async_urgent_messages == 0);
  }

  // Monitor: a counter jumping past the urgent delta between full
  // broadcasts produces an urgent message; a stable pattern makes the
  // incremental encoding free again.
  {
    EctnOverheadMonitor monitor;
    monitor.configure(1, 4, 4, 5, /*async_mult=*/4, /*urgent_delta=*/3);
    std::vector<std::int16_t> values(4, 0);
    monitor.on_update(0, values.data());  // update 0: full broadcast
    values[2] = 5;                        // jump >= delta
    monitor.on_update(0, values.data());  // update 1: urgent
    monitor.on_update(0, values.data());  // update 2: stable -> nothing
    const EctnOverheadReport rep = monitor.report();
    assert(rep.async_urgent_messages == 1);
    // Incremental paid only for the one change: (4+5 bits)/3 updates.
    assert(std::abs(rep.avg_bits_incremental - 9.0 / 3.0) < 1e-9);
    // Nonempty pays for the single hot counter on updates 1 and 2.
    assert(std::abs(rep.avg_bits_nonempty - 18.0 / 3.0) < 1e-9);
    // Overhead helper: 16 bits on an 80-bit phit link every 100 cycles.
    assert(std::abs(rep.overhead_fraction(80, 100, 16.0) - 0.002) < 1e-9);
  }

  return EXIT_SUCCESS;
}
