// Sharded-engine parity suite (ROADMAP item 1).
//
// (1) threads = 1 must be the serial engine, bit for bit: an explicit
//     engine.threads = 1 run reproduces the default-constructed engine's
//     SteadyResult exactly for every mechanism on all three topologies.
//     (The absolute numbers are pinned by test_engine_equivalence's
//     18-row golden table, which runs with the default engine params —
//     keeping that suite green is the other half of this property.)
// (2) Deterministic-parallel goldens: a sharded run is a pure function of
//     (params, seed, engine.threads). Every randomized configuration is run
//     twice at the same shard count and must match bit for bit, including
//     the fault-overlay conservation columns.
// (3) Cross-shard-count parity: threads = k is NOT bit-exact vs threads = 1
//     (per-shard RNG streams, one-cycle cross-shard credit return,
//     occupancy-snapshot staleness — see ARCHITECTURE.md), but it simulates
//     the same physical network: offered load matches closely and accepted
//     throughput lands within a seed-variation band. Hard invariants
//     (packet conservation, zero dead-link traversals) hold exactly.
// (4) Structural invariants: debug_check_active_state() after a sharded run
//     — per-shard summary masks and due-link heaps, pool accounting across
//     shard-id ranges, lifetime conservation.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "engine/experiment.hpp"
#include "engine/simulator.hpp"
#include "sim/config.hpp"
#include "util/rng.hpp"

namespace {

using namespace dfsim;

bool bitwise_equal(const SteadyResult& a, const SteadyResult& b) {
  return a.throughput == b.throughput && a.latency_avg == b.latency_avg &&
         a.latency_p50 == b.latency_p50 && a.latency_p95 == b.latency_p95 &&
         a.latency_p99 == b.latency_p99 &&
         a.misrouted_fraction == b.misrouted_fraction &&
         a.local_misrouted_fraction == b.local_misrouted_fraction &&
         a.minimal_path_fraction == b.minimal_path_fraction &&
         a.backlog_per_node == b.backlog_per_node &&
         a.generated_load == b.generated_load &&
         a.dropped_pct == b.dropped_pct &&
         a.undeliverable_pct == b.undeliverable_pct &&
         a.dead_traversals == b.dead_traversals &&
         a.conservation_error == b.conservation_error;
}

SimParams base_params(int topo_pick) {
  switch (topo_pick) {
    case 0: return presets::tiny();
    case 1: return presets::fbfly(4, 2, 4);
    default: return presets::torus(8, 2, 2);
  }
}

SteadyResult run_cfg(const SimParams& p, std::int32_t threads) {
  SimParams q = p;
  q.engine.threads = threads;
  SteadyOptions opt;
  opt.warmup = 300;
  opt.measure = 500;
  return run_steady(q, opt);
}

}  // namespace

int main() {
  // --- (1) explicit threads = 1 is bitwise the default serial engine ------
  for (int topo = 0; topo < 3; ++topo) {
    for (const RoutingKind kind :
         {RoutingKind::kMin, RoutingKind::kUgalL, RoutingKind::kCbBase,
          RoutingKind::kCbHybrid}) {
      SimParams p = base_params(topo);
      p.routing.kind = kind;
      p.traffic.kind = TrafficKind::kAdversarial;
      p.traffic.load = 0.3;
      p.traffic.adv_offset = topo == 2 ? 4 : 1;
      p.seed = 999;
      SimParams serial = p;  // engine params left at their defaults
      const SteadyResult a = run_cfg(p, 1);
      SteadyOptions opt;
      opt.warmup = 300;
      opt.measure = 500;
      const SteadyResult b = run_steady(serial, opt);
      if (!bitwise_equal(a, b)) {
        std::fprintf(stderr, "threads=1 not bit-exact: topo=%d kind=%d\n",
                     topo, static_cast<int>(kind));
        return EXIT_FAILURE;
      }
    }
  }

  // --- (2)+(3) randomized configs: deterministic at fixed shard count,
  // physically consistent across shard counts ------------------------------
  Rng fuzz(0xF0E1D2C3B4A59687ull);
  const RoutingKind kinds[] = {RoutingKind::kMin, RoutingKind::kValiant,
                               RoutingKind::kUgalL, RoutingKind::kUgalG,
                               RoutingKind::kPiggyback, RoutingKind::kOlm,
                               RoutingKind::kCbBase, RoutingKind::kCbHybrid};
  const TrafficKind traffics[] = {TrafficKind::kUniform,
                                  TrafficKind::kAdversarial,
                                  TrafficKind::kShift, TrafficKind::kHotspot};
  const std::int32_t shard_counts[] = {2, 3, 5};
  for (int trial = 0; trial < 12; ++trial) {
    const int topo = static_cast<int>(fuzz.next_below(3));
    SimParams p = base_params(topo);
    p.routing.kind = kinds[fuzz.next_below(8)];
    if (topo != 0 && p.routing.kind == RoutingKind::kUgalG) {
      p.routing.kind = RoutingKind::kUgalL;  // remote probes: dragonfly only
    }
    p.traffic.kind = traffics[fuzz.next_below(4)];
    p.traffic.load = 0.1 + 0.05 * static_cast<double>(fuzz.next_below(5));
    p.traffic.adv_offset = topo == 2 ? 4 : 1;
    p.seed = 1000 + static_cast<std::uint64_t>(trial);
    if (fuzz.next_bool(0.4)) {
      p.fault.enabled = true;
      p.fault.onset = 400;
      p.fault.link_fail_fraction = 0.05;
      if (topo == 0) p.fault.link_class = "global";
    }
    const std::int32_t threads = shard_counts[fuzz.next_below(3)];

    const SteadyResult serial = run_cfg(p, 1);
    const SteadyResult sharded = run_cfg(p, threads);
    const SteadyResult again = run_cfg(p, threads);
    if (!bitwise_equal(sharded, again)) {
      std::fprintf(stderr,
                   "trial %d: threads=%d run is not deterministic "
                   "(thr %.17g vs %.17g, lat %.17g vs %.17g)\n",
                   trial, threads, sharded.throughput, again.throughput,
                   sharded.latency_avg, again.latency_avg);
      return EXIT_FAILURE;
    }

    // Hard invariants hold exactly in both engines.
    assert(serial.conservation_error == 0.0);
    assert(sharded.conservation_error == 0.0);
    assert(serial.dead_traversals == 0.0);
    assert(sharded.dead_traversals == 0.0);

    // Offered load is the same Bernoulli process over the same node count
    // (different streams): equal in expectation, close in any window.
    const double gen_tol = 0.15 * serial.generated_load + 0.01;
    if (std::fabs(sharded.generated_load - serial.generated_load) > gen_tol) {
      std::fprintf(stderr, "trial %d: generated load %.4f vs %.4f\n", trial,
                   sharded.generated_load, serial.generated_load);
      return EXIT_FAILURE;
    }
    // Accepted throughput: same network, seed-variation band. Saturated
    // configs pin to the same capacity; unsaturated ones to the same load.
    const double thr_tol = 0.2 * serial.throughput + 0.02;
    if (std::fabs(sharded.throughput - serial.throughput) > thr_tol) {
      std::fprintf(stderr, "trial %d: throughput %.4f vs %.4f (t=%d)\n",
                   trial, sharded.throughput, serial.throughput, threads);
      return EXIT_FAILURE;
    }
  }

  // --- (4) structural invariants after a sharded run ----------------------
  for (const std::int32_t threads : {1, 2, 5}) {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kCbBase;
    p.traffic.kind = TrafficKind::kAdversarial;
    p.traffic.load = 0.4;
    p.traffic.adv_offset = 1;
    p.seed = 7;
    p.engine.threads = threads;
    p.fault.enabled = true;
    p.fault.onset = 200;
    p.fault.link_fail_fraction = 0.1;
    p.fault.link_class = "global";
    Simulator sim(p);
    assert(sim.shard_count() == threads);
    sim.run(600);
    assert(sim.debug_check_active_state());
    sim.run(1);  // odd chunking exercises the dispatch path again
    sim.run(399);
    assert(sim.debug_check_active_state());
    assert(sim.conservation_error() == 0);
  }

  // A shard count above the router count clamps instead of leaving shards
  // empty, and keeps every invariant.
  {
    SimParams p = presets::tiny();
    p.traffic.load = 0.2;
    p.engine.threads = 64;  // tiny has 36 routers
    Simulator sim(p);
    assert(sim.shard_count() == 36);
    sim.run(400);
    assert(sim.debug_check_active_state());
  }

  return EXIT_SUCCESS;
}
