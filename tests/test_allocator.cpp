// SeparableAllocator: no double grants, grants match real requests, work
// conservation on contested outputs, and multi-iteration improvement.
#include <cassert>
#include <cstdlib>
#include <vector>

#include "router/allocator.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dfsim;

  // Randomized property check: across many request patterns, every grant is
  // backed by a request and no input or output is granted twice.
  {
    const std::int32_t ports = 8;
    const std::int32_t vcs = 3;
    SeparableAllocator alloc(ports, ports, vcs);
    Rng rng(42);
    for (int round = 0; round < 500; ++round) {
      std::vector<std::vector<AllocRequest>> requests(
          static_cast<std::size_t>(ports));
      for (std::int32_t in = 0; in < ports; ++in) {
        for (VcIndex vc = 0; vc < vcs; ++vc) {
          if (rng.next_bool(0.5)) {
            requests[static_cast<std::size_t>(in)].push_back(AllocRequest{
                vc, static_cast<PortIndex>(rng.next_below(
                        static_cast<std::uint64_t>(ports)))});
          }
        }
      }
      const auto grants = alloc.allocate_iteration(requests);
      std::vector<int> in_granted(static_cast<std::size_t>(ports), 0);
      std::vector<int> out_granted(static_cast<std::size_t>(ports), 0);
      for (const AllocGrant& g : grants) {
        ++in_granted[static_cast<std::size_t>(g.in)];
        ++out_granted[static_cast<std::size_t>(g.out)];
        bool requested = false;
        for (const AllocRequest& req :
             requests[static_cast<std::size_t>(g.in)]) {
          if (req.vc == g.vc && req.out == g.out) requested = true;
        }
        assert(requested);
      }
      for (std::int32_t p = 0; p < ports; ++p) {
        assert(in_granted[static_cast<std::size_t>(p)] <= 1);
        assert(out_granted[static_cast<std::size_t>(p)] <= 1);
      }
    }
  }

  // Work conservation: when every input wants the same single output, the
  // output is granted exactly once per iteration, and round-robin spreads
  // grants across inputs over time.
  {
    const std::int32_t ports = 4;
    SeparableAllocator alloc(ports, ports, 1);
    std::vector<std::vector<AllocRequest>> requests(
        static_cast<std::size_t>(ports));
    for (std::int32_t in = 0; in < ports; ++in) {
      requests[static_cast<std::size_t>(in)].push_back(AllocRequest{0, 2});
    }
    std::vector<int> wins(static_cast<std::size_t>(ports), 0);
    for (int round = 0; round < 64; ++round) {
      const auto grants = alloc.allocate_iteration(requests);
      assert(grants.size() == 1);
      assert(grants[0].out == 2);
      ++wins[static_cast<std::size_t>(grants[0].in)];
    }
    for (std::int32_t in = 0; in < ports; ++in) {
      assert(wins[static_cast<std::size_t>(in)] == 16);  // fair RR
    }
  }

  // A second iteration within a cycle can only add grants (iSLIP-style
  // matching refinement), never duplicate busy ports.
  {
    const std::int32_t ports = 3;
    SeparableAllocator alloc(ports, ports, 2);
    std::vector<std::vector<AllocRequest>> requests(
        static_cast<std::size_t>(ports));
    // Input 0 requests output 0; input 1 requests outputs 0 and 1. In the
    // first iteration both inputs pick output 0 and input 0 wins it; the
    // second iteration lets input 1 fall back to output 1.
    requests[0].push_back(AllocRequest{0, 0});
    requests[1].push_back(AllocRequest{0, 0});
    requests[1].push_back(AllocRequest{1, 1});
    alloc.begin_cycle();
    const auto first = alloc.iterate(requests);
    assert(first.size() == 1);
    alloc.iterate(requests);
    const auto grants = alloc.cycle_grants();
    // Both outputs end up granted across the two iterations.
    assert(grants.size() == 2);
    std::vector<int> out_granted(static_cast<std::size_t>(ports), 0);
    for (const AllocGrant& g : grants) {
      ++out_granted[static_cast<std::size_t>(g.out)];
    }
    assert(out_granted[0] == 1 && out_granted[1] == 1);
  }

  return EXIT_SUCCESS;
}
