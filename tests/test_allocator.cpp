// SeparableAllocator: no double grants, grants match real requests, work
// conservation on contested outputs, multi-iteration improvement, and the
// bounded round-robin counters (wrap at lcm(1..vcs), bit-identical cadence
// to an unbounded counter — the int32-overflow fix).
#include <cassert>
#include <cstdlib>
#include <vector>

#include "router/allocator.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dfsim;

  // Randomized property check: across many request patterns, every grant is
  // backed by a request and no input or output is granted twice.
  {
    const std::int32_t ports = 8;
    const std::int32_t vcs = 3;
    SeparableAllocator alloc(ports, ports, vcs);
    Rng rng(42);
    AllocRequestBatch batch;
    batch.reserve(ports, vcs);
    for (int round = 0; round < 500; ++round) {
      batch.clear();
      std::vector<std::vector<AllocRequest>> requests(
          static_cast<std::size_t>(ports));
      for (std::int32_t in = 0; in < ports; ++in) {
        for (VcIndex vc = 0; vc < vcs; ++vc) {
          if (rng.next_bool(0.5)) {
            const auto out = static_cast<PortIndex>(
                rng.next_below(static_cast<std::uint64_t>(ports)));
            requests[static_cast<std::size_t>(in)].push_back(
                AllocRequest{vc, out});
            batch.add(static_cast<PortIndex>(in), vc, out);
          }
        }
      }
      const auto grants = alloc.allocate_iteration(batch);
      std::vector<int> in_granted(static_cast<std::size_t>(ports), 0);
      std::vector<int> out_granted(static_cast<std::size_t>(ports), 0);
      for (const AllocGrant& g : grants) {
        ++in_granted[static_cast<std::size_t>(g.in)];
        ++out_granted[static_cast<std::size_t>(g.out)];
        bool requested = false;
        for (const AllocRequest& req :
             requests[static_cast<std::size_t>(g.in)]) {
          if (req.vc == g.vc && req.out == g.out) requested = true;
        }
        assert(requested);
      }
      for (std::int32_t p = 0; p < ports; ++p) {
        assert(in_granted[static_cast<std::size_t>(p)] <= 1);
        assert(out_granted[static_cast<std::size_t>(p)] <= 1);
      }
    }
  }

  // Work conservation: when every input wants the same single output, the
  // output is granted exactly once per iteration, and round-robin spreads
  // grants across inputs over time.
  {
    const std::int32_t ports = 4;
    SeparableAllocator alloc(ports, ports, 1);
    AllocRequestBatch batch;
    batch.reserve(ports, 1);
    for (std::int32_t in = 0; in < ports; ++in) {
      batch.add(static_cast<PortIndex>(in), 0, 2);
    }
    std::vector<int> wins(static_cast<std::size_t>(ports), 0);
    for (int round = 0; round < 64; ++round) {
      const auto grants = alloc.allocate_iteration(batch);
      assert(grants.size() == 1);
      assert(grants[0].out == 2);
      ++wins[static_cast<std::size_t>(grants[0].in)];
    }
    for (std::int32_t in = 0; in < ports; ++in) {
      assert(wins[static_cast<std::size_t>(in)] == 16);  // fair RR
    }
  }

  // A second iteration within a cycle can only add grants (iSLIP-style
  // matching refinement), never duplicate busy ports.
  {
    const std::int32_t ports = 3;
    SeparableAllocator alloc(ports, ports, 2);
    AllocRequestBatch batch;
    batch.reserve(ports, 2);
    // Input 0 requests output 0; input 1 requests outputs 0 and 1. In the
    // first iteration both inputs pick output 0 and input 0 wins it; the
    // second iteration lets input 1 fall back to output 1.
    batch.add(0, 0, 0);
    batch.add(1, 0, 0);
    batch.add(1, 1, 1);
    alloc.begin_cycle();
    const auto first = alloc.iterate(batch);
    assert(first.size() == 1);
    alloc.iterate(batch);
    const auto grants = alloc.cycle_grants();
    // Both outputs end up granted across the two iterations.
    assert(grants.size() == 2);
    std::vector<int> out_granted(static_cast<std::size_t>(ports), 0);
    for (const AllocGrant& g : grants) {
      ++out_granted[static_cast<std::size_t>(g.out)];
    }
    assert(out_granted[0] == 1 && out_granted[1] == 1);
  }

  // Bounded input round-robin counter: in_rr wraps at lcm(1..vcs) — force
  // the wrap many times over and check (a) the counter stays inside its
  // bound (no int32 overflow possible) and (b) the VC selection cadence is
  // bit-identical to an ideal unbounded counter even when the per-input
  // request count varies between iterations (1 or 2 requests here).
  {
    const std::int32_t vcs = 3;
    SeparableAllocator alloc(1, 2, vcs);
    assert(alloc.in_rr_wrap() == 6);  // lcm(1, 2, 3)
    AllocRequestBatch batch;
    batch.reserve(1, vcs);
    std::int64_t unbounded = 0;  // the ideal free-running counter
    Rng rng(7);
    for (int round = 0; round < 1000; ++round) {
      batch.clear();
      const bool two = rng.next_bool(0.5);
      const std::int32_t n = two ? 2 : 1;
      batch.add(0, 0, 0);
      if (two) batch.add(0, 1, 1);
      const auto grants = alloc.allocate_iteration(batch);
      assert(grants.size() == 1);
      // Stage 1 picks request (unbounded % n); both outputs are always
      // free, so the stage-1 pick is the grant.
      const auto expected_vc = static_cast<VcIndex>(unbounded % n);
      assert(grants[0].vc == expected_vc);
      ++unbounded;
      assert(alloc.debug_in_rr(0) >= 0 &&
             alloc.debug_in_rr(0) < alloc.in_rr_wrap());  // bounded
      assert(alloc.debug_in_rr(0) == unbounded % alloc.in_rr_wrap());
    }
    // out_rr symmetry audit: the output pointer is advanced modulo
    // in_ports at the single write site (allocator.cpp stage 2), so it is
    // bounded by construction — no wrap fix needed there.
  }

  // Absurd VC counts: lcm(1..23) leaves the 2^30 bound, so the allocator
  // falls back to free-running int64 counters (wrap disabled) instead of
  // silently truncating the bound.
  {
    SeparableAllocator wide(2, 2, 23);
    assert(wide.in_rr_wrap() == 0);
    SeparableAllocator sane(2, 2, 4);
    assert(sane.in_rr_wrap() == 12);  // lcm(1..4)
  }

  return EXIT_SUCCESS;
}
