// CliOptions: flag parsing, numeric fallbacks, and tolerant env parsing
// (the bench/common.cpp DFSIM_WARMUP/DFSIM_MEASURE fix).
#include <cassert>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/cli.hpp"

int main() {
  using namespace dfsim;

  {
    const char* argv[] = {"prog", "--scale=tiny", "--csv", "--warmup=500",
                          "--load=0.35", "positional", "--warmup=800"};
    CliOptions cli(7, const_cast<char**>(argv));
    assert(cli.has("scale"));
    assert(cli.get("scale") == "tiny");
    assert(cli.has("csv"));
    assert(cli.get("csv").empty());
    assert(cli.get_int("warmup", 0) == 800);  // last occurrence wins
    assert(cli.get_double("load", 0.0) == 0.35);
    assert(!cli.has("measure"));
    assert(cli.get_int("measure", 123) == 123);
    assert(cli.get("missing", "fallback") == "fallback");
    assert(cli.positional().size() == 1);
    assert(cli.positional()[0] == "positional");
  }

  // Garbage numeric values fall back instead of throwing.
  {
    const char* argv[] = {"prog", "--warmup=banana", "--load=1.5x"};
    CliOptions cli(3, const_cast<char**>(argv));
    assert(cli.get_int("warmup", 42) == 42);
    assert(cli.get_double("load", 0.5) == 0.5);
  }

  // parse_int/parse_double cover the env paths used by bench/common.cpp.
  assert(CliOptions::parse_int("", 7) == 7);
  assert(CliOptions::parse_int("  ", 7) == 7);
  assert(CliOptions::parse_int("1000", 7) == 1000);
  assert(CliOptions::parse_int("10garbage", 7) == 7);
  assert(CliOptions::parse_int("-250", 7) == -250);
  assert(CliOptions::parse_double("0.25", 1.0) == 0.25);
  assert(CliOptions::parse_double("nope", 1.0) == 1.0);

  // env / env_int: unset, valid, and garbage values.
  unsetenv("DFSIM_TEST_VAR");
  assert(CliOptions::env("DFSIM_TEST_VAR", "dflt") == "dflt");
  assert(CliOptions::env_int("DFSIM_TEST_VAR", 99) == 99);
  setenv("DFSIM_TEST_VAR", "1234", 1);
  assert(CliOptions::env("DFSIM_TEST_VAR", "dflt") == "1234");
  assert(CliOptions::env_int("DFSIM_TEST_VAR", 99) == 1234);
  setenv("DFSIM_TEST_VAR", "not-a-number", 1);
  assert(CliOptions::env_int("DFSIM_TEST_VAR", 99) == 99);
  unsetenv("DFSIM_TEST_VAR");

  return EXIT_SUCCESS;
}
