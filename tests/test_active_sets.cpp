// Active-set invariant suite: the engine's O(active) bookkeeping (queue
// occupancy bits + router summary mask + due-link heap + pool accounting)
// must exactly match a brute-force scan of the dense state on EVERY cycle —
// across all three topologies, under the skewed traffic that churns the
// sets hardest (hotspot destinations with a bursty on/off injection
// process), and through the classic stale-active-list trap: drain the
// network to fully idle, then re-activate it.
//
// debug_check_active_state() performs the brute-force comparison; see
// engine/simulator.hpp. A stale bit (queue drained but still flagged, or
// flagged router with no occupied queue), a missing/duplicated heap entry,
// or a leaked packet all fail the check.
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "engine/simulator.hpp"

namespace {

using namespace dfsim;

SimParams base_for(TopologyKind topo) {
  SimParams p;
  switch (topo) {
    case TopologyKind::kDragonfly:
      p = presets::tiny();
      break;
    case TopologyKind::kFbfly:
      p = presets::fbfly(4, 2, 4);
      break;
    case TopologyKind::kTorus:
      p = presets::torus(8, 2, 2);
      break;
  }
  return p;
}

const char* name_of(TopologyKind topo) {
  switch (topo) {
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kFbfly: return "fbfly";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

int check_every_cycle(Simulator& sim, Cycle cycles, const char* what) {
  for (Cycle c = 0; c < cycles; ++c) {
    sim.step();
    if (!sim.debug_check_active_state()) {
      std::fprintf(stderr, "active-set mismatch: %s at cycle %lld\n", what,
                   static_cast<long long>(sim.now()));
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main() {
  for (const TopologyKind topo :
       {TopologyKind::kDragonfly, TopologyKind::kFbfly, TopologyKind::kTorus}) {
    // --- per-cycle equivalence under hotspot + bursty churn ---------------
    SimParams p = base_for(topo);
    p.routing.kind = RoutingKind::kCbBase;
    // Hot-set sizing keeps the per-hot-node demand just under the 1
    // phit/cycle ejection bound, so the drain below terminates quickly;
    // the saturated drain (slow, long) is covered in test_saturation.
    p.traffic.kind = TrafficKind::kHotspot;
    p.traffic.hotspot_count = 4;
    p.traffic.hotspot_fraction = 0.2;
    p.traffic.injection = InjectionProcess::kBursty;
    p.traffic.load = 0.25;
    p.seed = 31;
    Simulator sim(p);
    if (check_every_cycle(sim, 1500, name_of(topo))) return EXIT_FAILURE;
    assert(sim.metrics().delivered > 0);

    // --- drain to fully idle, then re-activate ----------------------------
    // A queue bit or heap entry that survives the drain (the stale-active
    // state bug) either trips the brute-force check while idle or wrongly
    // schedules work on the first cycles after re-activation.
    TrafficParams off = p.traffic;
    off.load = 0.0;
    sim.set_traffic(off);
    // Generously past the longest in-flight latency at these scales.
    if (check_every_cycle(sim, 6000, "drain")) return EXIT_FAILURE;
    sim.begin_measurement();
    sim.run(50);
    // Fully idle: nothing generated, nothing delivered, no backlog.
    assert(sim.metrics().generated == 0);
    assert(sim.metrics().delivered == 0);
    assert(sim.backlog_per_node() == 0.0);
    assert(sim.debug_check_active_state());

    TrafficParams on = p.traffic;
    on.injection = InjectionProcess::kBernoulli;
    on.kind = TrafficKind::kUniform;
    on.load = 0.3;
    sim.set_traffic(on);
    sim.begin_measurement();
    if (check_every_cycle(sim, 1200, "re-activation")) return EXIT_FAILURE;
    // The network genuinely woke up: traffic flows end to end again.
    assert(sim.metrics().generated > 0);
    assert(sim.metrics().delivered > 0);
  }

  return EXIT_SUCCESS;
}
