// Observability-layer tests: zero-overhead identity (telemetry/tracing/
// profiling compiled in but enabled must not change a single result bit),
// zero allocation after warmup with the sink live, deterministic trace
// sampling with binary and Chrome-JSON round-trips, heatmap counter
// conservation against the engine's lifetime totals, and config-hash gating
// of the telemetry.* / trace.* blocks.
#include <cassert>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/simulator.hpp"
#include "report/json.hpp"
#include "report/schema.hpp"
#include "sim/config.hpp"
#include "sim/config_io.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/packet_trace.hpp"
#include "telemetry/telemetry_sink.hpp"

namespace {

using namespace dfsim;

SimParams base_params() {
  SimParams p = presets::tiny();
  p.seed = 12345;
  p.routing.kind = RoutingKind::kCbBase;
  p.traffic.kind = TrafficKind::kAdversarial;
  p.traffic.adv_offset = 1;
  p.traffic.load = 0.3;
  return p;
}

struct RunResult {
  Simulator::Metrics metrics;
  Simulator::Totals totals;
};

RunResult run_point(const SimParams& p, Cycle warmup = 800,
                    Cycle measure = 1200) {
  Simulator sim(p);
  sim.run(warmup);
  sim.begin_measurement();
  sim.run(measure);
  return {sim.metrics(), sim.lifetime_totals()};
}

void expect_identical(const RunResult& a, const RunResult& b) {
  assert(a.metrics.delivered == b.metrics.delivered);
  assert(a.metrics.delivered_phits == b.metrics.delivered_phits);
  assert(a.metrics.latency_sum == b.metrics.latency_sum);  // bit-exact
  assert(a.metrics.misrouted == b.metrics.misrouted);
  assert(a.metrics.local_misrouted == b.metrics.local_misrouted);
  assert(a.metrics.minimal_path == b.metrics.minimal_path);
  assert(a.metrics.generated == b.metrics.generated);
  assert(a.metrics.refused == b.metrics.refused);
  assert(a.metrics.dropped == b.metrics.dropped);
  assert(a.metrics.undeliverable == b.metrics.undeliverable);
  assert(a.totals.generated == b.totals.generated);
  assert(a.totals.refused == b.totals.refused);
  assert(a.totals.delivered == b.totals.delivered);
  assert(a.totals.dropped == b.totals.dropped);
  assert(a.totals.undeliverable == b.totals.undeliverable);
}

// Telemetry, tracing, and profiling each enabled on top of the same run must
// reproduce the plain run bit-exactly: their hooks never touch the routing
// RNG or any simulation state.
void test_zero_overhead_identity() {
  const SimParams plain = base_params();
  const RunResult reference = run_point(plain);

  SimParams with_telemetry = plain;
  with_telemetry.telemetry.enabled = true;
  with_telemetry.telemetry.sample_period = 50;
  expect_identical(reference, run_point(with_telemetry));

  SimParams with_trace = plain;
  with_trace.trace.enabled = true;
  with_trace.trace.sample_rate = 0.25;
  expect_identical(reference, run_point(with_trace));

  SimParams with_both = plain;
  with_both.telemetry.enabled = true;
  with_both.telemetry.sample_period = 50;
  with_both.trace.enabled = true;
  with_both.trace.sample_rate = 0.25;
  expect_identical(reference, run_point(with_both));

  // Profiled stepping is a wall-clock overlay on the same phase sequence.
  {
    Simulator sim(plain);
    sim.enable_phase_profiler();
    sim.run(800);
    sim.begin_measurement();
    sim.run(1200);
    expect_identical(reference, {sim.metrics(), sim.lifetime_totals()});
    assert(sim.phase_profiler().cycles() == 2000);
    assert(sim.phase_profiler().total_seconds() > 0.0);
  }
  std::cout << "zero-overhead identity ok\n";
}

// The zero-alloc-after-warmup invariant must hold WITH the observability
// layer live: the sink commits into preallocated series and the tracer
// records into its reserved buffer.
void test_zero_alloc_with_telemetry() {
  SimParams p = base_params();
  p.telemetry.enabled = true;
  p.telemetry.sample_period = 25;
  p.telemetry.max_samples = 16;  // force frame-capacity exhaustion too
  p.trace.enabled = true;
  p.trace.sample_rate = 0.5;
  p.trace.max_events = 2000;  // force event-capacity exhaustion too

  Simulator sim(p);
  sim.run(1500);
  const std::int64_t events = sim.allocation_events();
  sim.run(1000);
  assert(sim.allocation_events() == events);
  assert(sim.pool_grow_events() == 0);
  // The capacity guards actually engaged, so the flat allocation count
  // covers the post-exhaustion paths as well.
  assert(sim.telemetry_sink().dropped_frames() > 0);
  assert(sim.packet_tracer().dropped_events() > 0);
  std::cout << "zero-alloc with telemetry on ok\n";
}

// telemetry.* / trace.* must follow the fault-axis hash precedent: absent
// from the canonical params text (and so from the config hash) unless
// enabled, and loadable back through the INI path when present.
void test_config_hash_gating() {
  const SimParams plain = base_params();
  const std::string text = report::canonical_params_text(plain);
  assert(text.find("telemetry.") == std::string::npos);
  assert(text.find("trace.") == std::string::npos);

  SimParams enabled = plain;
  enabled.telemetry.enabled = true;
  enabled.trace.enabled = true;
  const std::string enabled_text = report::canonical_params_text(enabled);
  assert(enabled_text.find("telemetry.enabled = true") != std::string::npos);
  assert(enabled_text.find("telemetry.sample_period") != std::string::npos);
  assert(enabled_text.find("trace.sample_rate") != std::string::npos);
  assert(report::config_hash(plain) != report::config_hash(enabled));

  // Round-trip the enabled text through apply_param (the canonical text is
  // a loadable overlay by contract).
  SimParams reloaded = presets::tiny();
  std::istringstream lines(enabled_text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t eq = line.find('=');
    assert(eq != std::string::npos);
    const std::string key = line.substr(0, eq - 1);
    const std::string value = line.substr(eq + 2);
    apply_param(reloaded, key, value);
  }
  assert(report::config_hash(reloaded) == report::config_hash(enabled));
  std::cout << "config hash gating ok\n";
}

// Same seeds -> same sampled packets and the same event stream; the binary
// format round-trips losslessly; the Chrome export parses as JSON with one
// entry per recorded event.
void test_trace_roundtrip_and_determinism() {
  SimParams p = base_params();
  p.trace.enabled = true;
  p.trace.sample_rate = 0.2;

  auto capture = [&]() {
    Simulator sim(p);
    sim.run(1000);
    return sim.packet_tracer().events();
  };
  const std::vector<telemetry::TraceEvent> events = capture();
  const std::vector<telemetry::TraceEvent> replay = capture();
  assert(!events.empty());
  assert(events.size() == replay.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    assert(events[i].cycle == replay[i].cycle);
    assert(events[i].id == replay[i].id);
    assert(events[i].router == replay[i].router);
    assert(events[i].type == replay[i].type);
    assert(events[i].arg == replay[i].arg);
    assert(events[i].aux == replay[i].aux);
  }

  // Binary round-trip.
  std::stringstream bin;
  telemetry::write_trace_binary(events, 7, bin);
  std::vector<telemetry::TraceEvent> decoded;
  std::int64_t dropped = 0;
  assert(telemetry::read_trace_binary(bin, decoded, dropped));
  assert(dropped == 7);
  assert(decoded.size() == events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    assert(decoded[i].cycle == events[i].cycle);
    assert(decoded[i].id == events[i].id);
    assert(decoded[i].router == events[i].router);
    assert(decoded[i].type == events[i].type);
    assert(decoded[i].arg == events[i].arg);
    assert(decoded[i].aux == events[i].aux);
  }

  // Truncated stream must be rejected, not half-parsed.
  const std::string full = bin.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  assert(!telemetry::read_trace_binary(truncated, decoded, dropped));

  // Chrome trace-event export: valid JSON, one traceEvents entry per event,
  // every lifecycle begin paired or still open (never closed twice).
  std::stringstream chrome;
  telemetry::write_chrome_trace(events, chrome);
  const report::Json doc = report::Json::parse(chrome.str());
  const report::Json& trace_events = doc.get("traceEvents");
  assert(trace_events.is_array());
  assert(trace_events.size() == events.size());
  std::int64_t begins = 0;
  std::int64_t ends = 0;
  for (const report::Json& ev : trace_events.items()) {
    const std::string& ph = ev.get("ph").as_string();
    assert(ph == "b" || ph == "e" || ph == "i");
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
  }
  assert(begins > 0);
  assert(ends <= begins);  // packets still in flight stay open
  std::cout << "trace round-trip + determinism ok (" << events.size()
            << " events)\n";
}

// The sink's lifetime totals must conserve against the engine's own
// accounting exactly, frames or no frames; the heatmap document round-trips
// through the schema JSON.
void test_heatmap_conservation_and_schema() {
  SimParams p = base_params();
  p.routing.kind = RoutingKind::kCbEctn;  // exercises ectn_update counting
  p.telemetry.enabled = true;
  p.telemetry.sample_period = 40;

  Simulator sim(p);
  sim.run(1600);
  const telemetry::TelemetrySink& sink = sim.telemetry_sink();
  const Simulator::Totals& totals = sim.lifetime_totals();

  assert(sink.frames() > 0);
  assert(sink.total_injections() == totals.generated - totals.refused);
  assert(sink.total_refusals() == totals.refused);
  assert(sink.total_deliveries() == totals.delivered);
  assert(sink.total_drops() == totals.dropped);
  assert(sink.total_undeliverable() == totals.undeliverable);
  assert(sink.total_ectn_updates() > 0);
  // Misroute causes decompose the per-router misroute totals (the fault
  // fallback cause counts re-routings, not packets, and faults are off).
  std::int64_t cause_sum = 0;
  for (std::int32_t c = 0; c < telemetry::kMisrouteCauseCount; ++c) {
    cause_sum +=
        sink.total_cause(static_cast<telemetry::MisrouteCause>(c));
  }
  assert(cause_sum == sink.total_misroutes());
  assert(sink.total_misroutes() > 0);  // ADV traffic under CB must misroute
  assert(sink.total_credit_stalls() >= 0);
  assert(sink.total_link_departures() > 0);

  // Heatmap document: builds, serializes, and round-trips byte-identically.
  const report::ResultsDoc doc =
      telemetry::build_heatmap_doc(sim, "heatmap_test", "tiny");
  assert(doc.panel("routers") != nullptr);
  assert(doc.panel("misroute_causes") != nullptr);
  assert(doc.panel("network") != nullptr);
  assert(doc.panel("totals") != nullptr);
  const report::Json json = report::to_json(doc);
  const report::ResultsDoc reparsed =
      report::doc_from_json(report::Json::parse(json.dump()));
  assert(report::to_json(reparsed).dump() == json.dump());

  // Spot-check one conserved quantity through the document itself: summed
  // per-frame per-router injections equal the frame-covered injections.
  const report::Panel* routers = doc.panel("routers");
  const auto* injections = routers->metric("injections");
  assert(injections != nullptr);
  std::int64_t doc_injections = 0;
  for (const auto& row : *injections) {
    for (const double v : row) doc_injections += static_cast<std::int64_t>(v);
  }
  std::int64_t frame_injections = 0;
  for (std::int32_t f = 0; f < sink.frames(); ++f) {
    for (RouterId r = 0; r < sink.routers(); ++r) {
      frame_injections += sink.injections(f, r);
    }
  }
  assert(doc_injections == frame_injections);
  std::cout << "heatmap conservation + schema ok (" << sink.frames()
            << " frames)\n";
}

}  // namespace

int main() {
  test_zero_overhead_identity();
  test_zero_alloc_with_telemetry();
  test_config_hash_gating();
  test_trace_roundtrip_and_determinism();
  test_heatmap_conservation_and_schema();
  std::cout << "test_telemetry: all ok\n";
  return 0;
}
