// Routing-mechanism dispatch identity suite.
//
// The routing layer (src/routing/) dispatches every mechanism through the
// RoutingMechanism interface instead of RoutingKind switches inside the
// engine. This suite pins that dispatch three ways:
//
// (1) Name identity: every RoutingKind round-trips through to_string /
//     routing_kind_from_string, and the canonical params text names the
//     kind verbatim (so config hashes distinguish mechanisms).
// (2) Metric identity: each mechanism instance reproduces the golden
//     metrics captured from the engine BEFORE the mechanism extraction,
//     bit-exactly, on all three topologies (ECtN is dragonfly-only by
//     construction). Double equality is intentional — the mechanism layer
//     must not move a single RNG draw or iteration order.
// (3) Construction contract: kinds whose preconditions a topology cannot
//     meet (ECtN off-dragonfly) must refuse construction loudly.
//
// Regenerate the table with `--print` after a DELIBERATE behavior change
// only (ARCHITECTURE.md bit-exactness rule).
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "engine/experiment.hpp"
#include "engine/simulator.hpp"
#include "report/schema.hpp"

namespace {

using namespace dfsim;

struct Golden {
  TopologyKind topo;
  RoutingKind kind;
  double throughput;
  double latency_avg;
  double misrouted_fraction;
  double backlog_per_node;
};

// Every kind a topology can instantiate, in enum order. ECtN needs
// dragonfly group structure; everything else (ARN included — every
// topology implements min_link_probe) runs everywhere.
const RoutingKind kAllKinds[] = {
    RoutingKind::kMin,      RoutingKind::kValiant,  RoutingKind::kUgalL,
    RoutingKind::kUgalG,    RoutingKind::kPiggyback, RoutingKind::kOlm,
    RoutingKind::kCbBase,   RoutingKind::kCbHybrid, RoutingKind::kCbEctn,
    RoutingKind::kArn,
};

const char* enum_name(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kMin: return "kMin";
    case RoutingKind::kValiant: return "kValiant";
    case RoutingKind::kUgalL: return "kUgalL";
    case RoutingKind::kUgalG: return "kUgalG";
    case RoutingKind::kPiggyback: return "kPiggyback";
    case RoutingKind::kOlm: return "kOlm";
    case RoutingKind::kCbBase: return "kCbBase";
    case RoutingKind::kCbHybrid: return "kCbHybrid";
    case RoutingKind::kCbEctn: return "kCbEctn";
    case RoutingKind::kArn: return "kArn";
  }
  return "?";
}

const char* topo_enum_name(TopologyKind topo) {
  switch (topo) {
    case TopologyKind::kDragonfly: return "kDragonfly";
    case TopologyKind::kFbfly: return "kFbfly";
    case TopologyKind::kTorus: return "kTorus";
  }
  return "?";
}

SimParams base_params(TopologyKind topo) {
  switch (topo) {
    case TopologyKind::kFbfly: return presets::fbfly(4, 2, 4);
    case TopologyKind::kTorus: return presets::torus(8, 2, 2);
    case TopologyKind::kDragonfly: break;
  }
  return presets::tiny();
}

bool kind_supported(TopologyKind topo, RoutingKind kind) {
  return kind != RoutingKind::kCbEctn || topo == TopologyKind::kDragonfly;
}

// Adversarial traffic exercises every decision path (injection-time,
// in-transit, local detour). The torus adversary is the tornado offset.
SteadyResult run_point(TopologyKind topo, RoutingKind kind) {
  SimParams p = base_params(topo);
  p.routing.kind = kind;
  if (kind == RoutingKind::kArn) p.notify.enabled = true;
  p.traffic.kind = TrafficKind::kAdversarial;
  p.traffic.load = 0.3;
  p.traffic.adv_offset = topo == TopologyKind::kTorus ? 4 : 1;
  p.seed = 9001;
  SteadyOptions opt;
  opt.warmup = 400;
  opt.measure = 600;
  return run_steady(p, opt);
}

// Captured from the engine at the commit immediately BEFORE the mechanism
// extraction (seed 9001, warmup 400, measure 600, load 0.3, ADV); the
// extracted instances must reproduce every cell bit-exactly.
const Golden kGolden[] = {
    {TopologyKind::kDragonfly, RoutingKind::kMin, 0.125, 399.40148148148148, 0, 20.958333333333332},
    {TopologyKind::kDragonfly, RoutingKind::kValiant, 0.30296296296296299, 137.95843520782395, 1, 0.125},
    {TopologyKind::kDragonfly, RoutingKind::kUgalL, 0.27277777777777779, 173.94501018329939, 0.5417515274949084, 3.9166666666666665},
    {TopologyKind::kDragonfly, RoutingKind::kUgalG, 0.28185185185185185, 150.53482260183969, 0.55716162943495395, 2.1527777777777777},
    {TopologyKind::kDragonfly, RoutingKind::kPiggyback, 0.27277777777777779, 173.94501018329939, 0.5417515274949084, 3.9166666666666665},
    {TopologyKind::kDragonfly, RoutingKind::kOlm, 0.28000000000000003, 174.9126984126984, 0.55291005291005291, 3.2361111111111112},
    {TopologyKind::kDragonfly, RoutingKind::kCbBase, 0.28759259259259257, 162.71860914359306, 0.63940759819703796, 1.5555555555555556},
    {TopologyKind::kDragonfly, RoutingKind::kCbHybrid, 0.30740740740740741, 148.79879518072289, 0.64277108433734942, 0.84722222222222221},
    {TopologyKind::kDragonfly, RoutingKind::kCbEctn, 0.2877777777777778, 167.22844272844273, 0.64478764478764483, 1.625},
    // ARN rows are post-extraction captures pinning the NEW mechanism (no
    // pre-extraction twin exists). On fbfly/torus the row equals MIN: the
    // downstream-occupancy signal tops out near 0.31 of the reference
    // buffer there (backlog pools in injection queues, not network
    // buffers), so the 0.5 scan threshold never fires — same reason the
    // OLM rows equal MIN on those topologies.
    {TopologyKind::kDragonfly, RoutingKind::kArn, 0.29388888888888887, 135.3660995589162, 0.57214870825456832, 1.6805555555555556},
    {TopologyKind::kFbfly, RoutingKind::kMin, 0.25, 121.88062499999999, 0, 49.171875},
    {TopologyKind::kFbfly, RoutingKind::kValiant, 0.29895833333333333, 32.295905923344947, 1, 2.53125},
    {TopologyKind::kFbfly, RoutingKind::kUgalL, 0.29843750000000002, 17.540139616055846, 0.46492146596858641, 1.421875},
    {TopologyKind::kFbfly, RoutingKind::kUgalG, 0.29960937500000001, 20.996697088222511, 0.50786614515428075, 1.40625},
    {TopologyKind::kFbfly, RoutingKind::kPiggyback, 0.29843750000000002, 17.540139616055846, 0.46492146596858641, 1.421875},
    {TopologyKind::kFbfly, RoutingKind::kOlm, 0.25, 121.88062499999999, 0, 49.171875},
    {TopologyKind::kFbfly, RoutingKind::kCbBase, 0.29713541666666665, 25.777212971078001, 0.32892199824715163, 2.234375},
    {TopologyKind::kFbfly, RoutingKind::kCbHybrid, 0.29749999999999999, 15.593837535014005, 0.44914215686274511, 0.421875},
    {TopologyKind::kFbfly, RoutingKind::kArn, 0.25, 121.88062499999999, 0, 49.171875},
    {TopologyKind::kTorus, RoutingKind::kMin, 0.125, 339.44760416666668, 0, 175.328125},
    {TopologyKind::kTorus, RoutingKind::kValiant, 0.083723958333333334, 344.00839813374807, 1, 179.5703125},
    {TopologyKind::kTorus, RoutingKind::kUgalL, 0.19968749999999999, 222.73037297861242, 0.76401930099113202, 97.375},
    {TopologyKind::kTorus, RoutingKind::kUgalG, 0.19885416666666667, 230.83754583551598, 0.78103719224724988, 96.546875},
    {TopologyKind::kTorus, RoutingKind::kPiggyback, 0.1199609375, 312.60360360360363, 0.93975903614457834, 142.375},
    {TopologyKind::kTorus, RoutingKind::kOlm, 0.125, 339.44760416666668, 0, 175.328125},
    {TopologyKind::kTorus, RoutingKind::kCbBase, 0.1194921875, 309.56249318949546, 0.97591805600958914, 152.796875},
    {TopologyKind::kTorus, RoutingKind::kCbHybrid, 0.11078125, 303.60989656793606, 0.99623883403855196, 151},
    {TopologyKind::kTorus, RoutingKind::kArn, 0.125, 339.44760416666668, 0, 175.328125},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "--print") {
    for (const TopologyKind topo :
         {TopologyKind::kDragonfly, TopologyKind::kFbfly,
          TopologyKind::kTorus}) {
      for (const RoutingKind kind : kAllKinds) {
        if (!kind_supported(topo, kind)) continue;
        const SteadyResult r = run_point(topo, kind);
        std::printf("    {TopologyKind::%s, RoutingKind::%s, %.17g, %.17g, "
                    "%.17g, %.17g},\n",
                    topo_enum_name(topo), enum_name(kind), r.throughput,
                    r.latency_avg, r.misrouted_fraction, r.backlog_per_node);
      }
    }
    return EXIT_SUCCESS;
  }

  // --- (1) name identity ----------------------------------------------------
  for (const RoutingKind kind : kAllKinds) {
    const std::string name = to_string(kind);
    assert(!name.empty() && name != "?");
    if (routing_kind_from_string(name) != kind) {
      std::fprintf(stderr, "round-trip failed for %s\n", name.c_str());
      return EXIT_FAILURE;
    }
    SimParams p = presets::tiny();
    p.routing.kind = kind;
    const std::string text = report::canonical_params_text(p);
    if (text.find("routing.kind = " + name) == std::string::npos) {
      std::fprintf(stderr, "canonical text does not name %s\n", name.c_str());
      return EXIT_FAILURE;
    }
  }
  // Distinct kinds must hash apart (the canonical text is the config id).
  {
    SimParams a = presets::tiny();
    SimParams b = presets::tiny();
    a.routing.kind = RoutingKind::kUgalL;
    b.routing.kind = RoutingKind::kPiggyback;
    assert(report::config_hash(a) != report::config_hash(b));
  }

  // --- (2) metric identity against the pre-extraction capture ---------------
  for (const Golden& g : kGolden) {
    const SteadyResult r = run_point(g.topo, g.kind);
    if (r.throughput != g.throughput || r.latency_avg != g.latency_avg ||
        r.misrouted_fraction != g.misrouted_fraction ||
        r.backlog_per_node != g.backlog_per_node) {
      std::fprintf(stderr,
                   "identity mismatch topo=%s kind=%s\n"
                   "  thr %.17g vs %.17g\n  lat %.17g vs %.17g\n"
                   "  mis %.17g vs %.17g\n  bkl %.17g vs %.17g\n",
                   topo_enum_name(g.topo), enum_name(g.kind), r.throughput,
                   g.throughput, r.latency_avg, g.latency_avg,
                   r.misrouted_fraction, g.misrouted_fraction,
                   r.backlog_per_node, g.backlog_per_node);
      return EXIT_FAILURE;
    }
  }

  // --- (3) unsupported construction refuses loudly ---------------------------
  {
    SimParams p = base_params(TopologyKind::kTorus);
    p.routing.kind = RoutingKind::kCbEctn;
    bool threw = false;
    try {
      Simulator sim(p);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);
  }
  // ARN requires the notification plane: kArn with notify.enabled unset
  // would silently degenerate to MIN, so the factory refuses it.
  {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kArn;
    bool threw = false;
    try {
      Simulator sim(p);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);
  }

  return EXIT_SUCCESS;
}
