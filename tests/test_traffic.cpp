// Traffic subsystem invariants: every permutation pattern is a bijection
// over terminals (including awkward non-square / non-power-of-two node
// counts), hotspot empirical frequencies match the configured skew, the
// bursty on/off process hits the offered load in the long run, traces
// round-trip through the binary format, and a recorded dragonfly run
// replays to bit-identical delivered counts and latency.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "engine/simulator.hpp"
#include "traffic/model.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace dfsim;

TrafficTopologyInfo info(std::int32_t groups, std::int32_t npg) {
  TrafficTopologyInfo topo;
  topo.nodes = groups * npg;
  topo.groups = groups;
  topo.nodes_per_group = npg;
  return topo;
}

void check_bijection(TrafficKind kind, const TrafficTopologyInfo& topo) {
  TrafficParams spec;
  spec.kind = kind;
  spec.shift_offset = topo.nodes_per_group + 1;
  TrafficModel model(spec, topo, 1, 7);
  std::vector<int> hit(static_cast<std::size_t>(topo.nodes), 0);
  for (NodeId n = 0; n < topo.nodes; ++n) {
    const NodeId d = model.draw_dest(n);
    assert(d >= 0 && d < topo.nodes);
    ++hit[static_cast<std::size_t>(d)];
    // Permutations are deterministic: the same source maps to the same
    // destination on every draw.
    assert(model.draw_dest(n) == d);
  }
  for (NodeId n = 0; n < topo.nodes; ++n) {
    if (hit[static_cast<std::size_t>(n)] != 1) {
      std::fprintf(stderr, "%s: node %d hit %d times (groups=%d npg=%d)\n",
                   to_string(kind).c_str(), n, hit[static_cast<std::size_t>(n)],
                   topo.groups, topo.nodes_per_group);
      std::exit(EXIT_FAILURE);
    }
  }
}

}  // namespace

int main() {
  using namespace dfsim;

  // Permutation patterns are bijections — on the tiny dragonfly shape
  // (9 groups x 8 nodes, 72 non-square) and on an awkward 6 x 3 = 18.
  for (const TrafficKind kind :
       {TrafficKind::kShift, TrafficKind::kBitComplement,
        TrafficKind::kTranspose, TrafficKind::kTornado,
        TrafficKind::kGroupLocal}) {
    check_bijection(kind, info(9, 8));
    check_bijection(kind, info(6, 3));
    check_bijection(kind, info(4, 4));  // square, power of two
  }

  // Adversarial offsets are normalized at setup: +1, +1+G, and -(G-1) all
  // resolve to the same per-group destination base.
  {
    const TrafficTopologyInfo topo = info(9, 8);
    TrafficParams spec;
    spec.kind = TrafficKind::kAdversarial;
    for (const std::int32_t off : {1, 1 + 9, 1 - 9}) {
      spec.adv_offset = off;
      TrafficModel model(spec, topo, 1, 7);
      for (NodeId n = 0; n < topo.nodes; ++n) {
        const NodeId d = model.draw_dest(n);
        assert(d / 8 == ((n / 8) + 1) % 9);
      }
    }
  }

  // Hotspot: empirical destination frequencies match the configured skew.
  // With fraction f aimed at H hot nodes and the rest uniform, each hot
  // node's expected share is f/H + (1-f)/(N-1)-ish; we bound loosely
  // (chi-squared-style: every hot node within 20% of the hot mean, total
  // hot share within 4 sigma).
  {
    const TrafficTopologyInfo topo = info(9, 8);
    TrafficParams spec;
    spec.kind = TrafficKind::kHotspot;
    spec.hotspot_count = 4;
    spec.hotspot_fraction = 0.5;
    TrafficModel model(spec, topo, 1, 11);
    const int draws = 200000;
    std::vector<std::int64_t> count(static_cast<std::size_t>(topo.nodes), 0);
    for (int i = 0; i < draws; ++i) {
      ++count[static_cast<std::size_t>(
          model.draw_dest(static_cast<NodeId>(i % topo.nodes)))];
    }
    std::int64_t hot_total = 0;
    std::vector<std::int64_t> hot_counts;
    for (std::int32_t i = 0; i < 4; ++i) {
      const auto hot = static_cast<std::size_t>((i * topo.nodes) / 4);
      hot_counts.push_back(count[hot]);
      hot_total += count[hot];
    }
    const double p_hot = 0.5 + 0.5 * (4.0 - 1.0) / 71.0;  // skew + uniform spill
    const double expect = p_hot * draws;
    const double sigma = std::sqrt(draws * p_hot * (1.0 - p_hot));
    if (std::abs(static_cast<double>(hot_total) - expect) > 4.0 * sigma) {
      std::fprintf(stderr, "hotspot: hot share %lld expected %.0f +- %.0f\n",
                   static_cast<long long>(hot_total), expect, sigma);
      return EXIT_FAILURE;
    }
    for (const std::int64_t c : hot_counts) {
      assert(std::abs(static_cast<double>(c) - expect / 4.0) <
             0.2 * expect / 4.0);
    }
    // Non-hot nodes each get far less than a hot node.
    assert(count[1] * 5 < hot_counts[0]);
  }

  // Bursty injection: long-run rate matches the offered load, and the
  // process actually bursts (on-state rate well above the mean).
  {
    const TrafficTopologyInfo topo = info(8, 8);
    TrafficParams spec;
    spec.kind = TrafficKind::kUniform;
    spec.injection = InjectionProcess::kBursty;
    spec.load = 0.3;
    spec.burst_factor = 4.0;
    spec.burst_len = 40.0;
    TrafficModel model(spec, topo, 1, 13);
    const Cycle cycles = 40000;
    std::int64_t injected = 0;
    Injection inj;
    for (Cycle t = 0; t < cycles; ++t) {
      model.begin_cycle(t);
      while (model.next(inj)) ++injected;
    }
    const double rate = static_cast<double>(injected) /
                        (static_cast<double>(topo.nodes) *
                         static_cast<double>(cycles));
    if (std::abs(rate - 0.3) > 0.02) {
      std::fprintf(stderr, "bursty: long-run rate %.4f vs load 0.3\n", rate);
      return EXIT_FAILURE;
    }
    // Per-node interarrival clustering: with ON periods of ~40 cycles at
    // rate 1.2/cycle-of-load... simplest burstiness check: a single node's
    // injections over a window are far from evenly spaced. Count cycles in
    // which node 0 injects across 4000-cycle halves of ON/OFF mixtures by
    // re-running with draw_injects directly.
    TrafficModel m2(spec, topo, 1, 17);
    std::int64_t on_draws = 0;
    std::int64_t runs = 0;
    bool prev = false;
    for (Cycle t = 0; t < 20000; ++t) {
      const bool now = m2.draw_injects(0);
      if (now) ++on_draws;
      if (now && !prev) ++runs;
      prev = now;
    }
    // Bernoulli at 0.3 would give ~ on_draws * 0.7 runs; bursts give far
    // fewer runs per injection.
    assert(runs > 0);
    assert(static_cast<double>(runs) <
           0.6 * static_cast<double>(on_draws) * 0.7);
  }

  // Trace round-trip through the binary format.
  {
    const std::string path = "dfsim_test_trace_roundtrip.bin";
    std::vector<TraceRecord> records{{0, 1, 2}, {0, 3, 4}, {5, 0, 71}};
    write_trace(path, records);
    const std::vector<TraceRecord> back = read_trace(path);
    assert(back.size() == records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      assert(back[i].cycle == records[i].cycle);
      assert(back[i].src == records[i].src);
      assert(back[i].dst == records[i].dst);
    }
    std::remove(path.c_str());
  }

  // Record -> replay reproduces a dragonfly run bit-exactly: the traffic
  // model owns its RNG, so the routing RNG stream is identical in both
  // runs once the injection stream is.
  {
    const std::string path = "dfsim_test_trace_replay.bin";
    SimParams params = presets::tiny();
    params.routing.kind = RoutingKind::kCbBase;
    params.traffic.kind = TrafficKind::kHotspot;
    params.traffic.hotspot_count = 3;
    params.traffic.load = 0.25;

    Simulator record_sim(params);
    record_sim.start_trace_recording();
    record_sim.run(1200);
    record_sim.write_recorded_trace(path);
    assert(!record_sim.traffic_model().recorded().empty());

    SimParams replay_params = params;
    replay_params.traffic.kind = TrafficKind::kTrace;
    replay_params.traffic.trace_path = path;
    Simulator replay_sim(replay_params);
    replay_sim.run(1200);

    const Simulator::Metrics& a = record_sim.metrics();
    const Simulator::Metrics& b = replay_sim.metrics();
    if (a.generated != b.generated || a.delivered != b.delivered ||
        a.latency_sum != b.latency_sum || a.misrouted != b.misrouted ||
        a.refused != b.refused) {
      std::fprintf(stderr,
                   "replay mismatch: gen %lld/%lld del %lld/%lld lat %f/%f\n",
                   static_cast<long long>(a.generated),
                   static_cast<long long>(b.generated),
                   static_cast<long long>(a.delivered),
                   static_cast<long long>(b.delivered), a.latency_sum,
                   b.latency_sum);
      return EXIT_FAILURE;
    }
    assert(a.delivered > 0);
    std::remove(path.c_str());
  }

  // Histogram quantiles are sane on a known distribution.
  {
    LatencyHistogram hist;
    for (int i = 1; i <= 1000; ++i) hist.add(i);
    assert(hist.total() == 1000);
    const double p50 = hist.quantile(0.50);
    const double p99 = hist.quantile(0.99);
    assert(p50 > 250.0 && p50 < 1000.0);  // log2 buckets: factor-2 accuracy
    assert(p99 > p50);
    assert(p99 <= 1024.0);
  }

  return EXIT_SUCCESS;
}
