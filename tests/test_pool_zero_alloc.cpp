// Acceptance gate: Simulator::step() at the medium preset performs zero heap
// allocations after warmup. allocation_events() counts packet-pool growth,
// calendar-bucket growth and delivery-log growth; it must be flat across the
// post-warmup window.
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "engine/simulator.hpp"

int main() {
  using namespace dfsim;

  SimParams params = presets::medium();
  params.routing.kind = RoutingKind::kCbBase;
  params.traffic.kind = TrafficKind::kUniform;
  params.traffic.load = 0.3;

  Simulator sim(params);
  sim.run(1500);  // reach steady occupancy

  const std::int64_t events_after_warmup = sim.allocation_events();
  sim.run(1000);
  const std::int64_t events_after_measure = sim.allocation_events();

  if (events_after_measure != events_after_warmup) {
    std::fprintf(stderr,
                 "allocation events grew after warmup: %lld -> %lld\n",
                 static_cast<long long>(events_after_warmup),
                 static_cast<long long>(events_after_measure));
    return EXIT_FAILURE;
  }

  // The pooled allocator must also actually recycle: packets were delivered
  // and the pool population is bounded by its preallocated upper bound.
  assert(sim.metrics().delivered > 0);
  assert(sim.pool_grow_events() == 0);  // never beyond the reserve

  // Same property for the adversarial pattern with ECtN (exercises the
  // snapshot path).
  SimParams adv = presets::medium();
  adv.routing.kind = RoutingKind::kCbEctn;
  adv.traffic.kind = TrafficKind::kAdversarial;
  adv.traffic.load = 0.25;
  Simulator sim2(adv);
  sim2.run(1500);
  const std::int64_t base2 = sim2.allocation_events();
  sim2.run(1000);
  if (sim2.allocation_events() != base2) {
    std::fprintf(stderr, "ECtN/ADV run allocated after warmup\n");
    return EXIT_FAILURE;
  }

  // And with the traffic subsystem's skewed/bursty models active: hotspot
  // destinations under a bursty on/off injection process must stay on the
  // pre-resolved zero-allocation hot path too.
  SimParams hot = presets::medium();
  hot.routing.kind = RoutingKind::kCbBase;
  hot.traffic.kind = TrafficKind::kHotspot;
  hot.traffic.hotspot_count = 16;
  hot.traffic.injection = InjectionProcess::kBursty;
  hot.traffic.load = 0.25;
  Simulator sim3(hot);
  sim3.run(1500);
  const std::int64_t base3 = sim3.allocation_events();
  sim3.run(1000);
  if (sim3.allocation_events() != base3) {
    std::fprintf(stderr, "hotspot/bursty run allocated after warmup\n");
    return EXIT_FAILURE;
  }
  assert(sim3.metrics().delivered > 0);

  return EXIT_SUCCESS;
}
