#!/usr/bin/env python3
"""Meta-test for tools/dfsim_check: each seeded fixture violation under
tests/lint_fixtures/ must be detected by its check, and the repository at
HEAD must be clean under all six checks. Wired in as the `dfsim_check`
ctest, so a check that silently stops firing fails the build."""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO, "tools", "dfsim_check", "dfsim_check.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")

# fixture dir -> (check to run, substring its report must contain)
CASES = {
    "bad_rng": ("CHK-RNG", "undeclared RNG draw site `rng.next_below`"),
    "bad_gate": ("CHK-GATE", "access to `sink_` in Simulator::flush_telemetry"),
    "bad_alloc": ("CHK-ALLOC", "push_back in hot-path function "
                               "Engine::route_cycle"),
    "bad_config": ("CHK-CONFIG", "`router.undocumented` is parsed but not "
                                 "documented"),
    "bad_schema": ("CHK-SCHEMA", "`surprise_field` is written by schema.cpp "
                                 "but not documented"),
    "bad_dispatch": ("CHK-DISPATCH", "engine references `RoutingKind`"),
}


def run(root, checks):
    return subprocess.run(
        [sys.executable, CHECKER, "--root", root, "--checks", checks],
        capture_output=True, text=True)


def main():
    failures = []

    for fixture, (check, needle) in sorted(CASES.items()):
        root = os.path.join(FIXTURES, fixture)
        proc = run(root, check)
        out = proc.stdout + proc.stderr
        if proc.returncode != 1:
            failures.append(f"{fixture}: expected exit 1 from {check}, got "
                            f"{proc.returncode}\n{out}")
        elif needle not in out:
            failures.append(f"{fixture}: {check} fired but without the "
                            f"seeded violation; wanted {needle!r} in:\n{out}")
        else:
            print(f"ok  {fixture}: {check} detects the seeded violation")

    proc = run(REPO,
               "CHK-RNG,CHK-GATE,CHK-ALLOC,CHK-CONFIG,CHK-SCHEMA,CHK-DISPATCH")
    if proc.returncode != 0:
        failures.append("HEAD is not clean under dfsim_check:\n"
                        + proc.stdout + proc.stderr)
    else:
        print("ok  HEAD: all six checks clean")

    # The violation messages must carry their check IDs so CI logs and the
    # fixture assertions above stay greppable.
    proc = run(REPO, "nonexistent-check")
    if proc.returncode != 2:
        failures.append(f"unknown check name must exit 2, got "
                        f"{proc.returncode}")
    else:
        print("ok  unknown check name exits 2")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print("  " + f.replace("\n", "\n  "), file=sys.stderr)
        return 1
    print(f"\ndfsim_check meta-test: {len(CASES)} fixtures + HEAD clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
