// Saturation-regime correctness: the three failure classes deep saturation
// used to trigger.
//
// (1) Head-wait counter overflow: q_wait_ was a bare int16_t incremented
//     every stalled cycle; past 32767 cycles it wrapped negative and the
//     `(wait - kReEvalWait) % 8` re-evaluation predicate went permanently
//     false, disabling blocked-head escape under deep saturation. The
//     bounded counter must fire on exactly the ideal unbounded cadence for
//     arbitrarily long stalls.
// (2) Latency-histogram top-bucket clamping: out-of-range latencies were
//     silently folded into the last bucket, under-reporting p99; they must
//     be tracked as overflow and quantiles must saturate visibly.
// (3) Zero-length measurement windows: throughput-style rates right after
//     begin_measurement() must be 0, not NaN/inf, and run_steady with
//     measure=0 must produce finite numbers end to end.
// (4) Drain-to-idle then re-activation after deep saturation: with the
//     active-set engine a stale queue bit / due-link entry (the classic
//     stale-active-list bug) would either keep an idle network busy or —
//     worse — drop a re-activated queue from arbitration forever. A
//     saturated run must drain to an exactly-idle network and then serve
//     fresh traffic at full rate.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "engine/experiment.hpp"
#include "engine/head_wait.hpp"
#include "engine/simulator.hpp"
#include "util/histogram.hpp"

int main() {
  using namespace dfsim;

  // --- (1) head-wait cadence for stalls far past the old int16 wrap ------
  {
    // Reference: the ideal unbounded counter fires at wait = 4, 12, 20, ...
    std::int16_t wait = 0;
    std::int64_t fires = 0;
    std::int64_t last_fire = -1;
    const std::int64_t stall_cycles = 100000;  // >> 32767, the old wrap point
    for (std::int64_t cycle = 0; cycle < stall_cycles; ++cycle) {
      const bool due = head_wait_due(wait);
      const bool ideal_due =
          cycle >= kReEvalWait && (cycle - kReEvalWait) % kReEvalPeriod == 0;
      if (due != ideal_due) {
        std::fprintf(stderr, "head-wait cadence diverges at stalled cycle %lld\n",
                     static_cast<long long>(cycle));
        return EXIT_FAILURE;
      }
      if (due) {
        ++fires;
        last_fire = cycle;
      }
      wait = advance_head_wait(wait);
      assert(wait >= 0 && wait < kReEvalWait + kReEvalPeriod);  // bounded
    }
    assert(fires == (stall_cycles - kReEvalWait + kReEvalPeriod - 1) /
                        kReEvalPeriod);
    assert(last_fire > 32767);  // still firing past the old overflow point
  }

  // Integration smoke: a deeply saturated contention-based run far past the
  // old wrap point keeps delivering and keeps misrouting (blocked heads
  // still re-evaluate their escape).
  {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kCbBase;
    p.traffic.kind = TrafficKind::kAdversarial;
    p.traffic.adv_offset = 1;
    p.traffic.load = 0.8;  // far past the ADV saturation point
    p.seed = 9;
    Simulator sim(p);
    sim.run(34000);  // > 32767 saturated cycles
    sim.begin_measurement();
    sim.run(2000);
    assert(sim.metrics().delivered > 0);
    assert(sim.metrics().misrouted_fraction() > 0.1);
    assert(sim.backlog_per_node() > 4.0);  // genuinely saturated
  }

  // --- (2) histogram overflow tracking ------------------------------------
  {
    LatencyHistogram h;
    h.add(10);
    h.add(100);
    h.add(1000);
    assert(h.total() == 3);
    assert(h.overflow() == 0);
    assert(h.quantile(0.5) > 0.0 && h.quantile(0.99) <= 1024.0);

    // Out-of-range latencies: at and beyond the top bucket boundary.
    const std::int64_t huge = std::int64_t{1} << 62;
    h.add(huge);
    h.add(huge + 12345);
    assert(h.total() == 5);
    assert(h.overflow() == 2);
    // The median is still in range...
    assert(h.quantile(0.5) <= 1024.0);
    // ...but tail quantiles that land among the overflow samples saturate
    // at the range boundary instead of silently under-reporting.
    assert(h.quantile(0.99) == LatencyHistogram::overflow_boundary());

    LatencyHistogram other;
    other.add(huge);
    other.merge(h);
    assert(other.overflow() == 3);
    assert(other.total() == 6);

    // All-overflow histogram: every quantile saturates.
    LatencyHistogram all;
    all.add(huge);
    assert(all.quantile(0.01) == LatencyHistogram::overflow_boundary());
  }

  // --- (3) zero-length measurement windows --------------------------------
  {
    SimParams p = presets::tiny();
    p.seed = 5;
    Simulator sim(p);
    sim.run(200);
    sim.begin_measurement();
    // No cycles measured yet: rates must be exactly 0, not NaN/inf.
    assert(sim.measured_cycles() == 0);
    assert(sim.throughput() == 0.0);
    assert(sim.generated_load() == 0.0);
    assert(std::isfinite(sim.backlog_per_node()));

    SteadyOptions opt;
    opt.warmup = 100;
    opt.measure = 0;  // degenerate window straight through the driver
    const SteadyResult r = run_steady(p, opt);
    assert(std::isfinite(r.throughput) && r.throughput == 0.0);
    assert(std::isfinite(r.generated_load) && r.generated_load == 0.0);
    assert(std::isfinite(r.latency_avg));
    assert(std::isfinite(r.latency_p99));
    assert(std::isfinite(r.backlog_per_node));
  }

  // --- (4) deep saturation -> drain to idle -> re-activation --------------
  {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kCbBase;
    p.traffic.kind = TrafficKind::kAdversarial;
    p.traffic.adv_offset = 1;
    p.traffic.load = 0.8;  // far past the ADV saturation point
    p.seed = 77;
    Simulator sim(p);
    sim.run(5000);
    assert(sim.backlog_per_node() > 4.0);  // genuinely saturated

    // Cut injection and let everything (deep injection backlogs included)
    // flow out. The bound is generous: worst-case backlog times the
    // longest per-hop latency at tiny scale.
    TrafficParams off = p.traffic;
    off.load = 0.0;
    sim.set_traffic(off);
    sim.run(60000);
    sim.begin_measurement();
    sim.run(100);
    assert(sim.metrics().generated == 0);
    assert(sim.metrics().delivered == 0);     // nothing left in flight
    assert(sim.backlog_per_node() == 0.0);    // injection queues empty
    assert(sim.debug_check_active_state());   // no stale active state

    // Re-activate under a benign pattern: the drained network must serve
    // it like a fresh one (every queue that went idle re-arms).
    TrafficParams on = p.traffic;
    on.kind = TrafficKind::kUniform;
    on.load = 0.3;
    sim.set_traffic(on);
    sim.run(500);  // refill
    sim.begin_measurement();
    sim.run(1000);
    assert(sim.debug_check_active_state());
    assert(sim.metrics().delivered > 0);
    assert(sim.throughput() > 0.2);  // near the offered 0.3, not a trickle
    assert(sim.backlog_per_node() < 1.0);
  }

  return EXIT_SUCCESS;
}
