// Fault-overlay suite: the deterministic FaultModel schedule, the hard
// engine invariants under injected faults, and the crash-safe results
// writer.
//
//  - schedule: same params + seed -> identical fault sets; both directions
//    of a physical link marked; flap windows and next_event_after boundaries
//    exact; malformed params rejected.
//  - engine, all three topologies: per-cycle brute-force active-state checks
//    with faults firing mid-run, zero departures onto dead links (the
//    dead_link_hops hard invariant), exact lifetime packet conservation
//    (generated - refused = delivered + dropped + undeliverable + in-flight),
//    and traffic still flowing end to end around the holes.
//  - flap: links dying and reviving repeatedly, then a drain to idle and
//    re-activation — the stale-active-set trap under a changing link set.
//  - dead routers + hop cap: unreachable destinations burn out at the hop
//    cap into `undeliverable` instead of livelocking, conservation intact.
//  - onset beyond the horizon: a fault-enabled run is metric-identical to a
//    fault-free run until the first event (zero overhead when off).
//  - write_file_atomic: readers never observe a partial file; the temp file
//    never outlives the call.
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/simulator.hpp"
#include "fault/fault_model.hpp"
#include "sim/config_io.hpp"
#include "topo/factory.hpp"
#include "util/atomic_file.hpp"

namespace {

using namespace dfsim;

SimParams base_for(TopologyKind topo) {
  switch (topo) {
    case TopologyKind::kFbfly: return presets::fbfly(4, 2, 4);
    case TopologyKind::kTorus: return presets::torus(8, 2, 2);
    case TopologyKind::kDragonfly: break;
  }
  return presets::tiny();
}

const char* name_of(TopologyKind topo) {
  switch (topo) {
    case TopologyKind::kFbfly: return "fbfly";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kDragonfly: break;
  }
  return "dragonfly";
}

int check_every_cycle(Simulator& sim, Cycle cycles, const char* what) {
  for (Cycle c = 0; c < cycles; ++c) {
    sim.step();
    if (!sim.debug_check_active_state()) {
      std::fprintf(stderr, "fault active-state mismatch: %s at cycle %lld\n",
                   what, static_cast<long long>(sim.now()));
      return 1;
    }
  }
  return 0;
}

void hard_invariants(const Simulator& sim, const char* what) {
  if (sim.metrics().dead_link_hops != 0) {
    std::fprintf(stderr, "%s: %lld departures onto dead links\n", what,
                 static_cast<long long>(sim.metrics().dead_link_hops));
    std::abort();
  }
  if (sim.conservation_error() != 0) {
    std::fprintf(stderr, "%s: conservation error %lld\n", what,
                 static_cast<long long>(sim.conservation_error()));
    std::abort();
  }
}

// ---------------------------------------------------------------------------

void test_schedule_determinism() {
  const SimParams p = presets::tiny();
  const auto topo = make_topology(p);

  FaultParams fp;
  fp.enabled = true;
  fp.seed = 7;
  fp.link_fail_fraction = 0.2;
  fp.link_class = "global";
  const FaultModel a(fp, *topo, 1);
  const FaultModel b(fp, *topo, 999);  // run seed ignored when fp.seed != 0
  assert(a.faulty_links() == b.faulty_links());
  assert(a.dead_link_count() == b.dead_link_count());
  assert(a.dead_link_count() > 0);
  assert(a.flap_link_count() == 0);

  // fp.seed == 0 falls back to the run seed: different runs, different sets.
  FaultParams fp0 = fp;
  fp0.seed = 0;
  const FaultModel c(fp0, *topo, 1);
  const FaultModel d(fp0, *topo, 2);
  assert(c.dead_link_count() == d.dead_link_count());  // same count either way
  assert(c.faulty_links() != d.faulty_links());

  // Both directions of every failed physical link are down, the class
  // filter held, and healthy links stayed up.
  for (const std::int32_t id : a.faulty_links()) {
    const auto r = static_cast<RouterId>(id / topo->radix());
    const auto port = static_cast<PortIndex>(id % topo->radix());
    assert(topo->port_class(port) == PortClass::kGlobalClass);
    assert(a.link_down(r, port, 0));
    const RouterId pr = topo->peer(r, port);
    const PortIndex pp = topo->peer_port(r, port);
    assert(a.link_down(pr, pp, 0));
  }

  // Malformed params are rejected up front.
  bool threw = false;
  try {
    FaultParams bad = fp;
    bad.link_fail_fraction = 1.5;
    (void)FaultModel(bad, *topo, 1);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  assert(threw);
  threw = false;
  try {
    FaultParams bad = fp;
    bad.flap_period = 50;
    bad.flap_down = 50;  // must be strictly inside (0, flap_period)
    (void)FaultModel(bad, *topo, 1);
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  assert(threw);
}

void test_flap_windows() {
  const SimParams p = presets::tiny();
  const auto topo = make_topology(p);

  FaultParams fp;
  fp.enabled = true;
  fp.seed = 11;
  fp.link_fail_fraction = 0.1;
  fp.onset = 500;
  fp.flap_period = 100;
  fp.flap_down = 30;
  const FaultModel m(fp, *topo, 1);
  assert(m.flap_link_count() > 0);
  assert(m.dead_link_count() == 0);

  const std::int32_t id = m.faulty_links().front();
  const auto r = static_cast<RouterId>(id / topo->radix());
  const auto port = static_cast<PortIndex>(id % topo->radix());
  assert(!m.link_down(r, port, 0));
  assert(!m.link_down(r, port, 499));    // healthy until onset
  assert(m.link_down(r, port, 500));     // down phase of each window
  assert(m.link_down(r, port, 529));
  assert(!m.link_down(r, port, 530));    // back up for the rest
  assert(!m.link_down(r, port, 599));
  assert(m.link_down(r, port, 600));     // next window

  // Event boundaries: onset, then every down->up and up->down edge.
  assert(m.next_event_after(0) == 500);
  assert(m.next_event_after(499) == 500);
  assert(m.next_event_after(500) == 530);
  assert(m.next_event_after(530) == 600);
  assert(m.next_event_after(595) == 600);

  // A permanently-dead schedule has exactly one event: the onset.
  FaultParams fdead = fp;
  fdead.flap_period = 0;
  fdead.flap_down = 0;
  const FaultModel md(fdead, *topo, 1);
  assert(md.next_event_after(0) == 500);
  assert(md.next_event_after(500) == FaultModel::kNoEvent);
}

void test_engine_invariants_all_topologies() {
  for (const TopologyKind topo :
       {TopologyKind::kDragonfly, TopologyKind::kFbfly, TopologyKind::kTorus}) {
    SimParams p = base_for(topo);
    p.routing.kind = RoutingKind::kCbBase;
    p.traffic.kind = TrafficKind::kUniform;
    p.traffic.load = 0.3;
    p.seed = 17;
    p.fault.enabled = true;
    p.fault.seed = 5;
    p.fault.link_fail_fraction = 0.15;
    p.fault.onset = 300;  // the links die under a busy network

    Simulator sim(p);
    if (check_every_cycle(sim, 2000, name_of(topo))) std::exit(EXIT_FAILURE);
    hard_invariants(sim, name_of(topo));
    // Traffic still flows end to end around the dead links.
    assert(sim.metrics().delivered > 0);
    assert(sim.lifetime_totals().delivered > 0);
  }
}

void test_flap_drain_reactivation() {
  SimParams p = presets::tiny();
  p.routing.kind = RoutingKind::kCbBase;
  p.traffic.kind = TrafficKind::kUniform;
  p.traffic.load = 0.3;
  p.seed = 23;
  p.fault.enabled = true;
  p.fault.seed = 3;
  p.fault.link_fail_fraction = 0.15;
  p.fault.onset = 200;
  p.fault.flap_period = 120;
  p.fault.flap_down = 40;

  // Several full die/revive windows under load, checked every cycle.
  Simulator sim(p);
  if (check_every_cycle(sim, 1500, "flap")) std::exit(EXIT_FAILURE);
  hard_invariants(sim, "flap");
  assert(sim.metrics().delivered > 0);

  // Drain to fully idle across more flap windows: dropped in-flight packets
  // must have returned their credits and pool slots, or the drain stalls
  // and the brute-force check trips.
  TrafficParams off = p.traffic;
  off.load = 0.0;
  sim.set_traffic(off);
  if (check_every_cycle(sim, 6000, "flap-drain")) std::exit(EXIT_FAILURE);
  hard_invariants(sim, "flap-drain");
  assert(sim.packets_in_network() == 0);

  // Re-activate: the network wakes up and delivers again through links
  // that died and revived while it was idle.
  sim.begin_measurement();
  TrafficParams on = p.traffic;
  sim.set_traffic(on);
  if (check_every_cycle(sim, 1500, "flap-reactivate")) std::exit(EXIT_FAILURE);
  hard_invariants(sim, "flap-reactivate");
  assert(sim.metrics().generated > 0);
  assert(sim.metrics().delivered > 0);
}

void test_dead_routers_hop_cap() {
  SimParams p = presets::tiny();
  p.routing.kind = RoutingKind::kCbBase;
  p.traffic.kind = TrafficKind::kUniform;
  p.traffic.load = 0.2;
  p.seed = 29;
  p.fault.enabled = true;
  p.fault.seed = 13;
  p.fault.router_fail_fraction = 0.06;  // ~2 of tiny's 36 routers
  p.fault.hop_cap = 24;

  Simulator sim(p);
  if (check_every_cycle(sim, 4000, "dead-routers")) std::exit(EXIT_FAILURE);
  hard_invariants(sim, "dead-routers");
  // Packets for the dead routers' terminals can never arrive: the hop cap
  // must retire them as undeliverable instead of letting them orbit.
  assert(sim.lifetime_totals().undeliverable > 0);
  assert(sim.lifetime_totals().delivered > 0);
}

void test_zero_overhead_until_onset() {
  SimParams off = presets::tiny();
  off.routing.kind = RoutingKind::kCbBase;
  off.traffic.kind = TrafficKind::kUniform;
  off.traffic.load = 0.35;
  off.seed = 41;

  SimParams on = off;
  on.fault.enabled = true;
  on.fault.seed = 9;
  on.fault.link_fail_fraction = 0.2;
  on.fault.onset = 1000000;  // far beyond the horizon

  Simulator a(off);
  Simulator b(on);
  a.run(800);
  b.run(800);
  // Identical decisions cycle for cycle until the first fault event: the
  // overlay must not perturb RNG streams, routing, or timing.
  assert(a.metrics().generated == b.metrics().generated);
  assert(a.metrics().delivered == b.metrics().delivered);
  assert(a.metrics().misrouted == b.metrics().misrouted);
  assert(a.metrics().latency_sum == b.metrics().latency_sum);
  assert(b.metrics().dropped == 0);
  assert(b.metrics().dead_link_hops == 0);
}

void test_fault_config_keys() {
  SimParams p = presets::tiny();
  apply_param(p, "fault.enabled", "true");
  apply_param(p, "fault.seed", "42");
  apply_param(p, "fault.onset", "100");
  apply_param(p, "fault.link_fail_fraction", "0.25");
  apply_param(p, "fault.link_class", "global");
  apply_param(p, "fault.flap_period", "50");
  apply_param(p, "fault.flap_down", "10");
  apply_param(p, "fault.degrade_fraction", "0.1");
  apply_param(p, "fault.degrade_latency", "4");
  apply_param(p, "fault.hop_cap", "32");
  assert(p.fault.enabled);
  assert(p.fault.seed == 42);
  assert(p.fault.onset == 100);
  assert(p.fault.link_fail_fraction == 0.25);
  assert(p.fault.link_class == "global");
  assert(p.fault.flap_period == 50 && p.fault.flap_down == 10);
  assert(p.fault.degrade_latency == 4);
  assert(p.fault.hop_cap == 32);

  bool threw = false;
  try {
    apply_param(p, "fault.link_class", "quantum");
  } catch (const std::exception&) {
    threw = true;
  }
  assert(threw);
}

void test_atomic_write() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "dfsim_test_fault_atomic";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path target = dir / "results.json";

  auto read_all = [](const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  // Fresh write, then overwrite: content is complete and the temp file
  // never survives the call.
  write_file_atomic(target.string(), "{\"v\":1}");
  assert(read_all(target) == "{\"v\":1}");
  write_file_atomic(target.string(), "{\"v\":2,\"longer\":true}");
  assert(read_all(target) == "{\"v\":2,\"longer\":true}");
  assert(!fs::exists(target.string() + ".tmp"));

  // Failure path: an unwritable destination throws and must not leave a
  // partial target or stray temp behind.
  const fs::path missing = dir / "no_such_subdir" / "results.json";
  bool threw = false;
  try {
    write_file_atomic(missing.string(), "partial");
  } catch (const std::exception&) {
    threw = true;
  }
  assert(threw);
  assert(!fs::exists(missing));
  assert(!fs::exists(missing.string() + ".tmp"));

  fs::remove_all(dir);
}

}  // namespace

int main() {
  test_schedule_determinism();
  test_flap_windows();
  test_engine_invariants_all_topologies();
  test_flap_drain_reactivation();
  test_dead_routers_hop_cap();
  test_zero_overhead_until_onset();
  test_fault_config_keys();
  test_atomic_write();
  return EXIT_SUCCESS;
}
