// ContentionCounters: saturation behavior and head/tail symmetry.
#include <cassert>
#include <cstdlib>

#include "core/contention_counters.hpp"

int main() {
  using namespace dfsim;

  // Head/tail symmetry below saturation: N heads then N tails -> 0.
  {
    ContentionCounters counters(4, 15);
    for (int i = 0; i < 10; ++i) counters.on_head(2);
    assert(counters.value(2) == 10);
    for (int i = 0; i < 10; ++i) counters.on_tail_departure(2);
    assert(counters.value(2) == 0);
    assert(counters.value(0) == 0 && counters.value(1) == 0 &&
           counters.value(3) == 0);
  }

  // Saturation: the counter clamps at the cap...
  {
    ContentionCounters counters(2, 7);
    for (int i = 0; i < 100; ++i) counters.on_head(0);
    assert(counters.value(0) == 7);
    // ...and stays symmetric: 100 departures bring it exactly back to 0,
    // never below (dropped increments drop their matching decrement).
    for (int i = 0; i < 50; ++i) counters.on_tail_departure(0);
    assert(counters.value(0) == 7);  // still draining the overflow
    for (int i = 0; i < 50; ++i) counters.on_tail_departure(0);
    assert(counters.value(0) == 0);
    counters.on_tail_departure(0);  // underflow guard
    assert(counters.value(0) == 0);
  }

  // Interleaved traffic on several ports stays independent.
  {
    ContentionCounters counters(3, 15);
    counters.on_head(0);
    counters.on_head(1);
    counters.on_head(0);
    assert(counters.value(0) == 2);
    assert(counters.value(1) == 1);
    counters.on_tail_departure(0);
    assert(counters.value(0) == 1);
    assert(counters.value(1) == 1);
    counters.reset();
    assert(counters.value(0) == 0 && counters.value(1) == 0);
  }

  return EXIT_SUCCESS;
}
