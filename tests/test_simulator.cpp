// End-to-end simulator sanity at tiny scale: conservation, routing-mechanism
// invariants (MIN never misroutes, VAL always does), throughput under light
// load, adversarial behavior ordering, and the transient driver.
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "engine/experiment.hpp"
#include "engine/simulator.hpp"
#include "engine/sweep.hpp"

namespace {

dfsim::SteadyResult steady(dfsim::RoutingKind kind, dfsim::TrafficKind traffic,
                           double load) {
  dfsim::SimParams p = dfsim::presets::tiny();
  p.routing.kind = kind;
  p.traffic.kind = traffic;
  p.traffic.load = load;
  p.traffic.adv_offset = 1;
  dfsim::SteadyOptions opt;
  opt.warmup = 1500;
  opt.measure = 2000;
  return dfsim::run_steady(p, opt);
}

}  // namespace

int main() {
  using namespace dfsim;

  // Light uniform load: every mechanism must deliver close to offered load
  // with sane latencies.
  for (const RoutingKind kind :
       {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kUgalL,
        RoutingKind::kPiggyback, RoutingKind::kOlm, RoutingKind::kCbBase,
        RoutingKind::kCbHybrid, RoutingKind::kCbEctn}) {
    const SteadyResult r = steady(kind, TrafficKind::kUniform, 0.2);
    if (r.throughput < 0.15 || r.latency_avg <= 0.0) {
      std::fprintf(stderr, "kind=%s throughput=%.3f latency=%.1f\n",
                   to_string(kind).c_str(), r.throughput, r.latency_avg);
      return EXIT_FAILURE;
    }
    assert(r.backlog_per_node < 4.0);
  }

  // MIN is always fully minimal; VAL misroutes (essentially) all
  // inter-group packets.
  {
    const SteadyResult min = steady(RoutingKind::kMin, TrafficKind::kUniform, 0.2);
    assert(min.misrouted_fraction == 0.0);
    assert(min.minimal_path_fraction == 1.0);
    const SteadyResult val =
        steady(RoutingKind::kValiant, TrafficKind::kAdversarial, 0.2);
    assert(val.misrouted_fraction > 0.9);
    // VAL pays extra hops: strictly higher latency than MIN under UN.
    const SteadyResult val_un =
        steady(RoutingKind::kValiant, TrafficKind::kUniform, 0.2);
    assert(val_un.latency_avg > min.latency_avg);
  }

  // Adversarial traffic: MIN collapses onto the single inter-group link
  // (huge backlog), while Base and VAL keep delivering.
  {
    const SteadyResult min =
        steady(RoutingKind::kMin, TrafficKind::kAdversarial, 0.35);
    const SteadyResult base =
        steady(RoutingKind::kCbBase, TrafficKind::kAdversarial, 0.35);
    const SteadyResult val =
        steady(RoutingKind::kValiant, TrafficKind::kAdversarial, 0.35);
    assert(min.backlog_per_node > 4.0);  // saturated
    if (!(base.throughput > 1.5 * min.throughput)) {
      std::fprintf(stderr, "ADV: base=%.3f min=%.3f val=%.3f\n",
                   base.throughput, min.throughput, val.throughput);
      return EXIT_FAILURE;
    }
    // Base misroutes most adversarial traffic once counters trigger.
    assert(base.misrouted_fraction > 0.3);
  }

  // Transient driver: birth-bucketed stats exist on both sides of the
  // switch, and counter-based misrouting ramps up after it.
  {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kCbBase;
    TransientOptions topt;
    topt.before.kind = TrafficKind::kUniform;
    topt.before.load = 0.2;
    topt.after.kind = TrafficKind::kAdversarial;
    topt.after.adv_offset = 1;
    topt.after.load = 0.2;
    topt.warmup = 1000;
    topt.pre = 40;
    topt.post = 200;
    topt.reps = 2;
    const TransientResult res = run_transient(p, topt);
    assert(res.latency_at(-20, 20) > 0.0);
    assert(res.latency_at(150, 40) > 0.0);
    const double mis_before = res.misrouted_pct_at(-20, 20);
    const double mis_after = res.misrouted_pct_at(150, 40);
    if (!(mis_after > mis_before + 20.0)) {
      std::fprintf(stderr, "transient: mis before=%.1f after=%.1f\n",
                   mis_before, mis_after);
      return EXIT_FAILURE;
    }
  }

  // Sweep engine: results come back in order and match serial runs.
  {
    SimParams p = presets::tiny();
    SteadyOptions opt;
    opt.warmup = 400;
    opt.measure = 600;
    std::vector<SweepPoint> points;
    for (const double load : {0.1, 0.3}) {
      SweepPoint pt{p, opt};
      pt.params.traffic.load = load;
      points.push_back(pt);
    }
    const auto parallel = run_sweep(points, 2);
    const auto serial0 = run_steady(points[0].params, opt);
    const auto serial1 = run_steady(points[1].params, opt);
    assert(parallel.size() == 2);
    assert(parallel[0].throughput == serial0.throughput);
    assert(parallel[1].throughput == serial1.throughput);
    assert(parallel[0].latency_avg == serial0.latency_avg);
    assert(parallel[1].latency_avg == serial1.latency_avg);
  }

  // Multi-rep quantiles come from the POOLED latency histogram, not from
  // averaging per-rep quantiles (the mean of p99s is not the p99 of the
  // combined sample). Reproduce run_steady's reps by hand, merge the
  // histograms, and check the driver reports the merged order statistics.
  {
    SimParams p = presets::tiny();
    p.routing.kind = RoutingKind::kCbBase;
    p.traffic.kind = TrafficKind::kAdversarial;
    p.traffic.adv_offset = 1;
    p.traffic.load = 0.30;  // near saturation: rep-to-rep tails differ
    p.seed = 3;
    SteadyOptions opt;
    opt.warmup = 400;
    opt.measure = 800;
    opt.reps = 3;

    LatencyHistogram pooled;
    double mean_of_p99 = 0.0;
    for (std::int32_t rep = 0; rep < opt.reps; ++rep) {
      SimParams q = p;
      q.seed = p.seed + static_cast<std::uint64_t>(rep) * 7919u;
      Simulator sim(q);
      sim.run(opt.warmup);
      sim.begin_measurement();
      sim.run(opt.measure);
      pooled.merge(sim.metrics().latency_hist);
      mean_of_p99 += sim.metrics().latency_hist.quantile(0.99);
    }
    mean_of_p99 /= static_cast<double>(opt.reps);

    const SteadyResult r = run_steady(p, opt);
    assert(r.latency_p50 == pooled.quantile(0.50));
    assert(r.latency_p95 == pooled.quantile(0.95));
    assert(r.latency_p99 == pooled.quantile(0.99));
    // The old mean-of-quantiles aggregation genuinely differed here.
    assert(r.latency_p99 != mean_of_p99);
  }

  return EXIT_SUCCESS;
}
