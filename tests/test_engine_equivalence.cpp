// Engine-unification equivalence suite.
//
// (1) Dragonfly golden metrics: the engine must reproduce these numbers
//     *bit-exactly* for fixed seeds — every routing mechanism, uniform and
//     adversarial, at tiny scale (seed 12345, warmup 800, measure 1200,
//     load 0.3, ADV+1); double equality is intentional. The table pins the
//     whole chain (traffic draws, routing draws, iteration order, grant
//     order), so ANY engine restructure must keep it green unchanged; only
//     a deliberate behavior change may regenerate it (run with --print).
// (2) Flattened butterfly on the unified engine: the Section VI-D ordering
//     survives the move off the forked output-queued simulator.
// (3) Torus: minimal routes take the shorter ring direction, the
//     dateline x phase VC schedule stays in range and is deadlock-free in
//     practice (forward progress for the whole line-up under tornado at 2x
//     the ring cap).
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "engine/experiment.hpp"
#include "engine/simulator.hpp"
#include "topo/torus.hpp"

namespace {

using namespace dfsim;

struct Golden {
  RoutingKind kind;
  TrafficKind traffic;
  double throughput;
  double latency_avg;
  double misrouted_fraction;
  double backlog_per_node;
};

// Captured from the active-set engine after the distinct-candidate
// sampling fix (pick_misroute_channel enumerates pools <= 4 and samples
// without replacement above that); regenerate with `--print` after any
// further DELIBERATE behavior change only (ARCHITECTURE.md bit-exactness
// rule). MIN/VAL rows are identical to the original seed-engine capture —
// they never score candidates — which pins the mechanisms that must not
// move.
const Golden kGolden[] = {
    {RoutingKind::kMin, TrafficKind::kUniform, 0.30435185185185187, 74.019166413142685, 0, 0.027777777777777776},
    {RoutingKind::kMin, TrafficKind::kAdversarial, 0.125, 748.87407407407409, 0, 42.166666666666664},
    {RoutingKind::kValiant, TrafficKind::kUniform, 0.30314814814814817, 128.73946243127673, 0.90134392180818568, 0.25},
    {RoutingKind::kValiant, TrafficKind::kAdversarial, 0.30074074074074075, 136.39593596059115, 1, 0.20833333333333334},
    {RoutingKind::kUgalL, TrafficKind::kUniform, 0.30435185185185187, 74.408883480377241, 0.0066930331609370243, 0.027777777777777776},
    {RoutingKind::kUgalL, TrafficKind::kAdversarial, 0.25944444444444442, 224.40328336902212, 0.51713062098501072, 9.4444444444444446},
    {RoutingKind::kUgalG, TrafficKind::kUniform, 0.30462962962962964, 75.295744680851058, 0.032522796352583587, 0.055555555555555552},
    {RoutingKind::kUgalG, TrafficKind::kAdversarial, 0.28629629629629627, 179.19307891332471, 0.56468305304010347, 4.0694444444444446},
    {RoutingKind::kPiggyback, TrafficKind::kUniform, 0.30435185185185187, 74.408883480377241, 0.0066930331609370243, 0.027777777777777776},
    {RoutingKind::kPiggyback, TrafficKind::kAdversarial, 0.25944444444444442, 224.40328336902212, 0.51713062098501072, 9.4444444444444446},
    {RoutingKind::kOlm, TrafficKind::kUniform, 0.30481481481481482, 75.995139732685303, 0, 0.027777777777777776},
    {RoutingKind::kOlm, TrafficKind::kAdversarial, 0.27861111111111109, 223.48886673313393, 0.5503489531405783, 6.9722222222222223},
    {RoutingKind::kCbBase, TrafficKind::kUniform, 0.30435185185185187, 74.040766656525705, 0.00060845756008518403, 0.027777777777777776},
    {RoutingKind::kCbBase, TrafficKind::kAdversarial, 0.29351851851851851, 179.31703470031545, 0.65015772870662458, 2.2361111111111112},
    {RoutingKind::kCbHybrid, TrafficKind::kUniform, 0.30444444444444446, 74.022506082725059, 0.0021289537712895377, 0.027777777777777776},
    {RoutingKind::kCbHybrid, TrafficKind::kAdversarial, 0.30009259259259258, 146.72601049058932, 0.63930885529157666, 0.43055555555555558},
    {RoutingKind::kCbEctn, TrafficKind::kUniform, 0.30435185185185187, 74.040766656525705, 0.00060845756008518403, 0.027777777777777776},
    {RoutingKind::kCbEctn, TrafficKind::kAdversarial, 0.30129629629629628, 169.52397049784881, 0.67363245236631841, 1.2916666666666667},
};

const char* enum_name(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kMin: return "kMin";
    case RoutingKind::kValiant: return "kValiant";
    case RoutingKind::kUgalL: return "kUgalL";
    case RoutingKind::kUgalG: return "kUgalG";
    case RoutingKind::kPiggyback: return "kPiggyback";
    case RoutingKind::kOlm: return "kOlm";
    case RoutingKind::kCbBase: return "kCbBase";
    case RoutingKind::kCbHybrid: return "kCbHybrid";
    case RoutingKind::kCbEctn: return "kCbEctn";
    case RoutingKind::kArn: return "kArn";
  }
  return "?";
}

SteadyResult run_point(TopologyKind topo, RoutingKind kind,
                       TrafficKind traffic, double load, int adv_offset) {
  SimParams p;
  switch (topo) {
    case TopologyKind::kDragonfly:
      p = presets::tiny();
      break;
    case TopologyKind::kFbfly:
      p = presets::fbfly(4, 2, 4);
      break;
    case TopologyKind::kTorus:
      p = presets::torus(8, 2, 2);
      break;
  }
  p.routing.kind = kind;
  p.traffic.kind = traffic;
  p.traffic.load = load;
  p.traffic.adv_offset = adv_offset;
  p.seed = 12345;
  SteadyOptions opt;
  opt.warmup = 800;
  opt.measure = 1200;
  return run_steady(p, opt);
}

}  // namespace

int main(int argc, char** argv) {
  // Regeneration mode (deliberate behavior changes ONLY — see the
  // bit-exactness rule in ARCHITECTURE.md): prints the kGolden table for
  // pasting back into this file.
  if (argc > 1 && std::string_view(argv[1]) == "--print") {
    for (const Golden& g : kGolden) {
      const SteadyResult r =
          run_point(TopologyKind::kDragonfly, g.kind, g.traffic, 0.3, 1);
      std::printf("    {RoutingKind::%s, TrafficKind::k%s, %.17g, %.17g, "
                  "%.17g, %.17g},\n",
                  enum_name(g.kind),
                  g.traffic == TrafficKind::kUniform ? "Uniform"
                                                     : "Adversarial",
                  r.throughput, r.latency_avg, r.misrouted_fraction,
                  r.backlog_per_node);
    }
    return EXIT_SUCCESS;
  }

  // --- (1) dragonfly golden reproduction, bit-exact -----------------------
  for (const Golden& g : kGolden) {
    const SteadyResult r =
        run_point(TopologyKind::kDragonfly, g.kind, g.traffic, 0.3, 1);
    if (r.throughput != g.throughput || r.latency_avg != g.latency_avg ||
        r.misrouted_fraction != g.misrouted_fraction ||
        r.backlog_per_node != g.backlog_per_node) {
      std::fprintf(stderr,
                   "dragonfly golden mismatch kind=%s traffic=%s\n"
                   "  thr %.17g vs %.17g\n  lat %.17g vs %.17g\n"
                   "  mis %.17g vs %.17g\n  bkl %.17g vs %.17g\n",
                   to_string(g.kind).c_str(),
                   to_string(g.traffic).c_str(), r.throughput, g.throughput,
                   r.latency_avg, g.latency_avg, r.misrouted_fraction,
                   g.misrouted_fraction, r.backlog_per_node,
                   g.backlog_per_node);
      return EXIT_FAILURE;
    }
  }

  // --- (2) flattened butterfly keeps the Section VI-D ordering ------------
  {
    const SteadyResult min_un =
        run_point(TopologyKind::kFbfly, RoutingKind::kMin,
                  TrafficKind::kUniform, 0.2, 1);
    const SteadyResult cb_un =
        run_point(TopologyKind::kFbfly, RoutingKind::kCbBase,
                  TrafficKind::kUniform, 0.2, 1);
    assert(min_un.throughput > 0.15);
    assert(min_un.misrouted_fraction == 0.0);
    assert(cb_un.throughput > 0.15);
    assert(cb_un.misrouted_fraction < 0.05);

    const SteadyResult min_adv =
        run_point(TopologyKind::kFbfly, RoutingKind::kMin,
                  TrafficKind::kAdversarial, 0.5, 1);
    const SteadyResult cb_adv =
        run_point(TopologyKind::kFbfly, RoutingKind::kCbBase,
                  TrafficKind::kAdversarial, 0.5, 1);
    if (!(cb_adv.throughput > 1.15 * min_adv.throughput)) {
      std::fprintf(stderr, "fbfly ADJ: cb=%.3f min=%.3f\n",
                   cb_adv.throughput, min_adv.throughput);
      return EXIT_FAILURE;
    }
    assert(cb_adv.misrouted_fraction > 0.3);
  }

  // --- (3a) torus minimal routes: shorter ring direction, DOR length ------
  {
    const TorusTopology topo(TorusParams{8, 2, 2});
    assert(topo.routers() == 64);
    assert(topo.forward_ports() == 4);
    for (RouterId r = 0; r < topo.routers(); ++r) {
      for (PortIndex port = 0; port < topo.forward_ports(); ++port) {
        const RouterId peer = topo.peer(r, port);
        assert(peer != r);
        assert(topo.peer(peer, topo.peer_port(r, port)) == r);
      }
      for (RouterId dr = 0; dr < topo.routers(); ++dr) {
        RouterId at = r;
        std::int32_t hops = 0;
        while (at != dr) {
          const PortIndex port = topo.route_toward(at, dr);
          assert(port >= 0 && port < topo.forward_ports());
          at = topo.peer(at, port);
          ++hops;
          assert(hops <= 2 * 4);  // n * k/2
        }
        assert(hops == topo.dor_hops(r, dr));  // shortest-direction DOR
      }
    }
  }

  // --- (3b) torus VC schedule: in range, dateline bump within a phase -----
  {
    const TorusTopology topo(TorusParams{8, 2, 2});
    for (RouterId r = 0; r < topo.routers(); ++r) {
      for (PortIndex out = 0; out < topo.forward_ports(); ++out) {
        for (std::int8_t state = 0; state < 4; ++state) {
          for (const bool phase0 : {true, false}) {
            const VcIndex vc = topo.vc_class(r, out, state, phase0);
            assert(vc >= 0 && vc < 4);
            // Phase pairs are disjoint: phase 0 uses {0,1}, phase 1 {2,3}.
            assert(phase0 ? vc < 2 : vc >= 2);
            const HopTransition t = topo.on_hop(r, out, state);
            // Crossing the wrap link raises the dateline bit.
            if (topo.is_wrap_hop(r, out)) assert((t.vc_state & 1) == 1);
            assert(!t.end_phase0);  // phases end on arrival at `inter`
          }
        }
      }
    }
    // Phase end clears the dateline bit for the fresh destination leg.
    assert(topo.phase_end_state(3) == 2);
    assert(topo.phase_end_state(1) == 0);
  }

  // --- (3c) torus line-up under tornado at 2x the ring cap: forward
  // progress for every mechanism (practical deadlock-freedom), MIN capped
  // at the one-direction ring bound, UGAL-L clearly above it.
  {
    const double ring_cap = 1.0 / (2.0 * 4.0);  // 1/(c * k/2) = 0.125
    double min_thr = 0.0;
    double ugal_thr = 0.0;
    for (const RoutingKind kind :
         {RoutingKind::kMin, RoutingKind::kValiant, RoutingKind::kUgalL,
          RoutingKind::kPiggyback, RoutingKind::kCbBase,
          RoutingKind::kCbHybrid}) {
      const SteadyResult r = run_point(TopologyKind::kTorus, kind,
                                       TrafficKind::kAdversarial,
                                       2.0 * ring_cap, 4);
      assert(r.throughput > 0.01);  // the network keeps moving
      if (kind == RoutingKind::kMin) min_thr = r.throughput;
      if (kind == RoutingKind::kUgalL) ugal_thr = r.throughput;
      if (kind == RoutingKind::kMin) {
        // One ring direction saturated: at most the cap (+ slack), and the
        // through-priority allocator should actually reach it.
        assert(r.throughput < 1.1 * ring_cap);
        assert(r.throughput > 0.85 * ring_cap);
        assert(r.misrouted_fraction == 0.0);
      }
      if (kind == RoutingKind::kValiant) {
        assert(r.misrouted_fraction > 0.9);
      }
    }
    if (!(ugal_thr > 1.3 * min_thr)) {
      std::fprintf(stderr, "torus tornado: ugal=%.3f min=%.3f\n", ugal_thr,
                   min_thr);
      return EXIT_FAILURE;
    }
  }

  // --- torus under uniform: adaptive mechanisms ride MIN at low load ------
  {
    const SteadyResult min_un = run_point(
        TopologyKind::kTorus, RoutingKind::kMin, TrafficKind::kUniform, 0.2, 4);
    const SteadyResult cb_un =
        run_point(TopologyKind::kTorus, RoutingKind::kCbBase,
                  TrafficKind::kUniform, 0.2, 4);
    assert(min_un.throughput > 0.18);
    assert(cb_un.throughput > 0.18);
    assert(cb_un.misrouted_fraction < 0.15);
  }

  return EXIT_SUCCESS;
}
