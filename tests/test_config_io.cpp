// Config-file overlay: partial files override only the keys they mention;
// sections and dotted keys are equivalent; bad keys/values throw.
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "sim/config_io.hpp"

namespace {

std::string write_temp(const std::string& contents) {
  const std::string path = "dfsim_test_config.ini";
  std::ofstream out(path);
  out << contents;
  return path;
}

}  // namespace

int main() {
  using namespace dfsim;

  // Overlay semantics: only mentioned keys change.
  {
    const std::string path = write_temp(
        "# comment\n"
        "topo.a = 16\n"
        "routing.kind = ECtN   ; trailing comment\n"
        "\n"
        "[traffic]\n"
        "load = 0.35\n"
        "kind = ADV\n");
    const SimParams base = presets::medium();
    const SimParams params = load_params(path, base);
    assert(params.topo.a == 16);
    assert(params.topo.p == base.topo.p);        // untouched
    assert(params.topo.h == base.topo.h);        // untouched
    assert(params.routing.kind == RoutingKind::kCbEctn);
    assert(params.traffic.load == 0.35);
    assert(params.traffic.kind == TrafficKind::kAdversarial);
    assert(params.router.vcs_local == base.router.vcs_local);
    std::remove(path.c_str());
  }

  // apply_param covers scalars, bools, and enums.
  {
    SimParams p = presets::tiny();
    apply_param(p, "routing.statistical_trigger", "true");
    assert(p.routing.statistical_trigger);
    apply_param(p, "routing.global_policy", "CRG");
    assert(p.routing.global_policy == GlobalMisroutePolicy::kCrg);
    apply_param(p, "packet_size_phits", "4");
    assert(p.packet_size_phits == 4);
  }

  // Traffic-subsystem keys: every model and injection knob is selectable.
  {
    SimParams p = presets::tiny();
    apply_param(p, "traffic.kind", "hotspot");
    assert(p.traffic.kind == TrafficKind::kHotspot);
    apply_param(p, "traffic.hotspot_count", "8");
    apply_param(p, "traffic.hotspot_fraction", "0.4");
    assert(p.traffic.hotspot_count == 8);
    assert(p.traffic.hotspot_fraction == 0.4);
    apply_param(p, "traffic.kind", "shift");
    apply_param(p, "traffic.shift_offset", "9");
    assert(p.traffic.kind == TrafficKind::kShift);
    assert(p.traffic.shift_offset == 9);
    apply_param(p, "traffic.injection", "bursty");
    apply_param(p, "traffic.burst_factor", "6");
    apply_param(p, "traffic.burst_len", "25");
    assert(p.traffic.injection == InjectionProcess::kBursty);
    assert(p.traffic.burst_factor == 6.0);
    assert(p.traffic.burst_len == 25.0);
    // trace_path implies kTrace.
    apply_param(p, "traffic.trace_path", "run.dftrace");
    assert(p.traffic.kind == TrafficKind::kTrace);
    assert(p.traffic.trace_path == "run.dftrace");

    bool threw = false;
    try {
      apply_param(p, "traffic.kind", "fractal");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);
  }

  // Errors: unknown key, bad value, missing file.
  {
    SimParams p = presets::tiny();
    bool threw = false;
    try {
      apply_param(p, "router.flux_capacitor", "1");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);

    threw = false;
    try {
      apply_param(p, "traffic.load", "heavy");
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);

    threw = false;
    try {
      (void)load_params("does_not_exist.ini", p);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    assert(threw);
  }

  return EXIT_SUCCESS;
}
