// Seeded CHK-DISPATCH violation: the engine switches on the routing-kind
// enum instead of dispatching through the RoutingMechanism interface.
namespace dfsim {

void Simulator::decide_injection() {
  switch (params_.routing.kind) {  // VIOLATION: RoutingKind leak
    case RoutingKind::kMin:
      return;
    default:
      break;
  }
}

}  // namespace dfsim
