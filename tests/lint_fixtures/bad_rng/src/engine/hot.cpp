// Seeded CHK-RNG violation: a routing-stream draw site that is not in the
// fixture's (empty) rng_sites.txt allowlist.
namespace dfsim {

class Pathfinder {
 public:
  int pick(int n) {
    return static_cast<int>(rng_.next_below(n));  // undeclared draw site
  }

 private:
  Rng rng_;
};

}  // namespace dfsim
