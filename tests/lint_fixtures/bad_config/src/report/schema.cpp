// Canonical serialization for the bad_config fixture: emits only the
// documented key, so the undocumented one is also missing from the hash.
namespace dfsim {

std::string canonical_params_text(const SimParams& p) {
  std::string out;
  auto i32 = [&](const char* key, std::int32_t v) { append(out, key, v); };
  i32("router.vcs", p.router.vcs);
  return out;
}

}  // namespace dfsim
