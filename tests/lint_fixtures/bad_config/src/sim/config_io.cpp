// Seeded CHK-CONFIG violation: `router.undocumented` is parsed here but is
// neither documented in docs/CONFIG.md nor emitted by the canonical
// serialization in src/report/schema.cpp.
namespace dfsim {

bool apply_param(SimParams& p, const std::string& key,
                 const std::string& value) {
  if (key == "router.vcs") {
    p.router.vcs = parse_i32(value);
    return true;
  }
  if (key == "router.undocumented") {  // VIOLATION
    p.router.undocumented = parse_i32(value);
    return true;
  }
  return false;
}

}  // namespace dfsim
