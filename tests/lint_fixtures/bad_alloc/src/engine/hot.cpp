// Seeded CHK-ALLOC violation: a push_back in a listed hot-path function.
namespace dfsim {

void Engine::route_cycle() {
  scratch_.push_back(42);  // VIOLATION: allocation in the hot path
}

}  // namespace dfsim
