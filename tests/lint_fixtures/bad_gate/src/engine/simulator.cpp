// Seeded CHK-GATE violation: Simulator::step() touches the telemetry sink
// without the telemetry_on_ guard dominating the access.
namespace dfsim {

void Simulator::advance_faults() {
  health_.tick();  // fine: every call site below is fault_on_-guarded
}

void Simulator::flush_telemetry() {
  sink_.flush();  // VIOLATION: reachable from step() with no guard anywhere
}

void Simulator::step() {
  if (fault_on_) advance_faults();
  flush_telemetry();  // missing `if (telemetry_on_)`
}

}  // namespace dfsim
