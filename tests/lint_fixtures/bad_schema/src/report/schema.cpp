// Seeded CHK-SCHEMA violation: `surprise_field` is written to the results
// document but docs/SCHEMA.md does not document it.
namespace dfsim::report {

Json to_json(const ResultsDoc& doc) {
  Json root;
  root.set("schema", doc.header.schema);
  root.set("surprise_field", 42);  // VIOLATION: undocumented
  return root;
}

}  // namespace dfsim::report
