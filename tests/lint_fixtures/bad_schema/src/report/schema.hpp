// Version constant for the bad_schema fixture.
namespace dfsim::report {
inline constexpr const char* kSchemaVersion = "dfsim-results/v2";
}
