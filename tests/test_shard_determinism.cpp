// Sharded-engine determinism suite (ROADMAP item 1).
//
// A sharded simulation must be a pure function of (params, seed,
// engine.threads) — never of thread scheduling. The cycle barrier applies
// cross-shard events in a fixed (source shard, FIFO) order, so no
// interleaving can leak into results.
//
// (1) Five repeated runs at the same shard count produce bit-identical
//     metrics, lifetime totals, and delivery logs — under deliberately
//     skewed worker start times (debug_set_shard_jitter staggers each
//     worker's dispatch by shard_index * jitter microseconds, the crudest
//     possible scheduling perturbation).
// (2) The full results pipeline is byte-stable: the same registry
//     experiment at the same shard count serializes to the identical
//     dfsim-results JSON document, run after run.
// (3) Different shard counts are DIFFERENT deterministic simulations
//     (documented: per-shard RNG streams, one-cycle cross-shard credit
//     return, snapshot staleness). Their documents differ — and both still
//     pass the paper-parity trend gates, because sharding changes draw
//     sequences, not physics.
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/simulator.hpp"
#include "report/json.hpp"
#include "report/parity.hpp"
#include "report/registry.hpp"
#include "sim/config.hpp"

namespace {

using namespace dfsim;

struct RunCapture {
  Simulator::Metrics metrics;
  Simulator::Totals totals;
  std::vector<Simulator::Delivery> deliveries;
  std::int64_t in_network = 0;
};

RunCapture run_once(std::int32_t threads, std::int32_t jitter_us,
                    RoutingKind kind = RoutingKind::kCbHybrid) {
  Simulator::debug_set_shard_jitter(jitter_us);
  SimParams p = presets::tiny();
  p.routing.kind = kind;
  if (kind == RoutingKind::kArn) {
    p.notify.enabled = true;
    p.notify.throttle_injection = true;  // exercises the refusal path too
  }
  p.traffic.kind = TrafficKind::kAdversarial;
  p.traffic.load = 0.35;
  p.traffic.adv_offset = 1;
  p.seed = 4242;
  p.engine.threads = threads;
  p.fault.enabled = true;
  p.fault.onset = 500;
  p.fault.link_fail_fraction = 0.05;
  p.fault.link_class = "global";
  Simulator sim(p);
  sim.enable_delivery_log();
  sim.run(300);
  sim.begin_measurement();
  sim.run(900);
  RunCapture cap;
  cap.metrics = sim.metrics();
  cap.totals = sim.lifetime_totals();
  cap.deliveries = sim.delivery_log();
  cap.in_network = sim.packets_in_network();
  Simulator::debug_set_shard_jitter(0);
  assert(sim.debug_check_active_state());
  return cap;
}

bool identical(const RunCapture& a, const RunCapture& b) {
  if (a.metrics.delivered != b.metrics.delivered ||
      a.metrics.delivered_phits != b.metrics.delivered_phits ||
      a.metrics.latency_sum != b.metrics.latency_sum ||
      a.metrics.misrouted != b.metrics.misrouted ||
      a.metrics.local_misrouted != b.metrics.local_misrouted ||
      a.metrics.minimal_path != b.metrics.minimal_path ||
      a.metrics.generated != b.metrics.generated ||
      a.metrics.refused != b.metrics.refused ||
      a.metrics.dropped != b.metrics.dropped ||
      a.metrics.undeliverable != b.metrics.undeliverable ||
      a.metrics.dead_link_hops != b.metrics.dead_link_hops) {
    return false;
  }
  if (a.totals.generated != b.totals.generated ||
      a.totals.refused != b.totals.refused ||
      a.totals.delivered != b.totals.delivered ||
      a.totals.dropped != b.totals.dropped ||
      a.totals.undeliverable != b.totals.undeliverable) {
    return false;
  }
  if (a.in_network != b.in_network) return false;
  if (a.deliveries.size() != b.deliveries.size()) return false;
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    if (a.deliveries[i].birth != b.deliveries[i].birth ||
        a.deliveries[i].latency != b.deliveries[i].latency ||
        a.deliveries[i].misrouted != b.deliveries[i].misrouted ||
        a.deliveries[i].minimal_path != b.deliveries[i].minimal_path) {
      return false;
    }
  }
  return true;
}

std::string run_doc(std::int32_t threads) {
  const report::ExperimentSpec* spec = report::find_experiment("fig5a");
  assert(spec != nullptr);
  report::RunContext ctx;
  ctx.scale = "tiny";
  ctx.base = presets::by_name(ctx.scale);
  ctx.base.engine.threads = threads;
  ctx.options.warmup = 300;
  ctx.options.measure = 500;
  ctx.loads = std::vector<double>{0.05, 0.9};
  report::ResultsDoc doc = report::run_experiment(*spec, ctx);
  doc.header.git_rev.clear();  // byte-compare must not depend on the tree
  return report::to_json(doc).dump();
}

}  // namespace

int main() {
  // --- (1) repeated sharded runs, thread-start jitter swept ---------------
  const RunCapture ref = run_once(3, 0);
  assert(ref.metrics.delivered > 0);
  assert(ref.metrics.dropped + ref.totals.dropped > 0);  // faults did fire
  const std::int32_t jitters_us[] = {0, 100, 400, 900, 2000};
  for (int run = 0; run < 5; ++run) {
    const RunCapture cap = run_once(3, jitters_us[run]);
    if (!identical(ref, cap)) {
      std::fprintf(stderr,
                   "run %d (jitter %d us) diverged: delivered %lld vs %lld, "
                   "latency_sum %.17g vs %.17g\n",
                   run, jitters_us[run],
                   static_cast<long long>(cap.metrics.delivered),
                   static_cast<long long>(ref.metrics.delivered),
                   cap.metrics.latency_sum, ref.metrics.latency_sum);
      return EXIT_FAILURE;
    }
  }

  // --- (1b) same sweep under ARN: every shard reads the notification
  // table other shards write, so the barrier fencing of the update window
  // is what keeps the runs identical under scheduling skew.
  const RunCapture arn_ref = run_once(3, 0, RoutingKind::kArn);
  assert(arn_ref.metrics.delivered > 0);
  for (const std::int32_t jitter : {400, 2000}) {
    const RunCapture cap = run_once(3, jitter, RoutingKind::kArn);
    if (!identical(arn_ref, cap)) {
      std::fprintf(stderr, "ARN run (jitter %d us) diverged\n", jitter);
      return EXIT_FAILURE;
    }
  }

  // --- (2) results documents are byte-identical across runs ---------------
  const std::string doc_t2 = run_doc(2);
  for (int run = 0; run < 2; ++run) {
    const std::string again = run_doc(2);
    if (again != doc_t2) {
      std::fprintf(stderr, "threads=2 results JSON not byte-stable\n");
      return EXIT_FAILURE;
    }
  }

  // --- (3) different shard counts: different documents, same physics ------
  const std::string doc_t4 = run_doc(4);
  if (doc_t4 == doc_t2) {
    // Not wrong physically, but it would mean the per-shard RNG streams
    // collapsed back into one — the documented contract says they differ.
    std::fprintf(stderr, "threads=2 and threads=4 produced identical JSON\n");
    return EXIT_FAILURE;
  }
  for (const std::string* dump : {&doc_t2, &doc_t4}) {
    const report::ResultsDoc doc =
        report::doc_from_json(report::Json::parse(*dump));
    const auto outcomes = report::check_trend_gates(doc);
    assert(!outcomes.empty());
    if (!report::all_passed(outcomes)) {
      for (const auto& o : outcomes) {
        std::fprintf(stderr, "gate %s: %s (%s)\n", o.gate.c_str(),
                     o.status == report::GateStatus::kFail ? "FAIL" : "ok",
                     o.detail.c_str());
      }
      return EXIT_FAILURE;
    }
  }

  return EXIT_SUCCESS;
}
