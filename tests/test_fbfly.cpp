// Flattened-butterfly companion simulator: delivery under uniform traffic,
// MIN collapse vs CB recovery under the row adversary, and the delivery log.
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "fbfly/fb_simulator.hpp"

namespace {

// The row adversary ("ADJ") is ADV+1 under the FB traffic grouping.
dfsim::TrafficParams fb_traffic(dfsim::TrafficKind kind, double load) {
  dfsim::TrafficParams traffic;
  traffic.kind = kind;
  traffic.adv_offset = 1;
  traffic.load = load;
  return traffic;
}

dfsim::fbfly::FbSimulator make(dfsim::fbfly::FbRouting routing,
                               dfsim::TrafficKind kind, double load) {
  dfsim::fbfly::FbConfig cfg;
  cfg.topo = dfsim::fbfly::FbParams{4, 2, 4};
  cfg.routing = routing;
  cfg.traffic = fb_traffic(kind, load);
  cfg.seed = 3;
  return dfsim::fbfly::FbSimulator(cfg);
}

}  // namespace

int main() {
  using namespace dfsim;
  using namespace dfsim::fbfly;

  const FbParams shape{4, 2, 4};
  assert(shape.routers() == 16);
  assert(shape.nodes() == 64);
  assert(shape.channels() == 6);

  // Uniform light load: MIN delivers ~offered load, zero misrouting, CB
  // matches it (no false triggers).
  {
    FbSimulator min_sim = make(FbRouting::kMin, TrafficKind::kUniform, 0.2);
    min_sim.run(1000);
    min_sim.start_measurement();
    min_sim.run(2000);
    assert(min_sim.throughput() > 0.15);
    assert(min_sim.metrics().misrouted_fraction() == 0.0);

    FbSimulator cb_sim = make(FbRouting::kContention, TrafficKind::kUniform, 0.2);
    cb_sim.run(1000);
    cb_sim.start_measurement();
    cb_sim.run(2000);
    assert(cb_sim.throughput() > 0.15);
    assert(cb_sim.metrics().misrouted_fraction() < 0.05);
  }

  // Row adversary at a load past the single-channel cap (1/c = 0.25): MIN
  // saturates; CB and VAL recover bandwidth through nonminimal paths.
  {
    FbSimulator min_sim = make(FbRouting::kMin, TrafficKind::kAdversarial, 0.5);
    min_sim.run(1000);
    min_sim.start_measurement();
    min_sim.run(2000);

    FbSimulator cb_sim = make(FbRouting::kContention, TrafficKind::kAdversarial, 0.5);
    cb_sim.run(1000);
    cb_sim.start_measurement();
    cb_sim.run(2000);

    if (!(cb_sim.throughput() > 1.2 * min_sim.throughput())) {
      std::fprintf(stderr, "ADJ: cb=%.3f min=%.3f\n", cb_sim.throughput(),
                   min_sim.throughput());
      return EXIT_FAILURE;
    }
    assert(cb_sim.metrics().misrouted_fraction() > 0.3);
    assert(min_sim.backlog_per_node() > cb_sim.backlog_per_node());
  }

  // Delivery log + mid-run traffic switch (the transient bench workflow).
  {
    FbSimulator sim = make(FbRouting::kContention, TrafficKind::kUniform, 0.3);
    sim.run(500);
    const Cycle switch_cycle = sim.now();
    sim.set_traffic(fb_traffic(TrafficKind::kAdversarial, 0.3));
    sim.enable_delivery_log();
    sim.run(1000);
    assert(!sim.delivery_log().empty());
    bool saw_post_switch_misroute = false;
    for (const FbSimulator::Delivery& d : sim.delivery_log()) {
      assert(d.latency > 0);
      if (d.birth >= switch_cycle && d.misrouted) {
        saw_post_switch_misroute = true;
      }
    }
    assert(saw_post_switch_misroute);
  }

  return EXIT_SUCCESS;
}
