// Flattened butterfly on the unified engine: topology invariants, delivery
// under uniform traffic, MIN collapse vs CB recovery under the row
// adversary, and the delivery log (a feature the old forked fbfly simulator
// had silently lost).
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "engine/simulator.hpp"
#include "fbfly/fb_topology.hpp"

namespace {

dfsim::SimParams make(dfsim::RoutingKind routing, dfsim::TrafficKind kind,
                      double load) {
  dfsim::SimParams p = dfsim::presets::fbfly(4, 2, 4);
  p.routing.kind = routing;
  p.traffic.kind = kind;
  p.traffic.adv_offset = 1;  // row adversary ("ADJ") under the FB grouping
  p.traffic.load = load;
  p.seed = 3;
  return p;
}

}  // namespace

int main() {
  using namespace dfsim;

  const FbflyParams shape{4, 2, 4};
  assert(shape.routers() == 16);
  assert(shape.nodes() == 64);
  assert(shape.channels() == 6);

  // Topology invariants: peer links are symmetric, DOR is minimal and
  // reaches the destination within n hops.
  {
    const FlattenedButterflyTopology topo(shape);
    assert(topo.routers() == 16);
    assert(topo.forward_ports() == 6);
    assert(topo.concentration() == 4);
    for (RouterId r = 0; r < topo.routers(); ++r) {
      for (PortIndex port = 0; port < topo.forward_ports(); ++port) {
        const RouterId peer = topo.peer(r, port);
        const PortIndex back = topo.peer_port(r, port);
        assert(peer != r);
        assert(topo.peer(peer, back) == r);
        assert(topo.peer_port(peer, back) == port);
      }
      for (RouterId dr = 0; dr < topo.routers(); ++dr) {
        RouterId at = r;
        std::int32_t hops = 0;
        while (at != dr) {
          const PortIndex port = topo.route_toward(at, dr);
          assert(port >= 0 && port < topo.forward_ports());
          at = topo.peer(at, port);
          ++hops;
          assert(hops <= shape.n);
        }
        assert(hops == topo.dor_hops(r, dr));
      }
    }
  }

  // Uniform light load: MIN delivers ~offered load, zero misrouting, CB
  // matches it (no false triggers).
  {
    Simulator min_sim(make(RoutingKind::kMin, TrafficKind::kUniform, 0.2));
    min_sim.run(1000);
    min_sim.begin_measurement();
    min_sim.run(2000);
    assert(min_sim.throughput() > 0.15);
    assert(min_sim.metrics().misrouted_fraction() == 0.0);

    Simulator cb_sim(make(RoutingKind::kCbBase, TrafficKind::kUniform, 0.2));
    cb_sim.run(1000);
    cb_sim.begin_measurement();
    cb_sim.run(2000);
    assert(cb_sim.throughput() > 0.15);
    assert(cb_sim.metrics().misrouted_fraction() < 0.05);
  }

  // Row adversary at a load past the single-channel cap (1/c = 0.25): MIN
  // saturates; CB and VAL recover bandwidth through nonminimal paths.
  {
    Simulator min_sim(
        make(RoutingKind::kMin, TrafficKind::kAdversarial, 0.5));
    min_sim.run(1000);
    min_sim.begin_measurement();
    min_sim.run(2000);

    Simulator cb_sim(
        make(RoutingKind::kCbBase, TrafficKind::kAdversarial, 0.5));
    cb_sim.run(1000);
    cb_sim.begin_measurement();
    cb_sim.run(2000);

    if (!(cb_sim.throughput() > 1.15 * min_sim.throughput())) {
      std::fprintf(stderr, "ADJ: cb=%.3f min=%.3f\n", cb_sim.throughput(),
                   min_sim.throughput());
      return EXIT_FAILURE;
    }
    assert(cb_sim.metrics().misrouted_fraction() > 0.3);
    assert(min_sim.backlog_per_node() > cb_sim.backlog_per_node());
  }

  // Delivery log + mid-run traffic switch (the transient bench workflow).
  {
    Simulator sim(make(RoutingKind::kCbBase, TrafficKind::kUniform, 0.3));
    sim.run(500);
    const Cycle switch_cycle = sim.now();
    SimParams adv = make(RoutingKind::kCbBase, TrafficKind::kAdversarial, 0.3);
    sim.set_traffic(adv.traffic);
    sim.enable_delivery_log();
    sim.run(1000);
    assert(!sim.delivery_log().empty());
    bool saw_post_switch_misroute = false;
    for (const Simulator::Delivery& d : sim.delivery_log()) {
      assert(d.latency > 0);
      if (d.birth >= switch_cycle && d.misrouted) {
        saw_post_switch_misroute = true;
      }
    }
    assert(saw_post_switch_misroute);
  }

  // ECtN is dragonfly-shaped; the engine must reject it here loudly rather
  // than run a broken snapshot.
  {
    bool threw = false;
    try {
      Simulator sim(make(RoutingKind::kCbEctn, TrafficKind::kUniform, 0.2));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    assert(threw);
  }

  return EXIT_SUCCESS;
}
