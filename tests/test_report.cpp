// Report-layer unit tests: JSON canonical round-trip (emit -> parse ->
// re-emit byte-identical), schema document round-trip, config-hash
// stability and sensitivity, and a parity-gate self-test where a
// deliberately corrupted golden must fail while the pristine one passes.
#include <cassert>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "report/json.hpp"
#include "report/parity.hpp"
#include "report/registry.hpp"
#include "report/render.hpp"
#include "report/schema.hpp"
#include "sim/config_io.hpp"

using namespace dfsim;
using namespace dfsim::report;

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------

void test_json_roundtrip() {
  Json root = Json::object();
  root.set("string", Json("hi \"there\"\nline2\ttab"));
  root.set("bool_t", Json(true));
  root.set("bool_f", Json(false));
  root.set("null", Json());
  root.set("int", Json(42.0));
  root.set("neg", Json(-17.0));
  root.set("zero", Json(0.0));
  root.set("neg_zero", Json(-0.0));
  Json numbers = Json::array();
  // Awkward doubles: non-terminating binary fractions, tiny/huge exponents,
  // values needing all 17 digits.
  for (const double v : {0.1, 1.0 / 3.0, 2.5e-17, 6.02214076e23, 123.456,
                         0.30000000000000004, 1e-300, -3.5}) {
    numbers.push_back(Json(v));
  }
  root.set("numbers", std::move(numbers));
  Json nested = Json::array();
  Json row = Json::array();
  row.push_back(Json(1.0));
  row.push_back(Json());
  nested.push_back(std::move(row));
  root.set("nested", std::move(nested));

  const std::string once = root.dump();
  const std::string twice = Json::parse(once).dump();
  assert(once == twice && "emit -> parse -> re-emit must be byte-identical");
  const std::string thrice = Json::parse(twice).dump();
  assert(twice == thrice);

  // Parsed values survive exactly.
  const Json back = Json::parse(once);
  assert(back.get("numbers").at(0).as_number() == 0.1);
  assert(back.get("numbers").at(1).as_number() == 1.0 / 3.0);
  assert(back.get("string").as_string() == "hi \"there\"\nline2\ttab");
  assert(back.get("null").is_null());
  assert(back.get("neg_zero").as_number() == 0.0);

  // Non-finite numbers serialize as null (missing data).
  assert(Json::number_to_string(kNaN) == "null");

  // Parse errors throw instead of corrupting.
  bool threw = false;
  try {
    (void)Json::parse("{\"unterminated\": ");
  } catch (const std::exception&) {
    threw = true;
  }
  assert(threw);
  std::cout << "json roundtrip ok\n";
}

ResultsDoc make_test_doc() {
  ResultsDoc doc;
  doc.header.experiment = "fig5b";
  doc.header.title = "test doc";
  doc.header.paper_ref = "Fig. 5b";
  doc.header.topology = "dragonfly";
  doc.header.scale = "tiny";
  doc.header.nodes = 72;
  doc.header.config_hash = config_hash(presets::tiny());
  doc.header.git_rev = "";
  doc.header.seed = 1;
  doc.header.warmup = 1000;
  doc.header.measure = 2000;
  doc.header.reps = 1;

  Panel panel;
  panel.name = "ADV+1";
  panel.kind = Panel::Kind::kGrid;
  panel.x_label = "load";
  panel.x_labels = {"0.10", "0.45"};
  panel.x_values = {0.10, 0.45};
  panel.series = {"MIN", "VAL", "PB", "OLM", "Base", "Hybrid", "ECtN"};
  // Shaped like the paper: MIN collapsed, VAL bounded at 0.5, ECtN's
  // latency under PB/OLM, counters recovering Valiant bandwidth.
  panel.metrics.emplace_back(
      "latency_avg",
      std::vector<std::vector<double>>{
          {300.0, 260.0, 250.0, 245.0, 235.0, 238.0, 230.0},
          {kNaN, 280.0, 290.0, 285.0, 260.0, 262.0, 255.0}});
  panel.metrics.emplace_back(
      "throughput", std::vector<std::vector<double>>{
                        {0.09, 0.10, 0.10, 0.10, 0.10, 0.10, 0.10},
                        {0.11, 0.42, 0.40, 0.41, 0.43, 0.44, 0.43}});
  panel.metrics.emplace_back(
      "backlog_per_node", std::vector<std::vector<double>>{
                              {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0},
                              {30.0, 0.5, 0.6, 0.5, 0.4, 0.4, 0.4}});
  panel.notes.push_back("synthetic panel for the self-test");
  doc.panels.push_back(std::move(panel));

  Panel info;
  info.name = "info";
  info.kind = Panel::Kind::kInfo;
  info.columns = {"k", "v"};
  info.cells = {{"answer", "42"}};
  doc.panels.push_back(std::move(info));
  return doc;
}

void test_schema_roundtrip() {
  const ResultsDoc doc = make_test_doc();
  const std::string once = to_json(doc).dump();
  const ResultsDoc parsed = doc_from_json(Json::parse(once));
  const std::string twice = to_json(parsed).dump();
  assert(once == twice && "schema round-trip must be byte-identical");

  assert(parsed.header.experiment == "fig5b");
  assert(parsed.header.nodes == 72);
  const Panel* panel = parsed.panel("ADV+1");
  assert(panel && panel->series.size() == 7);
  assert(panel->value("throughput", "0.45", "VAL") == 0.42);
  assert(std::isnan(panel->value("latency_avg", "0.45", "MIN")));
  assert(parsed.panel("info") &&
         parsed.panel("info")->cells[0][1] == "42");

  // CSV emission covers every non-info cell.
  std::ostringstream csv;
  write_csv(parsed, csv);
  const std::string text = csv.str();
  assert(text.find("fig5b,ADV+1,throughput,0.45,VAL,0.42") !=
         std::string::npos);
  // NaN cells serialize as an empty value field.
  assert(text.find("fig5b,ADV+1,latency_avg,0.45,MIN,\n") !=
         std::string::npos);

  // Unsupported schema versions are rejected.
  Json bad = Json::parse(once);
  bad.set("schema", Json("dfsim-results/v999"));
  bool threw = false;
  try {
    (void)doc_from_json(bad);
  } catch (const std::exception&) {
    threw = true;
  }
  assert(threw);
  std::cout << "schema roundtrip ok\n";
}

void test_config_hash() {
  const SimParams a = presets::tiny();
  const SimParams b = presets::tiny();
  assert(config_hash(a) == config_hash(b) && "hash must be deterministic");
  assert(canonical_params_text(a) == canonical_params_text(b));

  // Every INI-reachable knob must shift the hash.
  SimParams c = presets::tiny();
  apply_param(c, "routing.pb_ugal_threshold", "5");
  assert(config_hash(c) != config_hash(a));
  SimParams d = presets::tiny();
  apply_param(d, "traffic.load", "0.33");
  assert(config_hash(d) != config_hash(a));
  SimParams e = presets::tiny();
  apply_param(e, "router.through_priority", "true");
  assert(config_hash(e) != config_hash(a));

  // The canonical text is itself a loadable INI overlay: applying every
  // line back reproduces the same hash (keys stay in sync with config_io).
  std::istringstream lines(canonical_params_text(c));
  SimParams rebuilt = presets::tiny();
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t eq = line.find(" = ");
    assert(eq != std::string::npos);
    apply_param(rebuilt, line.substr(0, eq), line.substr(eq + 3));
  }
  assert(config_hash(rebuilt) == config_hash(c));

  // Pinned value: changing the canonical serialization (field order,
  // formatting) breaks every committed golden, so it must be deliberate.
  assert(fnv1a_hex("dfsim") == "0f4e95700ea5e5be");
  std::cout << "config hash ok (tiny = " << config_hash(a) << ")\n";
}

void test_trend_gates() {
  const ResultsDoc good = make_test_doc();
  {
    const auto outcomes = check_trend_gates(good);
    assert(!outcomes.empty());
    assert(all_passed(outcomes));
  }
  {
    // MIN stops collapsing -> the min-collapses gate must fail.
    ResultsDoc bad = good;
    auto& thpt = bad.panels[0].metrics[1].second;
    thpt[1][0] = 0.44;  // MIN throughput at the top load
    const auto outcomes = check_trend_gates(bad);
    assert(!all_passed(outcomes));
  }
  {
    // VAL exceeding its 0.5 bound must fail.
    ResultsDoc bad = good;
    bad.panels[0].metrics[1].second[1][1] = 0.61;
    assert(!all_passed(check_trend_gates(bad)));
  }
  {
    // ECtN losing its latency win must fail.
    ResultsDoc bad = good;
    bad.panels[0].metrics[0].second[1][6] = 400.0;
    assert(!all_passed(check_trend_gates(bad)));
  }
  std::cout << "trend gates ok\n";
}

void test_golden_gates() {
  const ResultsDoc doc = make_test_doc();
  {
    // Pristine golden: everything inside the band.
    const auto outcomes = check_against_golden(doc, doc);
    assert(outcomes.size() == 1);
    assert(outcomes[0].status == GateStatus::kPass);
  }
  {
    // Tiny jitter inside the tolerance band still passes.
    ResultsDoc golden = doc;
    golden.panels[0].metrics[0].second[0][0] *= 1.01;
    assert(all_passed(check_against_golden(doc, golden)));
  }
  {
    // Corrupted golden (out-of-band value) must fail.
    ResultsDoc golden = doc;
    golden.panels[0].metrics[1].second[1][1] = 0.30;  // VAL throughput -29%
    const auto outcomes = check_against_golden(doc, golden);
    assert(outcomes.size() == 1);
    assert(outcomes[0].status == GateStatus::kFail);
  }
  {
    // Truncated golden (missing panel) must fail.
    ResultsDoc golden = doc;
    golden.panels[0].name = "renamed";
    assert(!all_passed(check_against_golden(doc, golden)));
  }
  {
    // Saturated latency cells are exempt: MIN's latency at 0.45 diverges
    // but its backlog marks it saturated in both docs.
    ResultsDoc golden = doc;
    golden.panels[0].metrics[0].second[1][0] = 9999.0;
    assert(all_passed(check_against_golden(doc, golden)));
  }
  {
    // Config drift at identical settings is a failure, not a skip.
    ResultsDoc golden = doc;
    golden.header.config_hash = "0000000000000000";
    const auto outcomes = check_against_golden(doc, golden);
    assert(outcomes.size() == 1 && outcomes[0].status == GateStatus::kFail);
  }
  {
    // Different settings (another scale) skip instead of failing.
    ResultsDoc golden = doc;
    golden.header.scale = "medium";
    const auto outcomes = check_against_golden(doc, golden);
    assert(outcomes.size() == 1 && outcomes[0].status == GateStatus::kSkip);
  }
  std::cout << "golden gates ok\n";
}

void test_registry_and_render() {
  // Registry sanity: unique names, resolvable, every spec has docs text.
  const auto& registry = experiment_registry();
  assert(registry.size() == 21);
  for (const ExperimentSpec& spec : registry) {
    assert(find_experiment(spec.name) == &spec);
    assert(std::string(spec.title).size() > 4);
    assert(std::string(spec.description).size() > 40);
  }
  assert(find_experiment("nope") == nullptr);
  assert(find_experiment("congestion_map") != nullptr);

  // Renderer: the synthetic doc yields a report with gate table, headers,
  // a saturated cell printed as "sat", and the trend commentary.
  const ResultsDoc doc = make_test_doc();
  std::vector<GateOutcome> gates = check_trend_gates(doc);
  const std::string md = render_markdown({doc}, gates);
  assert(md.find("## Paper-parity gates") != std::string::npos);
  assert(md.find("min-collapses") != std::string::npos);
  assert(md.find("| sat |") != std::string::npos);
  assert(md.find("peak accepted load") != std::string::npos);
  assert(md.find("synthetic panel for the self-test") != std::string::npos);
  // Deterministic: same inputs, same bytes.
  assert(md == render_markdown({doc}, gates));
  std::cout << "registry + renderer ok\n";
}

}  // namespace

int main() {
  test_json_roundtrip();
  test_schema_roundtrip();
  test_config_hash();
  test_trend_gates();
  test_golden_gates();
  test_registry_and_render();
  std::cout << "test_report: all ok\n";
  return 0;
}
