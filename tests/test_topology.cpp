// DragonflyTopology invariants: peer symmetry, unique group pair links,
// minimal path shape (<= 3 router hops, <= 1 global hop), gateway tables —
// plus the nonminimal candidate-pool enumeration contract
// (nonmin_candidate_at) all three topologies must honor for the engine's
// small-pool exhaustive scoring.
#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <set>

#include "fbfly/fb_topology.hpp"
#include "topo/dragonfly.hpp"
#include "topo/torus.hpp"

namespace {

void check_preset(const dfsim::SimParams& params) {
  using namespace dfsim;
  const DragonflyTopology topo(params.topo);
  const std::int32_t a = params.topo.a;

  // Peer symmetry: following a link and its reported reverse port returns.
  for (RouterId r = 0; r < topo.routers(); ++r) {
    for (PortIndex port = 0; port < topo.forward_ports(); ++port) {
      const RouterId peer = topo.peer(r, port);
      const PortIndex back = topo.peer_port(r, port);
      assert(peer != r);
      assert(topo.peer(peer, back) == r);
      assert(topo.peer_port(peer, back) == port);
      // Local links stay in the group; global links leave it.
      if (topo.is_local_port(port)) {
        assert(topo.group_of(peer) == topo.group_of(r));
      } else {
        assert(topo.group_of(peer) != topo.group_of(r));
      }
    }
  }

  // Every ordered group pair has exactly one gateway, consistent with peers.
  for (GroupId g = 0; g < topo.groups(); ++g) {
    for (GroupId gd = 0; gd < topo.groups(); ++gd) {
      if (g == gd) continue;
      const RouterId gw = topo.minimal_global_source(g, gd);
      const PortIndex gp = topo.minimal_global_port(g, gd);
      assert(topo.group_of(gw) == g);
      assert(topo.is_global_port(gp));
      assert(topo.group_of(topo.peer(gw, gp)) == gd);
    }
  }

  // Minimal routes: walking min_port reaches the destination router within
  // 3 hops using at most 1 global hop, and minimal_output agrees.
  for (RouterId r = 0; r < topo.routers(); ++r) {
    for (RouterId dr = 0; dr < topo.routers(); ++dr) {
      RouterId cur = r;
      std::int32_t hops = 0;
      std::int32_t globals = 0;
      while (cur != dr) {
        const PortIndex port = topo.minimal_router_output(cur, dr);
        assert(port != kInvalidPort);
        if (topo.is_global_port(port)) ++globals;
        cur = topo.peer(cur, port);
        ++hops;
        assert(hops <= 3);
      }
      assert(globals <= 1);
      assert(hops == topo.minimal_hops(r, dr));
      // Cross-group paths have at least the global hop.
      if (topo.group_of(r) != topo.group_of(dr)) assert(globals == 1);
    }
  }

  // minimal_output at the destination router is the right ejection port.
  for (NodeId n = 0; n < topo.nodes(); ++n) {
    const RouterId dr = topo.router_of_node(n);
    const PortIndex port = topo.minimal_output(dr, n);
    assert(topo.is_ejection_port(port));
    assert(port - topo.forward_ports() == n % params.topo.p);
  }

  // local_port_to round-trip across the whole group.
  for (RouterId r = 0; r < topo.routers(); ++r) {
    const GroupId g = topo.group_of(r);
    for (std::int32_t li = 0; li < a; ++li) {
      const RouterId other = g * a + li;
      if (other == r) continue;
      const PortIndex port = topo.local_port_to(r, other);
      assert(topo.is_local_port(port));
      assert(topo.peer(r, port) == other);
    }
  }
}

// Enumeration contract of nonmin_candidate_at: distinct indices yield
// distinct channels, every usable index fills a candidate whose channel is
// never the minimal one, and (for the dragonfly) the CRG pool enumerates
// exactly this router's own global channels. The engine's small-pool
// exhaustive scoring (pick_misroute_channel) relies on all of this.
void check_candidate_enumeration(const dfsim::Topology& topo,
                                 bool has_crg_restriction) {
  using namespace dfsim;
  for (RouterId r = 0; r < topo.routers(); r += std::max(1, topo.routers() / 7)) {
    for (NodeId dst = 0; dst < topo.nodes();
         dst += std::max(1, topo.nodes() / 5)) {
      if (topo.router_of_node(dst) == r) continue;
      if (topo.min_channel(r, dst) < 0) continue;  // no nonminimal decision
      for (const bool crg : {false, true}) {
        if (crg && !has_crg_restriction) continue;
        const std::int32_t pool = topo.nonmin_pool_size(r, crg);
        assert(pool > 0);
        std::set<std::int32_t> channels;
        for (std::int32_t i = 0; i < pool; ++i) {
          NonminCandidate cand;
          if (!topo.nonmin_candidate_at(r, dst, crg, i, cand)) continue;
          assert(cand.channel != topo.min_channel(r, dst));
          assert(cand.first_hop >= 0);
          const bool fresh = channels.insert(cand.channel).second;
          assert(fresh);  // distinct indices -> distinct candidates
        }
        // The pool loses at most the minimal slot plus (router-id candidate
        // spaces) the self/destination routers; everything else is usable.
        assert(static_cast<std::int32_t>(channels.size()) >= pool - 2);
        assert(!channels.empty());
      }
    }
  }
}

}  // namespace

int main() {
  check_preset(dfsim::presets::tiny());
  check_preset(dfsim::presets::small());

  {
    using namespace dfsim;
    const DragonflyTopology dragonfly(presets::small().topo);
    check_candidate_enumeration(dragonfly, /*has_crg_restriction=*/true);
    const FlattenedButterflyTopology fbfly(FbflyParams{4, 2, 4});
    check_candidate_enumeration(fbfly, /*has_crg_restriction=*/false);
    const TorusTopology torus(TorusParams{8, 2, 2});
    check_candidate_enumeration(torus, /*has_crg_restriction=*/false);
  }
  return EXIT_SUCCESS;
}
